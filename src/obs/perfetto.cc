#include "obs/perfetto.hh"

#include <cstdlib>
#include <fstream>
#include <ostream>

#include "util/json.hh"
#include "util/logging.hh"

namespace usfq::obs
{

namespace
{

constexpr int kHostPid = 1;
constexpr int kSimPid = 2;

void
metadataEvent(JsonWriter &w, const char *what, int pid, int tid,
              const std::string &label)
{
    w.beginObject();
    w.kv("name", what);
    w.kv("ph", "M");
    w.kv("pid", pid);
    w.kv("tid", tid);
    w.key("args").beginObject().kv("name", label).endObject();
    w.endObject();
}

} // namespace

void
writeChromeTrace(std::ostream &os, const std::vector<PhaseSpan> &spans,
                 const std::vector<TraceSpan> &requestSpans,
                 const std::vector<PulseTrack> &tracks)
{
    JsonWriter w(os, 1);
    w.beginObject();
    w.kv("displayTimeUnit", "ns");
    w.key("traceEvents").beginArray();

    metadataEvent(w, "process_name", kHostPid, 0, "usfq host");
    if (!tracks.empty())
        metadataEvent(w, "process_name", kSimPid, 0, "usfq sim time");

    // Host-thread names (obs::setCurrentThreadName): one metadata row
    // per named thread so broker workers read as "worker-N", not as a
    // bare tid.
    for (const auto &[tid, name] : threadNames())
        metadataEvent(w, "thread_name", kHostPid,
                      static_cast<int>(tid), name);

    // Host phases: "X" complete events, ts/dur in microseconds (the
    // Trace Event time unit), one row per host thread.
    for (const PhaseSpan &s : spans) {
        w.beginObject();
        w.kv("name", s.name);
        w.kv("cat", "host");
        w.kv("ph", "X");
        w.kv("ts", static_cast<std::uint64_t>(s.startUs));
        w.kv("dur", static_cast<std::uint64_t>(s.durUs));
        w.kv("pid", kHostPid);
        w.kv("tid", static_cast<std::int64_t>(s.tid));
        w.endObject();
    }

    // Request spans (obs/trace.hh): duration events on the thread that
    // ran the work, nested by time containment per tid; the explicit
    // trace/span/parent ids in args keep the chain recoverable however
    // the viewer folds rows.
    for (const TraceSpan &s : requestSpans) {
        w.beginObject();
        w.kv("name", s.name);
        w.kv("cat", "request");
        w.kv("ph", "X");
        w.kv("ts", static_cast<std::uint64_t>(s.startUs));
        w.kv("dur", static_cast<std::uint64_t>(s.durUs));
        w.kv("pid", kHostPid);
        w.kv("tid", static_cast<std::int64_t>(s.tid));
        w.key("args").beginObject();
        w.kv("trace", s.traceId);
        w.kv("span", s.spanId);
        if (s.parentSpanId != 0)
            w.kv("parent", s.parentSpanId);
        for (const auto &[k, v] : s.args)
            w.kv(k, v);
        w.endObject();
        w.endObject();
    }

    // Sim-time pulse tracks: thread-scoped instant events, one tid per
    // track.  Ticks are femtoseconds; the trace axis is microseconds,
    // so 1 us of trace time = 1 ns of simulated time (displayTimeUnit
    // "ns" keeps the numbers readable).
    int tid = 0;
    for (const PulseTrack &track : tracks) {
        metadataEvent(w, "thread_name", kSimPid, tid, track.name);
        for (Tick t : track.times) {
            w.beginObject();
            w.kv("name", "pulse");
            w.kv("cat", "pulse");
            w.kv("ph", "i");
            w.kv("s", "t");
            w.kv("ts", static_cast<double>(t) * 1e-6);
            w.kv("pid", kSimPid);
            w.kv("tid", tid);
            w.endObject();
        }
        ++tid;
    }

    w.endArray();
    w.endObject();
    os << "\n";
}

void
writeChromeTrace(std::ostream &os, const std::vector<PhaseSpan> &spans,
                 const std::vector<PulseTrack> &tracks)
{
    writeChromeTrace(os, spans, std::vector<TraceSpan>{}, tracks);
}

bool
writeChromeTrace(const std::string &path,
                 const std::vector<PhaseSpan> &spans,
                 const std::vector<TraceSpan> &requestSpans,
                 const std::vector<PulseTrack> &tracks)
{
    std::ofstream out(path);
    if (!out.good()) {
        warn("cannot write trace to %s", path.c_str());
        return false;
    }
    writeChromeTrace(out, spans, requestSpans, tracks);
    return out.good();
}

bool
writeChromeTrace(const std::string &path,
                 const std::vector<PhaseSpan> &spans,
                 const std::vector<PulseTrack> &tracks)
{
    return writeChromeTrace(path, spans, std::vector<TraceSpan>{},
                            tracks);
}

std::string
traceOutPath()
{
    const char *env = std::getenv("USFQ_TRACE_OUT");
    return env != nullptr ? std::string(env) : std::string();
}

bool
writeTraceIfRequested(const std::vector<PulseTrack> &tracks)
{
    const std::string path = traceOutPath();
    if (path.empty())
        return false;
    return writeChromeTrace(path, PhaseLog::global().snapshot(),
                            TraceLog::global().snapshot(), tracks);
}

} // namespace usfq::obs
