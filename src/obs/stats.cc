#include "obs/stats.hh"

#include <bit>
#include <cstdlib>
#include <ostream>

#include "util/logging.hh"

namespace usfq::obs
{

// --- Histogram -------------------------------------------------------------

std::size_t
Histogram::bucketOf(std::int64_t sample)
{
    if (sample <= 0)
        return 0;
    const auto u = static_cast<std::uint64_t>(sample);
    // 1 lands in bucket 1, [2,4) in 2, [4,8) in 3, ...
    return static_cast<std::size_t>(64 - std::countl_zero(u));
}

std::int64_t
Histogram::bucketLo(std::size_t i)
{
    if (i == 0)
        return 0; // bucket 0 = {0}
    return std::int64_t(1) << (i - 1); // bucket 1 = {1}, 2 = [2,4), ...
}

void
Histogram::merge(const Histogram &other)
{
    if (other.samples == 0)
        return;
    for (std::size_t i = 0; i < kBuckets; ++i)
        buckets[i] += other.buckets[i];
    if (samples == 0 || other.lo < lo)
        lo = other.lo;
    if (samples == 0 || other.hi > hi)
        hi = other.hi;
    samples += other.samples;
    total += other.total;
}

// --- StatsRegistry ---------------------------------------------------------

StatsRegistry::Entry &
StatsRegistry::fetch(const std::string &name, Entry::Kind kind, int node)
{
    auto [it, inserted] = entries.try_emplace(name);
    Entry &e = it->second;
    if (inserted) {
        e.kind = kind;
        e.node = node;
    } else if (e.kind != kind) {
        panic("StatsRegistry: stat '%s' re-registered as a different "
              "kind",
              name.c_str());
    }
    if (node >= 0)
        e.node = node;
    return e;
}

Counter &
StatsRegistry::counter(const std::string &name, int node)
{
    return fetch(name, Entry::Kind::Counter, node).counter;
}

Gauge &
StatsRegistry::gauge(const std::string &name, Gauge::Merge policy,
                     int node)
{
    Gauge &g = fetch(name, Entry::Kind::Gauge, node).gauge;
    g.policy = policy;
    return g;
}

Histogram &
StatsRegistry::histogram(const std::string &name, int node)
{
    return fetch(name, Entry::Kind::Histogram, node).histogram;
}

const Counter *
StatsRegistry::findCounter(const std::string &name) const
{
    const auto it = entries.find(name);
    if (it == entries.end() || it->second.kind != Entry::Kind::Counter)
        return nullptr;
    return &it->second.counter;
}

const Gauge *
StatsRegistry::findGauge(const std::string &name) const
{
    const auto it = entries.find(name);
    if (it == entries.end() || it->second.kind != Entry::Kind::Gauge)
        return nullptr;
    return &it->second.gauge;
}

const Histogram *
StatsRegistry::findHistogram(const std::string &name) const
{
    const auto it = entries.find(name);
    if (it == entries.end() ||
        it->second.kind != Entry::Kind::Histogram)
        return nullptr;
    return &it->second.histogram;
}

int
StatsRegistry::nodeOf(const std::string &name) const
{
    const auto it = entries.find(name);
    return it == entries.end() ? -1 : it->second.node;
}

std::uint64_t
StatsRegistry::sumCounters(std::string_view path) const
{
    std::uint64_t total = 0;
    // Entries are name-sorted: everything at or under `path` sits in
    // the contiguous range [path, path + '0') since '/' < '0'.
    for (auto it = entries.lower_bound(path); it != entries.end();
         ++it) {
        const std::string &name = it->first;
        if (name.compare(0, path.size(), path) != 0)
            break;
        if (name.size() > path.size() && name[path.size()] != '/')
            continue;
        if (it->second.kind == Entry::Kind::Counter)
            total += it->second.counter.value();
    }
    return total;
}

std::uint64_t
StatsRegistry::sumCounters(std::string_view path,
                           std::string_view leaf) const
{
    std::uint64_t total = 0;
    for (auto it = entries.lower_bound(path); it != entries.end();
         ++it) {
        const std::string &name = it->first;
        if (name.compare(0, path.size(), path) != 0)
            break;
        if (name.size() > path.size() && name[path.size()] != '/')
            continue;
        if (it->second.kind != Entry::Kind::Counter)
            continue;
        // Final segment must equal `leaf` exactly.
        if (name.size() < leaf.size() + 1)
            continue;
        const std::size_t cut = name.size() - leaf.size();
        if (name[cut - 1] == '/' &&
            name.compare(cut, leaf.size(), leaf) == 0)
            total += it->second.counter.value();
    }
    return total;
}

void
StatsRegistry::mergeFrom(const StatsRegistry &other)
{
    for (const auto &[name, e] : other.entries) {
        switch (e.kind) {
          case Entry::Kind::Counter:
            counter(name, e.node) += e.counter.value();
            break;
          case Entry::Kind::Gauge: {
            Gauge &g = gauge(name, e.gauge.mergePolicy(), e.node);
            if (!e.gauge.valid())
                break;
            if (!g.valid()) {
                g.set(e.gauge.value());
                break;
            }
            switch (e.gauge.mergePolicy()) {
              case Gauge::Merge::Sum:
                g.set(g.value() + e.gauge.value());
                break;
              case Gauge::Merge::Max:
                if (e.gauge.value() > g.value())
                    g.set(e.gauge.value());
                break;
              case Gauge::Merge::Min:
                if (e.gauge.value() < g.value())
                    g.set(e.gauge.value());
                break;
            }
            break;
          }
          case Entry::Kind::Histogram:
            histogram(name, e.node).merge(e.histogram);
            break;
        }
    }
}

void
StatsRegistry::print(std::ostream &os) const
{
    for (const auto &[name, e] : entries) {
        switch (e.kind) {
          case Entry::Kind::Counter:
            os << name << " = " << e.counter.value() << "\n";
            break;
          case Entry::Kind::Gauge:
            os << name << " = " << e.gauge.value() << "\n";
            break;
          case Entry::Kind::Histogram:
            os << name << " = { n " << e.histogram.count() << ", sum "
               << e.histogram.sum() << ", min " << e.histogram.min()
               << ", max " << e.histogram.max() << " }\n";
            break;
        }
    }
}

// --- registry plumbing -----------------------------------------------------

StatsRegistry &
globalStats()
{
    static StatsRegistry reg;
    return reg;
}

namespace
{

thread_local StatsRegistry *threadRegistry = nullptr;

} // namespace

StatsRegistry &
currentStats()
{
    return threadRegistry ? *threadRegistry : globalStats();
}

ScopedStatsRegistry::ScopedStatsRegistry(StatsRegistry &reg)
    : saved(threadRegistry)
{
    threadRegistry = &reg;
}

ScopedStatsRegistry::~ScopedStatsRegistry()
{
    threadRegistry = saved;
}

// --- kernel instrumentation toggle -----------------------------------------

namespace
{

/** -1 = not yet resolved from the environment. */
int kernelStatsState = -1;

} // namespace

bool
kernelStatsEnabled()
{
    if (kernelStatsState < 0) {
        const char *env = std::getenv("USFQ_OBS");
        kernelStatsState =
            (env != nullptr && env[0] != '\0' && env[0] != '0') ? 1 : 0;
    }
    return kernelStatsState == 1;
}

void
setKernelStatsEnabled(bool enabled)
{
    kernelStatsState = enabled ? 1 : 0;
}

void
captureLogStats(StatsRegistry &reg)
{
    reg.counter("log/warnings").set(warnCount());
    reg.counter("log/informs").set(informCount());
}

} // namespace usfq::obs
