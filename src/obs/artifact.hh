/**
 * @file
 * The one serializer of the machine-readable run-artifact schema
 * (docs/observability.md): BENCH_*.json files written by the bench
 * harnesses AND the wire format of the simulation service's result
 * cache (src/svc/, docs/service.md) both go through ArtifactPayload,
 * so the schema cannot fork.
 *
 * The payload itself holds only deterministic facts (metrics, notes,
 * series).  Nondeterministic host state -- wall-clock phase totals and
 * the process-wide warn/inform counters -- is supplied separately at
 * write time via ArtifactHostState: benches capture() the live
 * process state, while the service passes the default (empty) state so
 * cached results are bit-identical to recomputation.
 */

#ifndef USFQ_OBS_ARTIFACT_HH
#define USFQ_OBS_ARTIFACT_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "obs/stats.hh"

namespace usfq
{
class JsonWriter;
}

namespace usfq::obs
{

/**
 * Host-side (nondeterministic) facts embedded in an artifact: phase
 * wall-clock totals and the process log counters.  Default-constructed
 * = "none", which keeps the serialized artifact a pure function of the
 * payload and stats registry.
 */
struct ArtifactHostState
{
    std::map<std::string, double> phasesUs;
    std::uint64_t warnings = 0;
    std::uint64_t informs = 0;

    /** Snapshot the live process state (global phase log + counters). */
    static ArtifactHostState capture();
};

/** Current artifact schema version (the "schema_version" key). */
constexpr int kArtifactSchemaVersion = 3;

/**
 * Deterministic content of one run artifact plus the serializer that
 * turns it (with a stats registry and optional host state) into the
 * schema-3 JSON document.  Schema 2 added the optional "series"
 * section (named numeric arrays, e.g. per-epoch counts); schema 3
 * adds the explicit "schema_version" key every downstream consumer
 * (bench/json_lint, bench/bench_diff) gates on.
 */
class ArtifactPayload
{
  public:
    explicit ArtifactPayload(std::string artifact_name)
        : payloadName(std::move(artifact_name))
    {
    }

    /** Artifact name (the "bench" key; BENCH_<name>.json file stem). */
    const std::string &name() const { return payloadName; }

    /** Record one headline number. */
    void
    metric(const std::string &key, double value,
           const std::string &unit = "")
    {
        metrics.push_back({key, value, unit});
    }

    /** Record one free-form string fact. */
    void
    note(const std::string &key, const std::string &value)
    {
        notes.emplace_back(key, value);
    }

    /** Record one named numeric series (e.g. per-epoch counts). */
    void
    series(const std::string &key, std::vector<double> values)
    {
        seriesData.emplace_back(key, std::move(values));
    }

    /**
     * Serialize the full artifact document: payload + @p reg snapshot
     * + @p host.  The output is byte-deterministic in (payload, reg,
     * host).
     */
    void writeJson(std::ostream &os, const StatsRegistry &reg,
                   const ArtifactHostState &host = {}) const;

    /** writeJson into a string (with the trailing newline). */
    std::string toJson(const StatsRegistry &reg,
                       const ArtifactHostState &host = {}) const;

  private:
    struct Metric
    {
        std::string key;
        double value;
        std::string unit;
    };

    std::string payloadName;
    std::vector<Metric> metrics;
    std::vector<std::pair<std::string, std::string>> notes;
    std::vector<std::pair<std::string, std::vector<double>>> seriesData;
};

/**
 * Serialize @p reg as the {"counters": ..., "gauges": ...,
 * "histograms": ...} object the artifact's "stats" section carries --
 * also the payload of the usfq_engine_metrics / usfq_broker_metrics
 * C ABI entry points, so registries egress in exactly one shape.
 */
void writeStatsJson(std::ostream &os, const StatsRegistry &reg);

/**
 * The three registry sections ("counters"/"gauges"/"histograms") into
 * an open JSON object of @p w -- the shared core of writeStatsJson and
 * ArtifactPayload::writeJson's "stats" section.
 */
void writeStatsSections(JsonWriter &w, const StatsRegistry &reg);

} // namespace usfq::obs

#endif // USFQ_OBS_ARTIFACT_HH
