/**
 * @file
 * Hierarchical simulation statistics registry (docs/observability.md).
 *
 * The registry owns named counters, gauges and log2 histograms.  Hot
 * paths hold a reference to their stat and increment it inline (one
 * add, no lookup, no lock); registration -- the only map access --
 * happens once, outside the hot path.  Stat names are '/'-separated
 * hierarchy paths ("top/dpu.m3/in_pulses"); Netlist::exportStats()
 * derives them from the same elaboration hier-node tree that
 * Netlist::report() aggregates over and records the hier-node id
 * beside each entry, so registry rollups (sumCounters over a path
 * prefix) reproduce the report() arithmetic exactly.
 *
 * Determinism contract: the registry holds only simulation facts
 * (pulse counts, event counts, occupancies) -- never wall-clock time,
 * which lives in obs/phase.hh.  mergeFrom() combines two registries
 * entry-by-entry in sorted name order; sweep shards each record into a
 * private registry that runSweep() merges back in shard order, so
 * merged stats are bit-identical at 1 and N threads.
 */

#ifndef USFQ_OBS_STATS_HH
#define USFQ_OBS_STATS_HH

#include <array>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace usfq::obs
{

/** Monotonic event count. */
class Counter
{
  public:
    void inc(std::uint64_t n = 1) { val += n; }
    Counter &operator+=(std::uint64_t n)
    {
        val += n;
        return *this;
    }
    Counter &operator++()
    {
        ++val;
        return *this;
    }
    void set(std::uint64_t v) { val = v; }
    std::uint64_t value() const { return val; }
    void reset() { val = 0; }

  private:
    std::uint64_t val = 0;
};

/** A sampled level (occupancy, rate, ratio) with a merge policy. */
class Gauge
{
  public:
    /** How two shards' values combine in mergeFrom(). */
    enum class Merge
    {
        Sum, ///< totals (default)
        Max, ///< high-water marks
        Min, ///< low-water marks
    };

    void set(double v)
    {
        val = v;
        written = true;
    }
    /** Keep the larger of the current and @p v. */
    void high(double v)
    {
        if (!written || v > val)
            set(v);
    }
    double value() const { return val; }
    bool valid() const { return written; }
    Merge mergePolicy() const { return policy; }

  private:
    friend class StatsRegistry;
    double val = 0.0;
    bool written = false;
    Merge policy = Merge::Sum;
};

/**
 * Power-of-two-bucketed histogram of non-negative integer samples.
 * Bucket 0 holds exact zeros; bucket i >= 1 holds [2^(i-1), 2^i).
 * Covers the full 63-bit sample range, so a femtosecond
 * schedule-to-fire latency and a queue occupancy both fit.
 */
class Histogram
{
  public:
    static constexpr std::size_t kBuckets = 64;

    void
    record(std::int64_t sample)
    {
        buckets[bucketOf(sample)] += 1;
        ++samples;
        total += sample < 0 ? 0 : static_cast<std::uint64_t>(sample);
        if (samples == 1 || sample < lo)
            lo = sample;
        if (samples == 1 || sample > hi)
            hi = sample;
    }

    /** Bucket a sample lands in (negatives clamp to bucket 0). */
    static std::size_t bucketOf(std::int64_t sample);

    /** Inclusive lower bound of bucket @p i. */
    static std::int64_t bucketLo(std::size_t i);

    std::uint64_t count() const { return samples; }
    std::uint64_t sum() const { return total; }
    std::int64_t min() const { return samples ? lo : 0; }
    std::int64_t max() const { return samples ? hi : 0; }
    double mean() const
    {
        return samples ? static_cast<double>(total) /
                             static_cast<double>(samples)
                       : 0.0;
    }
    std::uint64_t bucket(std::size_t i) const { return buckets[i]; }

    void merge(const Histogram &other);
    void reset() { *this = Histogram{}; }

  private:
    std::array<std::uint64_t, kBuckets> buckets{};
    std::uint64_t samples = 0;
    std::uint64_t total = 0;
    std::int64_t lo = 0;
    std::int64_t hi = 0;
};

/**
 * A named collection of stats.  Entries live for the registry's
 * lifetime at stable addresses, so references handed out by
 * counter()/gauge()/histogram() may be cached and bumped inline.
 */
class StatsRegistry
{
  public:
    /**
     * Find or create.  @p node optionally ties the entry to an
     * elaboration hier-node id (-1 = none); re-registration with a
     * different kind is a hard error, a different node id re-keys.
     */
    Counter &counter(const std::string &name, int node = -1);
    Gauge &gauge(const std::string &name,
                 Gauge::Merge policy = Gauge::Merge::Sum, int node = -1);
    Histogram &histogram(const std::string &name, int node = -1);

    /** Lookup without creating (null when absent / wrong kind). */
    const Counter *findCounter(const std::string &name) const;
    const Gauge *findGauge(const std::string &name) const;
    const Histogram *findHistogram(const std::string &name) const;

    /** Hier-node id recorded for @p name (-1 if none/absent). */
    int nodeOf(const std::string &name) const;

    /**
     * Sum of every counter at or under @p path: the counter named
     * @p path exactly plus all counters named "@p path/...".  This is
     * the registry-side twin of the Netlist::report() subtree rollup.
     */
    std::uint64_t sumCounters(std::string_view path) const;

    /**
     * Subtree rollup of ONE stat: sum of every counter under @p path
     * whose final path segment equals @p leaf.  sumCounters("top",
     * "jj") over a Netlist export is totalJJs().
     */
    std::uint64_t sumCounters(std::string_view path,
                              std::string_view leaf) const;

    /**
     * Ordered, deterministic reduction: fold @p other into this
     * registry entry-by-entry (counters add, gauges combine by their
     * merge policy, histograms add bucket-wise).  Folding shard
     * registries in shard order yields bit-identical totals at any
     * thread count.
     */
    void mergeFrom(const StatsRegistry &other);

    std::size_t size() const { return entries.size(); }
    bool empty() const { return entries.empty(); }
    void clear() { entries.clear(); }

    /** Visit every entry in sorted name order. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (const auto &[name, e] : entries)
            fn(name, e);
    }

    struct Entry
    {
        enum class Kind
        {
            Counter,
            Gauge,
            Histogram,
        };
        Kind kind;
        int node = -1; ///< elaboration hier-node id, -1 if unkeyed
        Counter counter;
        Gauge gauge;
        Histogram histogram;
    };

    /** Plain-text dump (name = value), for debugging and examples. */
    void print(std::ostream &os) const;

  private:
    Entry &fetch(const std::string &name, Entry::Kind kind, int node);

    // Ordered map: deterministic iteration/merge order, stable
    // addresses across inserts.
    std::map<std::string, Entry, std::less<>> entries;
};

/**
 * The process-wide default registry.  Single-threaded code can simply
 * record here; sweep shards get a private registry via
 * ScopedStatsRegistry (installed by runSweep) instead.
 */
StatsRegistry &globalStats();

/** The calling thread's current registry (defaults to globalStats()). */
StatsRegistry &currentStats();

/** RAII override of the calling thread's current registry. */
class ScopedStatsRegistry
{
  public:
    explicit ScopedStatsRegistry(StatsRegistry &reg);
    ~ScopedStatsRegistry();
    ScopedStatsRegistry(const ScopedStatsRegistry &) = delete;
    ScopedStatsRegistry &operator=(const ScopedStatsRegistry &) = delete;

  private:
    StatsRegistry *saved;
};

/**
 * True when kernel instrumentation is on: the USFQ_OBS environment
 * variable was set to a non-zero value at first query, or a test
 * forced it via setKernelStatsEnabled().  EventQueue checks this once
 * per construction; with it off the hot paths pay one null-pointer
 * test per schedule and nothing else.
 */
bool kernelStatsEnabled();

/** Force the toggle (tests); overrides the environment. */
void setKernelStatsEnabled(bool enabled);

/** Snapshot the warn()/inform() totals into "log/..." counters. */
void captureLogStats(StatsRegistry &reg);

} // namespace usfq::obs

#endif // USFQ_OBS_STATS_HH
