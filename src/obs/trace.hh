/**
 * @file
 * Request tracing (docs/observability.md, "Request tracing"): trace /
 * span ids threaded through the service tier so one serving run can be
 * read as a set of per-request span chains in the Perfetto exporter.
 *
 * Spans carry wall-clock time and therefore live OUTSIDE the stats
 * registry, exactly like obs/phase.hh: the registry stays a container
 * of deterministic simulation facts, the trace log holds the
 * nondeterministic host-side story.  The two never mix.
 *
 * Ids are process-monotonic: every trace (one request) and every span
 * (one step of a request) draws from its own atomic counter, so span
 * chains are well-formed however broker worker threads interleave.
 * Tracing is off unless USFQ_TRACE_OUT is set (or a test forces it via
 * setTracingEnabled); when off, TraceContext::begin() returns the
 * invalid context and every ScopedSpan on it is inert -- one branch,
 * no clock read, no allocation, no lock.
 */

#ifndef USFQ_OBS_TRACE_HH
#define USFQ_OBS_TRACE_HH

#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/phase.hh"

namespace usfq::obs
{

/** One completed span of one request's trace. */
struct TraceSpan
{
    std::string name;

    std::uint64_t traceId = 0;      ///< request-level id (1-based)
    std::uint64_t spanId = 0;       ///< process-unique span id
    std::uint64_t parentSpanId = 0; ///< 0 = root span of its trace

    std::uint64_t startUs = 0; ///< wall-clock start (obs::wallClockUs)
    std::uint64_t durUs = 0;
    std::uint32_t tid = 0; ///< dense host-thread id (obs::threadId)

    /** Small string annotations (e.g. {"hit", "1"}). */
    std::vector<std::pair<std::string, std::string>> args;
};

/**
 * Append-only, thread-safe log of completed spans.  One global
 * instance feeds the Perfetto exporter; tests may use private logs.
 */
class TraceLog
{
  public:
    void add(TraceSpan span);

    /** Copy out every span recorded so far. */
    std::vector<TraceSpan> snapshot() const;

    std::size_t size() const;
    void clear();

    /** The process-wide log. */
    static TraceLog &global();

  private:
    mutable std::mutex lock;
    std::vector<TraceSpan> spans;
};

/**
 * True when request tracing is on: USFQ_TRACE_OUT was set at first
 * query, or a test forced it via setTracingEnabled().
 */
bool tracingEnabled();

/** Force the toggle (tests); overrides the environment. */
void setTracingEnabled(bool enabled);

/** Next trace id (monotonic, starts at 1). */
std::uint64_t newTraceId();

/** Next span id (monotonic, starts at 1). */
std::uint64_t newSpanId();

/**
 * The value threaded across thread boundaries: which trace a piece of
 * work belongs to and which span is its parent.  Copyable and cheap --
 * the broker stores one per pending request.
 */
struct TraceContext
{
    std::uint64_t traceId = 0;      ///< 0 = tracing disabled
    std::uint64_t parentSpanId = 0; ///< 0 = spans become roots

    bool valid() const { return traceId != 0; }

    /**
     * Open a new trace (a fresh monotonic trace id, no parent), or the
     * invalid context when tracing is disabled.
     */
    static TraceContext begin();
};

/**
 * RAII span: assigns a span id, times its scope, and records into a
 * TraceLog (the global one by default) when finished.  Inert when the
 * context is invalid.  context() yields the child context, so nested
 * scopes build a parent chain.
 */
class ScopedSpan
{
  public:
    explicit ScopedSpan(const TraceContext &ctx, std::string name,
                        TraceLog *log = &TraceLog::global());

    ~ScopedSpan() { finish(); }

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

    /** True when the span will be recorded (context valid, not done). */
    bool active() const { return span.traceId != 0 && !done; }

    /** Attach one string annotation (no-op when inert). */
    void arg(std::string key, std::string value);

    /** Override the recorded start (e.g. a queue-entry timestamp). */
    void startAt(std::uint64_t us);

    /** Context for child spans of this one. */
    TraceContext context() const
    {
        return TraceContext{span.traceId, span.spanId};
    }

    /** End and record the span now (idempotent). */
    void finish();

  private:
    TraceSpan span; ///< traceId 0 = inert
    TraceLog *sink;
    bool done = false;
};

/**
 * Name the calling thread for the Perfetto export ("worker-3" beats
 * "thread 7" in the viewer).  Last writer per thread id wins.
 */
void setCurrentThreadName(const std::string &name);

/** Snapshot of every (thread id, name) registered so far. */
std::vector<std::pair<std::uint32_t, std::string>> threadNames();

} // namespace usfq::obs

#endif // USFQ_OBS_TRACE_HH
