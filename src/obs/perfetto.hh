/**
 * @file
 * Chrome Trace Event (Perfetto / chrome://tracing) JSON exporter
 * (docs/observability.md).
 *
 * Two kinds of content share one trace file:
 *
 *  - host-side phase spans (build / elaborate / sta / run wall-clock
 *    durations from obs/phase.hh), rendered as "X" duration events on
 *    pid 1, one row per host thread;
 *  - optional sim-time pulse-activity tracks (one named track per
 *    traced component), rendered as instant events on pid 2 with the
 *    simulated femtosecond tick mapped to the trace's nanosecond axis.
 *
 * The output is plain Trace Event JSON ({"traceEvents": [...]}), which
 * both Perfetto and chrome://tracing load directly.  Set USFQ_TRACE_OUT
 * to a path and bench harnesses (bench::Artifact) write the trace
 * there; library code can also call writeChromeTrace() explicitly.
 */

#ifndef USFQ_OBS_PERFETTO_HH
#define USFQ_OBS_PERFETTO_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "obs/phase.hh"
#include "obs/trace.hh"
#include "util/types.hh"

namespace usfq::obs
{

/** One sim-time activity track: a named, time-sorted pulse train. */
struct PulseTrack
{
    std::string name;
    std::vector<Tick> times; ///< pulse arrival ticks (femtoseconds)
};

/**
 * Emit a complete Trace Event JSON document: @p spans as host duration
 * events, @p requestSpans as host duration events carrying their
 * trace/span/parent ids in "args" (one request = one span chain, real
 * thread ids so worker activity reads per-row), @p tracks as sim-time
 * instant events.  Host threads named via obs::setCurrentThreadName
 * get thread_name metadata rows.
 */
void writeChromeTrace(std::ostream &os,
                      const std::vector<PhaseSpan> &spans,
                      const std::vector<TraceSpan> &requestSpans,
                      const std::vector<PulseTrack> &tracks = {});

/** Phase-spans-only convenience overload. */
void writeChromeTrace(std::ostream &os,
                      const std::vector<PhaseSpan> &spans,
                      const std::vector<PulseTrack> &tracks = {});

/**
 * Write the trace to @p path.  Returns false (with a warn) when the
 * file cannot be opened.
 */
bool writeChromeTrace(const std::string &path,
                      const std::vector<PhaseSpan> &spans,
                      const std::vector<TraceSpan> &requestSpans,
                      const std::vector<PulseTrack> &tracks = {});

bool writeChromeTrace(const std::string &path,
                      const std::vector<PhaseSpan> &spans,
                      const std::vector<PulseTrack> &tracks = {});

/** Value of USFQ_TRACE_OUT, or empty when tracing is not requested. */
std::string traceOutPath();

/**
 * If USFQ_TRACE_OUT is set, write the global phase log and the global
 * request-trace log (plus @p tracks) there.  Returns true when a
 * trace was written.
 */
bool writeTraceIfRequested(const std::vector<PulseTrack> &tracks = {});

} // namespace usfq::obs

#endif // USFQ_OBS_PERFETTO_HH
