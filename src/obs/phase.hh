/**
 * @file
 * Host-side phase timing (docs/observability.md): scoped wall-clock
 * timers around the coarse phases of a simulation (build, elaborate,
 * sta, run) and a process-wide span log the Perfetto exporter turns
 * into a trace.
 *
 * Wall-clock time is deliberately kept OUT of the stats registry: the
 * registry holds deterministic simulation facts, the phase log holds
 * nondeterministic host timing.  Bench artifacts report both, under
 * different keys.
 */

#ifndef USFQ_OBS_PHASE_HH
#define USFQ_OBS_PHASE_HH

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace usfq::obs
{

/** One completed host-side span (times relative to process start). */
struct PhaseSpan
{
    std::string name;
    std::uint64_t startUs = 0; ///< wall-clock start, microseconds
    std::uint64_t durUs = 0;   ///< wall-clock duration, microseconds
    std::uint32_t tid = 0;     ///< dense per-thread id (0 = first seen)
};

/** Microseconds of wall clock since process start (steady clock). */
std::uint64_t wallClockUs();

/** Dense id of the calling thread (assigned on first use). */
std::uint32_t threadId();

/**
 * Append-only, thread-safe log of completed spans.  One global
 * instance feeds the Perfetto exporter; tests may use private logs.
 */
class PhaseLog
{
  public:
    void add(PhaseSpan span);

    /** Copy out every span recorded so far. */
    std::vector<PhaseSpan> snapshot() const;

    /** Total recorded duration per phase name, microseconds. */
    std::map<std::string, double> totalsUs() const;

    void clear();

    /** The process-wide log. */
    static PhaseLog &global();

  private:
    mutable std::mutex lock;
    std::vector<PhaseSpan> spans;
};

/**
 * RAII phase timer: records a span into a PhaseLog (the global one by
 * default) when destroyed.  Cost is two steady_clock reads plus one
 * short critical section per phase -- nothing for the per-netlist
 * phases it wraps.  Optionally accumulates into a double (caller-owned
 * microsecond tally, e.g. Netlist's per-phase totals).
 */
class ScopedPhase
{
  public:
    explicit ScopedPhase(std::string name, double *accum_us = nullptr,
                         PhaseLog *log = &PhaseLog::global())
        : phaseName(std::move(name)), accum(accum_us), sink(log),
          startUs(wallClockUs())
    {
    }

    ~ScopedPhase() { finish(); }

    ScopedPhase(const ScopedPhase &) = delete;
    ScopedPhase &operator=(const ScopedPhase &) = delete;

    /** End the span early (idempotent). */
    void finish();

  private:
    std::string phaseName;
    double *accum;
    PhaseLog *sink;
    std::uint64_t startUs;
    bool done = false;
};

} // namespace usfq::obs

#endif // USFQ_OBS_PHASE_HH
