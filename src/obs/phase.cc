#include "obs/phase.hh"

#include <atomic>
#include <chrono>

namespace usfq::obs
{

std::uint64_t
wallClockUs()
{
    using clock = std::chrono::steady_clock;
    static const clock::time_point anchor = clock::now();
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            clock::now() - anchor)
            .count());
}

std::uint32_t
threadId()
{
    static std::atomic<std::uint32_t> next{0};
    thread_local const std::uint32_t id =
        next.fetch_add(1, std::memory_order_relaxed);
    return id;
}

void
PhaseLog::add(PhaseSpan span)
{
    std::lock_guard<std::mutex> g(lock);
    spans.push_back(std::move(span));
}

std::vector<PhaseSpan>
PhaseLog::snapshot() const
{
    std::lock_guard<std::mutex> g(lock);
    return spans;
}

std::map<std::string, double>
PhaseLog::totalsUs() const
{
    std::lock_guard<std::mutex> g(lock);
    std::map<std::string, double> totals;
    for (const PhaseSpan &s : spans)
        totals[s.name] += static_cast<double>(s.durUs);
    return totals;
}

void
PhaseLog::clear()
{
    std::lock_guard<std::mutex> g(lock);
    spans.clear();
}

PhaseLog &
PhaseLog::global()
{
    static PhaseLog log;
    return log;
}

void
ScopedPhase::finish()
{
    if (done)
        return;
    done = true;
    const std::uint64_t end = wallClockUs();
    const std::uint64_t dur = end - startUs;
    if (accum)
        *accum += static_cast<double>(dur);
    if (sink)
        sink->add(PhaseSpan{phaseName, startUs, dur, threadId()});
}

} // namespace usfq::obs
