/**
 * @file
 * Fabric-level static timing (docs/noc.md): runSta over a built
 * TileGrid plus the route-level view -- per-flow latencies, the
 * critical route, and per-hop rate floors along it.
 *
 * Routes surface in the STA critical path as the chain
 * injector -> router buffers/demuxes/pads/mergers -> link JTLs ->
 * sink; analyzeFabric() additionally reports them in plan terms
 * (flow, hop list), which is what the benches and the noc_mesh
 * example print.
 */

#ifndef USFQ_NOC_STA_HH
#define USFQ_NOC_STA_HH

#include <string>
#include <vector>

#include "noc/grid.hh"
#include "sta/sta.hh"

namespace usfq::noc
{

/** One flow's route timing, from the plan's equalized budget. */
struct FabricRoute
{
    int flow = 0;
    int routers = 0; ///< routers traversed (manhattan distance + 1)
    Tick latency = 0;
};

struct FabricStaReport
{
    StaReport sta;
    std::vector<FabricRoute> routes;

    /** Index of the latency-critical flow (-1 when no flows). */
    int criticalFlow = -1;
    Tick criticalLatency = 0;

    /**
     * Provable minimum pulse spacing at each router input along the
     * critical route (0 = no floor provable at that hop).
     */
    std::vector<Tick> hopFloors;

    /**
     * Sustained per-flow flit rate the critical route supports: the
     * tightest hop floor as a rate.  0 when no floor is provable.
     */
    double maxRouteRateHz() const;
};

/**
 * STA over the fabric netlist (stimulus anchoring; pairwise collision
 * findings waived -- tile counting trees arbitrate dynamically and
 * fabric merger losses are ledgered) plus the route-level extraction.
 * Uses runStaChecked semantics: fatal on unwaived findings.
 */
FabricStaReport analyzeFabric(Netlist &nl, const TileGrid &grid,
                              StaOptions opts = {});

/** "t2_1 -[e]-> r2_1 ... -> t0_1" route rendering for reports. */
std::string describeRoute(const GridPlan &plan, int flow);

} // namespace usfq::noc

#endif // USFQ_NOC_STA_HH
