#include "noc/sta.hh"

#include <algorithm>

#include "util/logging.hh"

namespace usfq::noc
{

double
FabricStaReport::maxRouteRateHz() const
{
    Tick worst = 0;
    for (Tick floor : hopFloors)
        worst = std::max(worst, floor);
    if (worst <= 0)
        return 0.0;
    return 1e15 / static_cast<double>(worst); // Tick is femtoseconds
}

FabricStaReport
analyzeFabric(Netlist &nl, const TileGrid &grid, StaOptions opts)
{
    const GridPlan &plan = grid.plan();
    // Pairwise collision pessimism is structural here: tile counting
    // trees arbitrate same-stream pulses dynamically (the balancer
    // never routes two pulses into one merger leg), and fabric merger
    // collisions under shared sink windows are intentional arbitration
    // accounted by the router ledger.  Window/recovery checks and the
    // separation floors below stay fully enforced.
    opts.waivers.emplace(
        LintRule::CollisionRisk,
        "noc fabric: counting trees arbitrate dynamically and shared-"
        "window merger losses are accounted by the router ledger");

    FabricStaReport rep;
    rep.sta = runStaChecked(nl, opts);

    rep.routes.reserve(plan.flows.size());
    for (std::size_t f = 0; f < plan.flows.size(); ++f) {
        const FlowPlan &fp = plan.flows[f];
        FabricRoute route;
        route.flow = static_cast<int>(f);
        route.routers = static_cast<int>(fp.routers.size());
        route.latency = fp.latency;
        rep.routes.push_back(route);
        if (route.latency > rep.criticalLatency ||
            rep.criticalFlow < 0) {
            rep.criticalFlow = route.flow;
            rep.criticalLatency = route.latency;
        }
    }

    if (rep.criticalFlow >= 0) {
        const FlowPlan &fp =
            plan.flows[static_cast<std::size_t>(rep.criticalFlow)];
        for (std::size_t k = 0; k < fp.routers.size(); ++k) {
            const NocRouter *router = grid.router(fp.routers[k]);
            if (router == nullptr)
                fatal("noc sta: flow %d crosses unbuilt router %d",
                      rep.criticalFlow, fp.routers[k]);
            rep.hopFloors.push_back(
                rep.sta.separationFloor(router->in(fp.inDir[k])));
        }
    }
    return rep;
}

std::string
describeRoute(const GridPlan &plan, int flow)
{
    const FlowPlan &fp =
        plan.flows[static_cast<std::size_t>(flow)];
    auto rc = [&](int id) {
        return std::to_string(id / plan.spec.cols) + "_" +
               std::to_string(id % plan.spec.cols);
    };
    std::string s = "t" + rc(fp.spec.src);
    for (std::size_t k = 0; k < fp.routers.size(); ++k) {
        s += " -[";
        s += dirName(fp.outDir[k]);
        s += "]-> r";
        s += rc(fp.routers[k]);
    }
    s += " -> t" + rc(fp.spec.dst);
    return s;
}

} // namespace usfq::noc
