/**
 * @file
 * Pulse-level NoC hardware (docs/noc.md): the SFQ router and link
 * models, plus the injector / sink terminals that put tile results
 * onto the fabric and observe deliveries.
 *
 * A router is input-buffered and built from the cell library only: a
 * JTL buffer per used input, a binary demux tree steering each input
 * to its destination outputs (the TDM circuit switch -- select pulses
 * arrive from the schedule sources at window boundaries), a pad JTL
 * per turn equalizing every traversal to the grid-wide router latency,
 * and a balanced merger tree per output arbitrating the inputs that
 * feed it.  Same-slot pulses meeting in a merger collide; the router's
 * collision ledger (collisions()) counts every such absorption.
 *
 * A link is a JTL chain whose last stage absorbs the slot-rounding pad,
 * so links too contribute an exact multiple of the slot width.
 */

#ifndef USFQ_NOC_ROUTER_HH
#define USFQ_NOC_ROUTER_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/adder.hh"
#include "noc/plan.hh"
#include "sfq/cells.hh"
#include "sim/component.hh"
#include "sim/netlist.hh"

namespace usfq::noc
{

/** A mesh link: @p hops JTL stages padded to @p targetLatency. */
class NocLink : public Component
{
  public:
    NocLink(Netlist &nl, const std::string &name, int hops,
            Tick targetLatency);

    InputPort &in() { return stages.front()->in; }
    OutputPort &out() { return stages.back()->out; }

    static long long
    jjsFor(int hops)
    {
        return static_cast<long long>(hops) * cell::kJtlJJs;
    }

    int jjCount() const override;

  private:
    std::vector<std::unique_ptr<Jtl>> stages;
};

/**
 * One mesh router, instantiated from its RouterPlan.  All internal
 * cells register as hierarchy children, so lint, STA and report()
 * see the real circuit; jjCount() is the inclusive composite total
 * (the builder create<>s the router, not its members).
 */
class NocRouter : public Component
{
  public:
    NocRouter(Netlist &nl, const std::string &name,
              const RouterPlan &plan, Tick routerLatency);

    const RouterPlan &plan() const { return rp; }

    /** Input port of direction @p dir (must be used by the plan). */
    InputPort &in(int dir) { return bufs[dir]->in; }
    const InputPort &in(int dir) const { return bufs[dir]->in; }

    /** Output port of direction @p dir (must be used by the plan). */
    OutputPort &out(int dir);

    /**
     * Select input of demux-tree node @p node on input @p dir; side 0
     * steers to the low branch range.  Driven by the TDM schedule
     * sources the grid builder creates.
     */
    InputPort &sel(int dir, int node, int side);

    /** Collision ledger: pulses absorbed by this router's mergers. */
    std::uint64_t collisions() const;

    int jjCount() const override;
    void reset() override;

  private:
    RouterPlan rp;
    std::unique_ptr<Jtl> bufs[kDirCount];
    std::vector<std::unique_ptr<Demux>> demuxes[kDirCount];
    std::unique_ptr<Jtl> pads[kDirCount][kDirCount];
    std::unique_ptr<MergerTreeAdder> trees[kDirCount];
};

/**
 * Flow source terminal: counts the pulses its tile emits (from
 * @p countFrom onward), then re-times the value as a clean Euclidean
 * pulse stream when the TDM trigger fires -- the PNM-style
 * store-and-regenerate boundary between a tile's local epoch and the
 * fabric's global slot grid.  Idealized: jjCount() is 0 and the
 * trigger comes from a schedule source, so the terminal adds no area;
 * the fabric area model is routers + links (fabricJJs()).
 */
class NocInjector : public Component
{
  public:
    NocInjector(Netlist &nl, const std::string &name,
                const EpochConfig &cfg, Tick countFrom);

    InputPort in;      ///< tile result pulses (counted)
    InputPort trigger; ///< TDM window start: emit the stream
    OutputPort out;    ///< Euclidean stream of the counted value

    /** Pulses counted toward the injected value. */
    std::uint64_t counted() const { return count; }

    /** Tile pulses that arrived after the trigger (schedule bug). */
    std::uint64_t latePulses() const { return late; }

    int jjCount() const override { return 0; }
    void reset() override;
    TimingModel timingModel() const override;

  private:
    EpochConfig cfg;
    Tick countFrom;
    std::uint64_t count = 0;
    std::uint64_t late = 0;
    bool fired = false;
};

/**
 * Observation tap on one router output: bins every pulse passing the
 * output into its TDM window using the planned per-output window
 * timetable (outputWindowBases), checking slot alignment like NocSink
 * does at the fabric edge.  Zero-JJ pure observer -- it shares the
 * output net via markFanoutOk() and never emits, so the fabric with
 * and without taps is event-for-event identical.  Feeds the per-router
 * occupancy telemetry (FabricObservation::outputWindowPulses).
 */
class NocTap : public Component
{
  public:
    /** @p windowStarts: (slot-0 arrival, window) ascending in time. */
    NocTap(Netlist &nl, const std::string &name,
           std::vector<std::pair<Tick, int>> windowStarts, int windows,
           int nmax, Tick slot);

    InputPort in;

    const std::vector<std::uint64_t> &windowCounts() const
    {
        return counts;
    }

    /** Pulses off the planned window/slot grid (0 when well formed). */
    std::uint64_t misbinned() const { return offGrid; }

    int jjCount() const override { return 0; }
    void reset() override;

  private:
    std::vector<std::pair<Tick, int>> starts;
    int nmax;
    Tick slot;
    std::vector<std::uint64_t> counts; ///< per TDM window
    std::uint64_t offGrid = 0;
};

/**
 * Observation terminal at a sink tile: bins every delivered pulse into
 * its TDM window and checks it sits exactly on the global slot grid
 * (misaligned() counts violations -- always 0 for a well-formed plan).
 * Idealized observation pad, jjCount() 0.
 */
class NocSink : public Component
{
  public:
    /** @p firstArrival: arrival time of a slot-0 pulse of window 0
     *  (computeStart + maxFlowLatency + slot/2 in plan terms). */
    NocSink(Netlist &nl, const std::string &name, int windows,
            int nmax, Tick firstArrival, Tick pitch, Tick slot);

    InputPort in;

    const std::vector<std::uint64_t> &windowCounts() const
    {
        return counts;
    }
    std::uint64_t misaligned() const { return offGrid; }

    int jjCount() const override { return 0; }
    void reset() override;

  private:
    int nmax;
    Tick base; ///< arrival time of slot 0 of window 0
    Tick pitch;
    Tick slot;
    std::vector<std::uint64_t> counts;
    std::uint64_t offGrid = 0;
};

} // namespace usfq::noc

#endif // USFQ_NOC_ROUTER_HH
