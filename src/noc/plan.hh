/**
 * @file
 * Static planning layer of the temporal NoC (docs/noc.md): XY routes,
 * TDM window assignment, and the slot-aligned latency budget that both
 * engines share.
 *
 * The fabric is circuit-switched: a flow (source tile -> sink tile)
 * owns its XY route for one TDM window of every super-epoch.  Flows
 * whose routes share a channel but end at different sinks get disjoint
 * windows (a deterministic greedy coloring), so their pulse streams
 * never meet inside a merger.  Flows to the SAME sink may share a
 * window (GridSpec::sharedSinkWindows): their streams union in the
 * routers' merger trees and same-slot pulses collide -- the arbitration
 * loss the per-router collision ledger counts.
 *
 * Exactness contract: every link and every router traversal is padded
 * to an integer number of epoch slots, and injectors launch each flow
 * early by (maxFlowLatency - flowLatency), so every stream everywhere
 * in the fabric sits on ONE global slot-center grid and all streams of
 * a window arrive at their sink in phase.  Slot width always exceeds
 * the merger collision window (core/encoding.hh), so the pulse-level
 * merger trees compute exact slot unions -- which is precisely what
 * the functional mirror (func/noc.hh) evaluates.
 */

#ifndef USFQ_NOC_PLAN_HH
#define USFQ_NOC_PLAN_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/encoding.hh"
#include "util/types.hh"

namespace usfq::obs
{
class StatsRegistry;
}

namespace usfq::noc
{

/** Compute block instantiated in every tile. */
enum class TileKind
{
    Dpu, ///< dot-product unit (core/dpu.hh)
    Pe,  ///< temporal processing element; injects its result flit
    Fir, ///< one FIR step = a tap-window dot product on DPU hardware
};

const char *tileKindName(TileKind kind);

/** One circuit-switched flow: src tile streams its result to dst. */
struct FlowSpec
{
    int src = 0;
    int dst = 0;

    bool operator==(const FlowSpec &other) const = default;
};

/** Router port directions; Local attaches the tile itself. */
enum Dir : int
{
    kDirN = 0,
    kDirE,
    kDirS,
    kDirW,
    kDirLocal,
    kDirCount,
};

const char *dirName(int dir);

/** N<->S, E<->W; Local maps to itself. */
int oppositeDir(int dir);

/** Parameterized mesh description (the NoC twin of api::NetlistSpec). */
struct GridSpec
{
    int rows = 4;
    int cols = 4;
    TileKind kind = TileKind::Dpu;
    int taps = 4;
    int bits = 4;
    DpuMode mode = DpuMode::Bipolar;
    std::vector<FlowSpec> flows;

    /**
     * true: flows to one sink share a TDM window and arbitrate in the
     * merger trees (collisions expected, counted in the ledger).
     * false: every channel-sharing pair is TDM-separated -- the fabric
     * is collision-free by schedule.
     */
    bool sharedSinkWindows = false;

    /** JTL stages per mesh link (per-hop delay from sfq/params.hh). */
    int linkHops = 3;

    bool validate(std::string *err = nullptr) const;
};

/** Per-router structural plan derived from the union of flow routes. */
struct RouterPlan
{
    /** A demux-tree node steering branch range [lo, mid) vs [mid, hi). */
    struct DemuxNode
    {
        int lo = 0;
        int mid = 0;
        int hi = 0;
        int depth = 0; ///< stages after the input buffer (root = 0)
    };

    bool inUsed[kDirCount] = {};
    bool outUsed[kDirCount] = {};
    bool turn[kDirCount][kDirCount] = {};

    /** Contributing inputs per output, ascending: merger leaf order. */
    std::vector<int> feeders[kDirCount];

    /** Destination outputs per input, ascending: demux branch order. */
    std::vector<int> branches[kDirCount];

    /** Demux tree per input, breadth-first; empty when 1 branch. */
    std::vector<DemuxNode> demux[kDirCount];

    bool used() const;

    /** Demux stages a pulse entering @p in traverses to reach @p out. */
    int demuxDepth(int in, int out) const;

    /**
     * Demux-tree walk from @p in to @p out: (node index into
     * demux[in], side) per stage, side 0 steering low (out0).
     */
    std::vector<std::pair<int, int>> demuxPath(int in, int out) const;

    /** Merger tree depth of @p out (0 when a single feeder). */
    int mergerDepth(int out) const;
};

/** One flow's placed route, window and latency. */
struct FlowPlan
{
    FlowSpec spec;
    int window = 0;

    /** Router ids along the route, source to sink. */
    std::vector<int> routers;

    /** Entry / exit direction at routers[k] (Local at the ends). */
    std::vector<int> inDir;
    std::vector<int> outDir;

    /** Injector output to sink input, an exact multiple of the slot. */
    Tick latency = 0;
};

/**
 * The fully placed grid: everything the pulse-level builder
 * (noc/grid.hh) and the functional mirror (func/noc.hh) need, computed
 * once and shared so the two engines cannot drift.
 */
struct GridPlan
{
    GridSpec spec;
    EpochConfig cfg{2};

    std::vector<FlowPlan> flows;
    std::vector<RouterPlan> routers; ///< rows*cols, row-major

    int windows = 1;         ///< TDM windows per super-epoch (K)
    Tick routerLatency = 0;  ///< every in->out traversal, slot multiple
    Tick linkLatency = 0;    ///< every mesh link, slot multiple
    Tick maxFlowLatency = 0; ///< D: the grid's worst route latency
    Tick windowPitch = 0;    ///< window period: epoch + D guard band
    Tick computeStart = 0;   ///< tiles finish computing before this
    Tick horizon = 0;        ///< run() end time covering every arrival

    int tiles() const { return spec.rows * spec.cols; }
    int routerAt(int row, int col) const
    {
        return row * spec.cols + col;
    }

    /** Sink tiles, ascending: the observation row order. */
    std::vector<int> sinkTiles() const;

    /** Injector trigger time of @p flow (window start, phase-advanced). */
    Tick triggerTime(int flow) const;

    /**
     * Remaining latency from the OUTPUT of route hop @p hop of @p flow
     * to its sink -- the phase algebra behind demux select times and
     * the functional mirror's shift-free unions.
     */
    Tick remainingAfter(int flow, int hop) const;
};

/**
 * Place a grid: routes (XY dimension order), per-router structure,
 * slot-aligned latency budget, TDM coloring.  fatal() on an invalid
 * spec -- gate with GridSpec::validate first when the input is
 * untrusted.
 */
GridPlan planGrid(const GridSpec &spec);

/** Every tile below row 0 streams to its column head -- a FIR bank. */
std::vector<FlowSpec> columnCollectFlows(int rows, int cols);

/** Every other tile streams to @p dst -- dot-product tiling traffic. */
std::vector<FlowSpec> hotspotFlows(int rows, int cols, int dst);

/** Flit-for-flit observables both engines must agree on. */
struct FabricObservation
{
    /** Tile ids of the sinks, ascending (sinkTiles()). */
    std::vector<int> sinks;

    /** Delivered pulse count per sink per TDM window. */
    std::vector<std::vector<std::uint64_t>> sinkWindowCounts;

    /** Collision-ledger total per router (rows*cols, row-major). */
    std::vector<std::uint64_t> routerCollisions;

    /**
     * Post-merger occupancy of every router output per TDM window:
     * index (router * kDirCount + dir) * windows + window, sized
     * routers * kDirCount * windows, zero where no flow crosses.  The
     * pulse engine counts these with zero-JJ output taps (NocTap); the
     * functional mirror computes the same slot unions -- part of the
     * flit-for-flit equality contract like everything else here.
     */
    std::vector<std::uint64_t> outputWindowPulses;

    std::uint64_t delivered = 0;
    std::uint64_t collisions = 0;

    bool operator==(const FabricObservation &other) const = default;
};

/** Order-sensitive FNV-1a fingerprint of an observation. */
std::uint64_t observationDigest(const FabricObservation &obs);

/** Hierarchy label of @p router ("r<row>_<col>"), the stats-path and
 *  netlist name of the router alike. */
std::string routerLabel(const GridSpec &spec, int router);

/** Wall-clock-free window timetable entry of one router output. */
struct OutputWindowBase
{
    Tick start = 0; ///< arrival time of slot 0 of @p window here
    int window = 0;
};

/**
 * The window timetable of every router output channel (index router *
 * kDirCount + dir, empty where no flow crosses): for each TDM window
 * routed through that output, when its slot-0 pulse passes -- derived
 * purely from the plan's phase algebra (sink base minus the remaining
 * route latency), ascending in start.  Flows sharing a channel and
 * window share one route suffix, so the entry is unique; fatal() if
 * the algebra ever disagrees.
 */
std::vector<std::vector<OutputWindowBase>>
outputWindowBases(const GridPlan &plan);

/**
 * Delivered fraction of the fabric's scheduled window capacity:
 * delivered / (nmax * #(sink, window) pairs carrying any flow).
 */
double windowUtilization(const GridPlan &plan,
                         const FabricObservation &obs);

/**
 * Register @p obs in @p reg under router hierarchy paths
 * ("<prefix>/r<row>_<col>/out_<dir>/w<k>", ".../out_<dir>/link_pulses"
 * for mesh outputs, ".../collisions" per used router, and the
 * "<prefix>/fabric/..." rollups including the window_utilization
 * high-water gauge).  Names depend only on the plan, values only on
 * the observation, so the export is identical for both engines --
 * extending the flit-for-flit differential contract to telemetry.
 */
void exportFabricTelemetry(const GridPlan &plan,
                           const FabricObservation &obs,
                           obs::StatsRegistry &reg,
                           const std::string &prefix = "noc");

/**
 * Seeded per-tile operands, identical in both engines: `taps` stream
 * counts and RL ids per tile, drawn tile-major from Rng(seed).  (PE
 * tiles consume the first three values; the draw shape is the same so
 * the operand schedule is independent of the tile kind.)
 */
struct TileOperands
{
    std::vector<int> streams; ///< tiles x taps, tile-major
    std::vector<int> ids;     ///< tiles x taps, tile-major
};

TileOperands drawTileOperands(const GridPlan &plan, std::uint64_t seed);

/**
 * Closed-form JJ area of the fabric itself (routers + links; tiles,
 * injectors and sinks excluded), matching the pulse netlist exactly --
 * noc_test pins netlist totals against it.
 */
long long fabricJJs(const GridPlan &plan);

} // namespace usfq::noc

#endif // USFQ_NOC_PLAN_HH
