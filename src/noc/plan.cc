#include "noc/plan.hh"

#include <algorithm>
#include <map>
#include <set>
#include <utility>

#include "obs/stats.hh"
#include "sfq/params.hh"
#include "util/logging.hh"
#include "util/random.hh"

namespace usfq::noc
{

namespace
{

constexpr std::uint64_t kFnvBasis = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

std::uint64_t
fnvU64(std::uint64_t h, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xff;
        h *= kFnvPrime;
    }
    return h;
}

int
nextPow2(int v)
{
    int p = 1;
    while (p < v)
        p <<= 1;
    return p;
}

int
log2Of(int pow2)
{
    int b = 0;
    while ((1 << b) < pow2)
        ++b;
    return b;
}

/**
 * Slot width of a tile's epoch grid.  PE tiles use the facade's 30 ps
 * grid.  DPU / FIR tiles use the facade's depth formula with a 40 ps
 * floor: the differential corpus proves pulse == functional counts
 * exactly at 40 ps, while the tighter single-tile floor (9 ps) loses
 * unipolar multiplier pulses to recovery -- and the fabric's
 * flit-for-flit contract needs exact tile counts.
 */
Tick
tileSlotWidth(TileKind kind, int taps)
{
    if (kind == TileKind::Pe)
        return 30 * kPicosecond;
    const int padded = nextPow2(taps);
    const Tick need =
        2 * (3 * static_cast<Tick>(log2Of(padded)) + 1) + 2;
    return std::max<Tick>(need, 40) * kPicosecond;
}

Tick
ceilToSlot(Tick value, Tick slot)
{
    return ((value + slot - 1) / slot) * slot;
}

/** Demux branch split point: the left subtree takes the larger half. */
int
splitMid(int lo, int hi)
{
    return lo + (hi - lo + 1) / 2;
}

} // namespace

const char *
tileKindName(TileKind kind)
{
    switch (kind) {
    case TileKind::Dpu: return "dpu";
    case TileKind::Pe: return "pe";
    case TileKind::Fir: return "fir";
    }
    return "?";
}

int
oppositeDir(int dir)
{
    switch (dir) {
    case kDirN: return kDirS;
    case kDirS: return kDirN;
    case kDirE: return kDirW;
    case kDirW: return kDirE;
    default: return kDirLocal;
    }
}

const char *
dirName(int dir)
{
    switch (dir) {
    case kDirN: return "n";
    case kDirE: return "e";
    case kDirS: return "s";
    case kDirW: return "w";
    case kDirLocal: return "local";
    }
    return "?";
}

bool
GridSpec::validate(std::string *err) const
{
    const auto fail = [&](const std::string &msg) {
        if (err != nullptr)
            *err = msg;
        return false;
    };
    if (rows < 1 || rows > 64 || cols < 1 || cols > 64)
        return fail("noc: rows and cols must be in [1, 64]");
    if (rows * cols > 1024)
        return fail("noc: rows * cols must be <= 1024");
    if (taps < 1 || taps > 64)
        return fail("noc: taps must be in [1, 64]");
    if (bits < 2 || bits > 12)
        return fail("noc: bits must be in [2, 12]");
    if (linkHops < 1 || linkHops > 64)
        return fail("noc: linkHops must be in [1, 64]");
    const int n = rows * cols;
    std::set<int> sources;
    for (const FlowSpec &f : flows) {
        if (f.src < 0 || f.src >= n || f.dst < 0 || f.dst >= n)
            return fail("noc: flow endpoints must be tile ids");
        if (f.src == f.dst)
            return fail("noc: flow src and dst must differ");
        if (!sources.insert(f.src).second)
            return fail("noc: at most one flow per source tile");
    }
    return true;
}

bool
RouterPlan::used() const
{
    for (bool u : inUsed)
        if (u)
            return true;
    return false;
}

int
RouterPlan::demuxDepth(int in, int out) const
{
    const auto &outs = branches[in];
    if (outs.size() < 2)
        return 0;
    const int branch = static_cast<int>(
        std::lower_bound(outs.begin(), outs.end(), out) - outs.begin());
    int lo = 0;
    int hi = static_cast<int>(outs.size());
    int depth = 0;
    while (hi - lo >= 2) {
        ++depth;
        const int mid = splitMid(lo, hi);
        if (branch < mid)
            hi = mid;
        else
            lo = mid;
    }
    return depth;
}

std::vector<std::pair<int, int>>
RouterPlan::demuxPath(int in, int out) const
{
    std::vector<std::pair<int, int>> path;
    const auto &outs = branches[in];
    if (outs.size() < 2)
        return path;
    const int branch = static_cast<int>(
        std::lower_bound(outs.begin(), outs.end(), out) - outs.begin());
    int lo = 0;
    int hi = static_cast<int>(outs.size());
    while (hi - lo >= 2) {
        int node = -1;
        for (std::size_t i = 0; i < demux[in].size(); ++i)
            if (demux[in][i].lo == lo && demux[in][i].hi == hi)
                node = static_cast<int>(i);
        const int mid = splitMid(lo, hi);
        if (branch < mid) {
            path.emplace_back(node, 0);
            hi = mid;
        } else {
            path.emplace_back(node, 1);
            lo = mid;
        }
    }
    return path;
}

int
RouterPlan::mergerDepth(int out) const
{
    const int n = static_cast<int>(feeders[out].size());
    return n < 2 ? 0 : log2Of(nextPow2(n));
}

std::vector<int>
GridPlan::sinkTiles() const
{
    std::set<int> sinks;
    for (const FlowPlan &f : flows)
        sinks.insert(f.spec.dst);
    return {sinks.begin(), sinks.end()};
}

Tick
GridPlan::triggerTime(int flow) const
{
    const FlowPlan &f = flows[flow];
    return computeStart + static_cast<Tick>(f.window) * windowPitch +
           (maxFlowLatency - f.latency);
}

Tick
GridPlan::remainingAfter(int flow, int hop) const
{
    const FlowPlan &f = flows[flow];
    const int tail = static_cast<int>(f.routers.size()) - 1 - hop;
    return static_cast<Tick>(tail) * (linkLatency + routerLatency);
}

GridPlan
planGrid(const GridSpec &spec)
{
    std::string err;
    if (!spec.validate(&err))
        fatal("%s", err.c_str());

    GridPlan plan;
    plan.spec = spec;
    plan.cfg = EpochConfig(spec.bits, tileSlotWidth(spec.kind, spec.taps));
    plan.routers.resize(spec.rows * spec.cols);

    // XY dimension-order routes, and the structural union per router.
    for (const FlowSpec &fs : spec.flows) {
        FlowPlan fp;
        fp.spec = fs;
        int row = fs.src / spec.cols;
        int col = fs.src % spec.cols;
        const int drow = fs.dst / spec.cols;
        const int dcol = fs.dst % spec.cols;
        fp.routers.push_back(fs.src);
        fp.inDir.push_back(kDirLocal);
        while (col != dcol || row != drow) {
            int dir;
            if (col != dcol)
                dir = dcol > col ? kDirE : kDirW;
            else
                dir = drow > row ? kDirS : kDirN;
            fp.outDir.push_back(dir);
            col += dir == kDirE ? 1 : dir == kDirW ? -1 : 0;
            row += dir == kDirS ? 1 : dir == kDirN ? -1 : 0;
            fp.routers.push_back(row * spec.cols + col);
            fp.inDir.push_back(oppositeDir(dir));
        }
        fp.outDir.push_back(kDirLocal);
        for (std::size_t k = 0; k < fp.routers.size(); ++k) {
            RouterPlan &rp = plan.routers[fp.routers[k]];
            rp.inUsed[fp.inDir[k]] = true;
            rp.outUsed[fp.outDir[k]] = true;
            rp.turn[fp.inDir[k]][fp.outDir[k]] = true;
        }
        plan.flows.push_back(std::move(fp));
    }

    for (RouterPlan &rp : plan.routers) {
        for (int in = 0; in < kDirCount; ++in)
            for (int out = 0; out < kDirCount; ++out)
                if (rp.turn[in][out]) {
                    rp.feeders[out].push_back(in);
                    rp.branches[in].push_back(out);
                }
        // Binary demux tree per input, breadth-first over branch
        // ranges; leaves (single-branch ranges) need no node.
        for (int in = 0; in < kDirCount; ++in) {
            const int k = static_cast<int>(rp.branches[in].size());
            if (k < 2)
                continue;
            std::vector<RouterPlan::DemuxNode> pending;
            pending.push_back({0, splitMid(0, k), k, 0});
            for (std::size_t i = 0; i < pending.size(); ++i) {
                const RouterPlan::DemuxNode node = pending[i];
                rp.demux[in].push_back(node);
                if (node.mid - node.lo >= 2)
                    pending.push_back({node.lo,
                                       splitMid(node.lo, node.mid),
                                       node.mid, node.depth + 1});
                if (node.hi - node.mid >= 2)
                    pending.push_back({node.mid,
                                       splitMid(node.mid, node.hi),
                                       node.hi, node.depth + 1});
            }
        }
    }

    // Slot-aligned latency budget.  Every router traversal is padded to
    // one grid-wide constant (and every link to another) so a flow's
    // latency depends only on its hop count -- the phase algebra that
    // keeps all streams on one global slot grid.
    const Tick slot = plan.cfg.slotWidth();
    Tick maxRaw = 0;
    for (const RouterPlan &rp : plan.routers)
        for (int in = 0; in < kDirCount; ++in)
            for (int out = 0; out < kDirCount; ++out)
                if (rp.turn[in][out]) {
                    const Tick raw =
                        cell::kJtlDelay +
                        static_cast<Tick>(rp.demuxDepth(in, out)) *
                            cell::kMuxDelay +
                        static_cast<Tick>(rp.mergerDepth(out)) *
                            cell::kMergerDelay;
                    maxRaw = std::max(maxRaw, raw);
                }
    // + kJtlDelay so even the slowest turn gets a real pad JTL.
    plan.routerLatency = ceilToSlot(maxRaw + cell::kJtlDelay, slot);
    plan.linkLatency = ceilToSlot(
        static_cast<Tick>(spec.linkHops) * cell::kJtlDelay, slot);

    for (FlowPlan &f : plan.flows) {
        const Tick hops = static_cast<Tick>(f.routers.size());
        f.latency =
            hops * plan.routerLatency + (hops - 1) * plan.linkLatency;
        plan.maxFlowLatency = std::max(plan.maxFlowLatency, f.latency);
    }

    // TDM coloring over channel-conflict groups.  A channel is a
    // (router, output) pair; two groups that share one must get
    // different windows.  With sharedSinkWindows, all flows to one sink
    // form a single group (identical route suffixes from any shared
    // point, so in-window merging is well defined); otherwise every
    // flow is its own group.
    std::vector<std::vector<int>> groups;
    std::map<int, int> groupOfSink;
    for (std::size_t i = 0; i < plan.flows.size(); ++i) {
        const int dst = plan.flows[i].spec.dst;
        if (spec.sharedSinkWindows) {
            auto it = groupOfSink.find(dst);
            if (it == groupOfSink.end()) {
                groupOfSink[dst] = static_cast<int>(groups.size());
                groups.push_back({static_cast<int>(i)});
            } else {
                groups[it->second].push_back(static_cast<int>(i));
            }
        } else {
            groups.push_back({static_cast<int>(i)});
        }
    }
    std::vector<std::set<int>> channels(groups.size());
    for (std::size_t g = 0; g < groups.size(); ++g)
        for (int fi : groups[g]) {
            const FlowPlan &f = plan.flows[fi];
            for (std::size_t k = 0; k < f.routers.size(); ++k)
                channels[g].insert(f.routers[k] * kDirCount +
                                   f.outDir[k]);
        }
    std::vector<int> color(groups.size(), -1);
    int numColors = 0;
    for (std::size_t g = 0; g < groups.size(); ++g) {
        std::set<int> busy;
        for (std::size_t h = 0; h < g; ++h) {
            const bool conflict = std::any_of(
                channels[h].begin(), channels[h].end(),
                [&](int c) { return channels[g].count(c) != 0; });
            if (conflict)
                busy.insert(color[h]);
        }
        int c = 0;
        while (busy.count(c) != 0)
            ++c;
        color[g] = c;
        numColors = std::max(numColors, c + 1);
        for (int fi : groups[g])
            plan.flows[fi].window = c;
    }
    plan.windows = std::max(numColors, 1);

    // Window pitch = epoch + worst route latency: by the time window
    // w+1 is launched anywhere, every window-w pulse has drained from
    // the entire fabric, so windows can never interact.
    plan.windowPitch = plan.cfg.duration() + plan.maxFlowLatency;

    // Tiles finish computing (and injectors finish counting) before
    // the first window launches.  PE tiles convert their result one
    // epoch late, hence the extra epoch.
    plan.computeStart =
        static_cast<Tick>(spec.kind == TileKind::Pe ? 3 : 2) *
        plan.cfg.duration();

    plan.horizon = plan.computeStart +
                   static_cast<Tick>(plan.windows - 1) * plan.windowPitch +
                   plan.maxFlowLatency + plan.cfg.duration() + slot;
    return plan;
}

std::vector<FlowSpec>
columnCollectFlows(int rows, int cols)
{
    std::vector<FlowSpec> flows;
    for (int r = 1; r < rows; ++r)
        for (int c = 0; c < cols; ++c)
            flows.push_back({r * cols + c, c});
    return flows;
}

std::vector<FlowSpec>
hotspotFlows(int rows, int cols, int dst)
{
    std::vector<FlowSpec> flows;
    for (int t = 0; t < rows * cols; ++t)
        if (t != dst)
            flows.push_back({t, dst});
    return flows;
}

std::uint64_t
observationDigest(const FabricObservation &obs)
{
    std::uint64_t h = kFnvBasis;
    h = fnvU64(h, obs.sinks.size());
    for (int s : obs.sinks)
        h = fnvU64(h, static_cast<std::uint64_t>(s));
    for (const auto &row : obs.sinkWindowCounts) {
        h = fnvU64(h, row.size());
        for (std::uint64_t c : row)
            h = fnvU64(h, c);
    }
    for (std::uint64_t c : obs.routerCollisions)
        h = fnvU64(h, c);
    h = fnvU64(h, obs.outputWindowPulses.size());
    for (std::uint64_t c : obs.outputWindowPulses)
        h = fnvU64(h, c);
    h = fnvU64(h, obs.delivered);
    h = fnvU64(h, obs.collisions);
    return h;
}

std::string
routerLabel(const GridSpec &spec, int router)
{
    return "r" + std::to_string(router / spec.cols) + "_" +
           std::to_string(router % spec.cols);
}

std::vector<std::vector<OutputWindowBase>>
outputWindowBases(const GridPlan &plan)
{
    std::vector<std::vector<OutputWindowBase>> bases(
        plan.routers.size() * kDirCount);
    const Tick sinkBase = plan.computeStart + plan.maxFlowLatency +
                          plan.cfg.slotWidth() / 2;
    std::map<std::pair<std::size_t, int>, Tick> seen;
    for (std::size_t f = 0; f < plan.flows.size(); ++f) {
        const FlowPlan &fp = plan.flows[f];
        for (std::size_t k = 0; k < fp.routers.size(); ++k) {
            const std::size_t ch =
                static_cast<std::size_t>(fp.routers[k]) * kDirCount +
                static_cast<std::size_t>(fp.outDir[k]);
            const Tick start =
                sinkBase +
                static_cast<Tick>(fp.window) * plan.windowPitch -
                plan.remainingAfter(static_cast<int>(f),
                                    static_cast<int>(k));
            const auto [it, fresh] =
                seen.emplace(std::pair{ch, fp.window}, start);
            if (!fresh) {
                if (it->second != start)
                    fatal("noc: window %d reaches router %d output "
                          "%s at two different phases",
                          fp.window, fp.routers[k],
                          dirName(fp.outDir[k]));
                continue;
            }
            bases[ch].push_back({start, fp.window});
        }
    }
    for (auto &channel : bases)
        std::sort(channel.begin(), channel.end(),
                  [](const OutputWindowBase &a,
                     const OutputWindowBase &b) {
                      return a.start < b.start;
                  });
    return bases;
}

double
windowUtilization(const GridPlan &plan, const FabricObservation &obs)
{
    std::set<std::pair<int, int>> scheduled;
    for (const FlowPlan &f : plan.flows)
        scheduled.insert({f.spec.dst, f.window});
    const double capacity =
        static_cast<double>(scheduled.size()) *
        static_cast<double>(plan.cfg.nmax());
    return capacity > 0.0
               ? static_cast<double>(obs.delivered) / capacity
               : 0.0;
}

void
exportFabricTelemetry(const GridPlan &plan,
                      const FabricObservation &obs,
                      obs::StatsRegistry &reg,
                      const std::string &prefix)
{
    const auto bases = outputWindowBases(plan);
    const std::size_t windows = static_cast<std::size_t>(plan.windows);
    for (std::size_t r = 0; r < plan.routers.size(); ++r) {
        if (!plan.routers[r].used())
            continue;
        const std::string rb =
            prefix + "/" + routerLabel(plan.spec, static_cast<int>(r));
        reg.counter(rb + "/collisions")
            .inc(r < obs.routerCollisions.size()
                     ? obs.routerCollisions[r]
                     : 0);
        for (int d = 0; d < kDirCount; ++d) {
            const std::size_t ch =
                r * kDirCount + static_cast<std::size_t>(d);
            if (bases[ch].empty())
                continue;
            const std::string ob = rb + "/out_" + dirName(d);
            std::uint64_t total = 0;
            for (const OutputWindowBase &b : bases[ch]) {
                const std::size_t idx =
                    ch * windows + static_cast<std::size_t>(b.window);
                const std::uint64_t v =
                    idx < obs.outputWindowPulses.size()
                        ? obs.outputWindowPulses[idx]
                        : 0;
                reg.counter(ob + "/w" + std::to_string(b.window))
                    .inc(v);
                total += v;
            }
            if (d != kDirLocal)
                reg.counter(ob + "/link_pulses").inc(total);
        }
    }
    reg.counter(prefix + "/fabric/delivered").inc(obs.delivered);
    reg.counter(prefix + "/fabric/collisions").inc(obs.collisions);
    reg.gauge(prefix + "/fabric/window_utilization",
              obs::Gauge::Merge::Max)
        .high(windowUtilization(plan, obs));
}

TileOperands
drawTileOperands(const GridPlan &plan, std::uint64_t seed)
{
    Rng rng(seed);
    const int n = plan.tiles() * plan.spec.taps;
    TileOperands ops;
    ops.streams.reserve(n);
    ops.ids.reserve(n);
    for (int i = 0; i < n; ++i) {
        ops.streams.push_back(
            static_cast<int>(rng.uniformInt(0, plan.cfg.nmax())));
        ops.ids.push_back(
            static_cast<int>(rng.uniformInt(0, plan.cfg.nmax())));
    }
    return ops;
}

long long
fabricJJs(const GridPlan &plan)
{
    long long jjs = 0;
    for (const RouterPlan &rp : plan.routers) {
        for (int in = 0; in < kDirCount; ++in) {
            if (!rp.inUsed[in])
                continue;
            jjs += cell::kJtlJJs; // input buffer
            jjs += static_cast<long long>(rp.demux[in].size()) *
                   cell::kDemuxJJs;
        }
        for (int in = 0; in < kDirCount; ++in)
            for (int out = 0; out < kDirCount; ++out)
                if (rp.turn[in][out])
                    jjs += cell::kJtlJJs; // pad JTL
        for (int out = 0; out < kDirCount; ++out) {
            const int n = static_cast<int>(rp.feeders[out].size());
            if (n >= 2)
                jjs += static_cast<long long>(nextPow2(n) - 1) *
                       cell::kMergerJJs;
        }
    }
    for (std::size_t r = 0; r < plan.routers.size(); ++r)
        for (int out = 0; out < kDirLocal; ++out)
            if (plan.routers[r].outUsed[out])
                jjs += static_cast<long long>(plan.spec.linkHops) *
                       cell::kJtlJJs;
    return jjs;
}

} // namespace usfq::noc
