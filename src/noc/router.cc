#include "noc/router.hh"

#include <algorithm>

#include "sfq/params.hh"
#include "util/logging.hh"

namespace usfq::noc
{

NocLink::NocLink(Netlist &nl, const std::string &name, int hops,
                 Tick targetLatency)
    : Component(nl, name)
{
    // The last stage absorbs the slot-rounding remainder; targetLatency
    // >= hops * kJtlDelay always holds by construction (plan.cc).
    const Tick tail =
        targetLatency - static_cast<Tick>(hops - 1) * cell::kJtlDelay;
    for (int i = 0; i < hops; ++i) {
        const Tick delay = i == hops - 1 ? tail : cell::kJtlDelay;
        stages.push_back(std::make_unique<Jtl>(
            netlist(), this->name() + ".j" + std::to_string(i), delay));
        if (i > 0)
            stages[i - 1]->out.connect(stages[i]->in);
    }
}

int
NocLink::jjCount() const
{
    return static_cast<int>(stages.size()) * cell::kJtlJJs;
}

NocRouter::NocRouter(Netlist &nl, const std::string &name,
                     const RouterPlan &plan, Tick routerLatency)
    : Component(nl, name), rp(plan)
{
    // Input buffers, demux trees and pad JTLs.
    for (int in = 0; in < kDirCount; ++in) {
        if (!rp.inUsed[in])
            continue;
        bufs[in] = std::make_unique<Jtl>(
            netlist(),
            this->name() + ".buf_" + dirName(in));
        for (std::size_t d = 0; d < rp.demux[in].size(); ++d)
            demuxes[in].push_back(std::make_unique<Demux>(
                netlist(), this->name() + ".dx_" + dirName(in) + "_" +
                               std::to_string(d)));
        for (int out : rp.branches[in]) {
            const Tick raw =
                cell::kJtlDelay +
                static_cast<Tick>(rp.demuxDepth(in, out)) *
                    cell::kMuxDelay +
                static_cast<Tick>(rp.mergerDepth(out)) *
                    cell::kMergerDelay;
            pads[in][out] = std::make_unique<Jtl>(
                netlist(),
                this->name() + ".pad_" + dirName(in) + "_" +
                    dirName(out),
                routerLatency - raw);
        }
    }

    // Output merger trees (padded to a power of two; silent leaves are
    // waived -- they model the tree's unused arbitration capacity).
    for (int out = 0; out < kDirCount; ++out) {
        const int n = static_cast<int>(rp.feeders[out].size());
        if (n < 2)
            continue;
        int padded = 2;
        while (padded < n)
            padded <<= 1;
        trees[out] = std::make_unique<MergerTreeAdder>(
            netlist(), this->name() + ".mrg_" + dirName(out), padded);
        for (int i = n; i < padded; ++i)
            trees[out]->in(i).markOptional(
                "noc router: merger tree padded to a power of two");
    }

    // Wiring: buf -> demux tree -> pad -> merger leaf.
    for (int in = 0; in < kDirCount; ++in) {
        if (!rp.inUsed[in])
            continue;
        const auto &outs = rp.branches[in];
        if (outs.size() == 1) {
            bufs[in]->out.connect(pads[in][outs[0]]->in);
        } else {
            bufs[in]->out.connect(demuxes[in][0]->in);
            for (std::size_t d = 0; d < rp.demux[in].size(); ++d) {
                const RouterPlan::DemuxNode &node = rp.demux[in][d];
                const auto wire = [&](int lo, int hi, OutputPort &src) {
                    if (hi - lo >= 2) {
                        for (std::size_t c = 0; c < rp.demux[in].size();
                             ++c)
                            if (rp.demux[in][c].lo == lo &&
                                rp.demux[in][c].hi == hi)
                                src.connect(demuxes[in][c]->in);
                    } else {
                        src.connect(pads[in][outs[lo]]->in);
                    }
                };
                wire(node.lo, node.mid, demuxes[in][d]->out0);
                wire(node.mid, node.hi, demuxes[in][d]->out1);
            }
        }
        for (int out : outs) {
            if (!trees[out])
                continue;
            const auto &fdrs = rp.feeders[out];
            int leaf = 0;
            while (fdrs[leaf] != in)
                ++leaf;
            pads[in][out]->out.connect(trees[out]->in(leaf));
        }
    }
}

OutputPort &
NocRouter::out(int dir)
{
    if (trees[dir])
        return trees[dir]->out();
    return pads[rp.feeders[dir][0]][dir]->out;
}

InputPort &
NocRouter::sel(int dir, int node, int side)
{
    Demux &dx = *demuxes[dir][node];
    return side == 0 ? dx.sel0 : dx.sel1;
}

std::uint64_t
NocRouter::collisions() const
{
    std::uint64_t total = 0;
    for (const auto &tree : trees)
        if (tree)
            total += tree->collisions();
    return total;
}

int
NocRouter::jjCount() const
{
    int jjs = 0;
    for (int in = 0; in < kDirCount; ++in) {
        if (bufs[in])
            jjs += bufs[in]->jjCount();
        for (const auto &dx : demuxes[in])
            jjs += dx->jjCount();
        for (int out = 0; out < kDirCount; ++out)
            if (pads[in][out])
                jjs += pads[in][out]->jjCount();
    }
    for (const auto &tree : trees)
        if (tree)
            jjs += tree->jjCount();
    return jjs;
}

void
NocRouter::reset()
{
    for (int in = 0; in < kDirCount; ++in) {
        if (bufs[in])
            bufs[in]->reset();
        for (auto &dx : demuxes[in])
            dx->reset();
        for (int out = 0; out < kDirCount; ++out)
            if (pads[in][out])
                pads[in][out]->reset();
    }
    for (auto &tree : trees)
        if (tree)
            tree->reset();
}

NocInjector::NocInjector(Netlist &nl, const std::string &name,
                         const EpochConfig &cfg, Tick countFrom)
    : Component(nl, name),
      in("in",
         [this](Tick t) {
             if (t < this->countFrom)
                 return;
             if (fired)
                 ++late;
             else
                 ++count;
         }),
      trigger("trigger",
              [this](Tick t) {
                  fired = true;
                  const int n = std::min(
                      static_cast<int>(count), this->cfg.nmax());
                  for (Tick at : this->cfg.streamTimes(n))
                      out.emit(t + at);
              }),
      out("out", &nl.queue()), cfg(cfg), countFrom(countFrom)
{
    addPorts(in, trigger);
    addPort(out);
}

void
NocInjector::reset()
{
    count = 0;
    late = 0;
    fired = false;
}

TimingModel
NocInjector::timingModel() const
{
    TimingModel model;
    // The stream launches inside [slot/2, epoch - slot/2] after the
    // trigger; the tile-side input only changes stored state (no arc),
    // which is also what keeps the tile's local epoch windows from
    // leaking onto the fabric's slot grid.
    model.arcs.push_back({1, 0, cfg.slotWidth() / 2,
                          cfg.duration() - cfg.slotWidth() / 2, 1});
    model.floors.push_back({0, cfg.slotWidth()});
    model.registered = true;
    return model;
}

NocTap::NocTap(Netlist &nl, const std::string &name,
               std::vector<std::pair<Tick, int>> windowStarts,
               int windows, int nmax, Tick slot)
    : Component(nl, name),
      in("in",
         [this](Tick t) {
             // Last window whose slot-0 arrival is <= t; window
             // regions at one output never overlap (the pitch exceeds
             // the occupied span), so the bin is unambiguous.
             auto it = std::upper_bound(
                 starts.begin(), starts.end(), t,
                 [](Tick v, const std::pair<Tick, int> &s) {
                     return v < s.first;
                 });
             if (it == starts.begin()) {
                 ++offGrid;
                 return;
             }
             --it;
             const Tick rel = t - it->first;
             if (rel % this->slot != 0 ||
                 rel / this->slot >= this->nmax)
                 ++offGrid;
             else
                 ++counts[static_cast<std::size_t>(it->second)];
         }),
      starts(std::move(windowStarts)), nmax(nmax), slot(slot),
      counts(static_cast<std::size_t>(windows), 0)
{
    addPort(in);
}

void
NocTap::reset()
{
    counts.assign(counts.size(), 0);
    offGrid = 0;
}

NocSink::NocSink(Netlist &nl, const std::string &name, int windows,
                 int nmax, Tick firstArrival, Tick pitch, Tick slot)
    : Component(nl, name),
      in("in",
         [this](Tick t) {
             const Tick rel = t - base;
             const Tick w = rel >= 0 ? rel / this->pitch : -1;
             const Tick off =
                 w >= 0 ? rel - w * this->pitch : static_cast<Tick>(-1);
             if (w < 0 || w >= static_cast<Tick>(counts.size()) ||
                 off % this->slot != 0 ||
                 off / this->slot >= this->nmax)
                 ++offGrid;
             else
                 ++counts[static_cast<std::size_t>(w)];
         }),
      nmax(nmax), base(firstArrival), pitch(pitch), slot(slot),
      counts(static_cast<std::size_t>(windows), 0)
{
    addPort(in);
}

void
NocSink::reset()
{
    counts.assign(counts.size(), 0);
    offGrid = 0;
}

} // namespace usfq::noc
