/**
 * @file
 * TileGrid: instantiates a planned NoC fabric (noc/plan.hh) inside a
 * Netlist -- compute tiles (DPU / PE / FIR-step), injector and sink
 * terminals, routers, links, and the TDM schedule sources (injector
 * triggers + demux selects) -- wired lint-clean and grouped so
 * Netlist::report() rolls the fabric up per tile / router / link.
 *
 * The builder is deliberately NOT a Component: everything it makes is
 * create<>'d on the netlist (correct totalJJs() and report() without
 * double counting), and the builder object itself is just handles.
 *
 * One TileGrid == one computing epoch: program the seeded operands
 * once (programOperands), elaborate, run(plan.horizon), observe().
 */

#ifndef USFQ_NOC_GRID_HH
#define USFQ_NOC_GRID_HH

#include <cstdint>
#include <vector>

#include "core/dpu.hh"
#include "core/pe.hh"
#include "noc/plan.hh"
#include "noc/router.hh"
#include "sfq/sources.hh"
#include "sim/netlist.hh"

namespace usfq::noc
{

class TileGrid
{
  public:
    TileGrid(Netlist &nl, const GridPlan &plan);

    const GridPlan &plan() const { return gp; }

    /**
     * Program the per-tile operand sources (the only seed-dependent
     * stimulus; triggers / selects / epoch markers are planned and
     * programmed at construction).  Call exactly once, before run.
     */
    void programOperands(const TileOperands &ops);

    /** Collect the flit-for-flit observables after a run. */
    FabricObservation observe() const;

    /** Tile pulses that arrived at injectors after their trigger. */
    std::uint64_t latePulses() const;

    /**
     * Per-tile injected value (post-cap), 0 for non-source tiles --
     * comparable against func::nocTileCounts after a run.
     */
    std::vector<int> injectedCounts() const;

    /** Sink pulses off the global window/slot grid. */
    std::uint64_t misaligned() const;

    /** Router at @p id, or null when no flow crosses it. */
    NocRouter *router(int id) { return routers[id]; }
    const NocRouter *router(int id) const { return routers[id]; }

  private:
    struct Tile
    {
        DotProductUnit *dpu = nullptr;
        ProcessingElement *pe = nullptr;
        std::vector<PulseSource *> rl;     ///< DPU a_i sources
        std::vector<PulseSource *> stream; ///< DPU b_i sources
        PulseSource *in1 = nullptr;        ///< PE operand sources
        PulseSource *in2 = nullptr;
        PulseSource *in3 = nullptr;
        NocInjector *inj = nullptr;
        NocSink *snk = nullptr;
    };

    void buildTile(int t, int flow);
    void buildRouters();
    void buildLinks();
    void buildTaps();

    Netlist &nl;
    GridPlan gp;
    std::vector<Tile> tiles;
    std::vector<NocRouter *> routers;

    /** Output occupancy taps, router * kDirCount + dir (sparse). */
    std::vector<NocTap *> taps;
};

/** One pulse-level fabric evaluation (fresh netlist, one epoch). */
struct PulseFabricResult
{
    FabricObservation obs;
    std::uint64_t latePulses = 0;
    std::uint64_t misaligned = 0;
    long long totalJJ = 0;
};

PulseFabricResult runPulseFabric(const GridPlan &plan,
                                 std::uint64_t seed);

} // namespace usfq::noc

#endif // USFQ_NOC_GRID_HH
