#include "noc/grid.hh"

#include <algorithm>

#include <map>
#include <set>
#include <string>
#include <tuple>

#include "core/multiplier.hh"
#include "sfq/params.hh"
#include "util/logging.hh"

namespace usfq::noc
{

namespace
{

/** RL operand skew of the DPU drive (same as the API facade's). */
Tick
dpuSetLag(int length)
{
    int depth = 0, n = 1;
    while (n < length) {
        n <<= 1;
        ++depth;
    }
    return static_cast<Tick>(depth) * 3 * kPicosecond;
}

constexpr Tick kPeRlOff = 5 * kPicosecond;

std::string
tileName(const GridPlan &gp, int t)
{
    return "t" + std::to_string(t / gp.spec.cols) + "_" +
           std::to_string(t % gp.spec.cols);
}

std::string
routerName(const GridPlan &gp, int r)
{
    return "r" + std::to_string(r / gp.spec.cols) + "_" +
           std::to_string(r % gp.spec.cols);
}

} // namespace

TileGrid::TileGrid(Netlist &netlist, const GridPlan &plan)
    : nl(netlist), gp(plan),
      tiles(static_cast<std::size_t>(plan.tiles())),
      routers(static_cast<std::size_t>(plan.tiles()), nullptr)
{
    std::vector<int> flowOf(tiles.size(), -1);
    for (std::size_t f = 0; f < gp.flows.size(); ++f)
        flowOf[static_cast<std::size_t>(gp.flows[f].spec.src)] =
            static_cast<int>(f);
    for (int t = 0; t < gp.tiles(); ++t)
        buildTile(t, flowOf[static_cast<std::size_t>(t)]);
    buildRouters();
    buildLinks();
    buildTaps();
}

void
TileGrid::buildTile(int t, int flow)
{
    const std::string tn = tileName(gp, t);
    const EpochConfig &cfg = gp.cfg;
    Tile &tile = tiles[static_cast<std::size_t>(t)];
    auto scope = nl.scope(tn);

    OutputPort *result = nullptr;
    if (gp.spec.kind == TileKind::Pe) {
        tile.pe = &nl.create<ProcessingElement>(tn + ".pe", cfg);
        auto &e = nl.create<PulseSource>(tn + ".e");
        e.out.connect(tile.pe->epoch());
        e.pulseAt(0);
        e.pulseAt(cfg.duration()); // conversion trigger
        tile.in1 = &nl.create<PulseSource>(tn + ".in1");
        tile.in2 = &nl.create<PulseSource>(tn + ".in2");
        tile.in3 = &nl.create<PulseSource>(tn + ".in3");
        tile.in1->out.connect(tile.pe->in1());
        tile.in2->out.connect(tile.pe->in2());
        tile.in3->out.connect(tile.pe->in3());
        result = &tile.pe->out();
    } else {
        tile.dpu = &nl.create<DotProductUnit>(tn + ".dpu", gp.spec.taps,
                                              gp.spec.mode);
        auto &e = nl.create<PulseSource>(tn + ".e");
        e.out.connect(tile.dpu->epochIn());
        e.pulseAt(0);
        if (gp.spec.mode == DpuMode::Bipolar) {
            auto &clk = nl.create<PulseSource>(tn + ".clk");
            clk.out.connect(tile.dpu->clkIn());
            clk.pulsesAt(BipolarMultiplier::gridClockTimes(cfg, 0));
        } else {
            tile.dpu->clkIn().markOptional(
                "noc tile: unipolar DPU needs no grid clock");
        }
        for (int i = 0; i < gp.spec.taps; ++i) {
            auto &a = nl.create<PulseSource>(tn + ".a" +
                                             std::to_string(i));
            auto &b = nl.create<PulseSource>(tn + ".b" +
                                             std::to_string(i));
            a.out.connect(tile.dpu->rlIn(i));
            b.out.connect(tile.dpu->streamIn(i));
            tile.rl.push_back(&a);
            tile.stream.push_back(&b);
        }
        result = &tile.dpu->out();
    }

    if (flow >= 0) {
        const Tick countFrom =
            gp.spec.kind == TileKind::Pe ? cfg.duration() + 1 : 0;
        tile.inj =
            &nl.create<NocInjector>(tn + ".inj", cfg, countFrom);
        result->connect(tile.inj->in);
        auto &trig = nl.create<PulseSource>(tn + ".trig");
        trig.out.connect(tile.inj->trigger);
        trig.pulseAt(gp.triggerTime(flow));
    } else {
        result->markOpen(
            "noc: tile result not sourced into the fabric");
    }

    bool isSink = false;
    for (const FlowPlan &f : gp.flows)
        isSink = isSink || f.spec.dst == t;
    if (isSink)
        tile.snk = &nl.create<NocSink>(
            tn + ".snk", gp.windows, cfg.nmax(),
            gp.computeStart + gp.maxFlowLatency + cfg.slotWidth() / 2,
            gp.windowPitch, cfg.slotWidth());
}

void
TileGrid::buildRouters()
{
    const Tick slot = gp.cfg.slotWidth();

    // TDM demux-select schedule: for every (router, input, tree node),
    // which side each active window steers to, and when the select
    // pulse must arrive (a quarter slot before the window's first data
    // pulse reaches the node -- clear of the demux setup window, and
    // the previous window has fully drained long before).
    std::map<std::tuple<int, int, int>, std::map<int, int>> sides;
    std::map<std::tuple<int, int, int, int>, Tick> when;
    for (std::size_t f = 0; f < gp.flows.size(); ++f) {
        const FlowPlan &fp = gp.flows[f];
        for (std::size_t k = 0; k < fp.routers.size(); ++k) {
            const int r = fp.routers[k];
            const int in = fp.inDir[k];
            const RouterPlan &rp =
                gp.routers[static_cast<std::size_t>(r)];
            for (auto [node, side] : rp.demuxPath(in, fp.outDir[k])) {
                sides[{r, in, node}][fp.window] = side;
                const Tick dataFirst =
                    gp.computeStart +
                    static_cast<Tick>(fp.window) * gp.windowPitch +
                    gp.maxFlowLatency -
                    gp.remainingAfter(static_cast<int>(f),
                                      static_cast<int>(k)) -
                    gp.routerLatency + cell::kJtlDelay +
                    static_cast<Tick>(
                        rp.demux[in][static_cast<std::size_t>(node)]
                            .depth) *
                        cell::kMuxDelay +
                    slot / 2;
                when[{r, in, node, fp.window}] = dataFirst - slot / 4;
            }
        }
    }

    for (int r = 0; r < gp.tiles(); ++r) {
        const RouterPlan &rp = gp.routers[static_cast<std::size_t>(r)];
        if (!rp.used())
            continue;
        routers[static_cast<std::size_t>(r)] = &nl.create<NocRouter>(
            routerName(gp, r), rp, gp.routerLatency);
    }

    for (const auto &[key, windowSides] : sides) {
        const auto [r, in, node] = key;
        NocRouter &router = *routers[static_cast<std::size_t>(r)];
        for (int side = 0; side < 2; ++side) {
            std::vector<Tick> times;
            for (const auto &[w, s] : windowSides)
                if (s == side)
                    times.push_back(when.at({r, in, node, w}));
            if (times.empty()) {
                router.sel(in, node, side)
                    .markOptional(
                        "noc router: demux never steers this side");
                continue;
            }
            auto &src = nl.create<PulseSource>(
                routerName(gp, r) + ".sel_" + dirName(in) + "_" +
                std::to_string(node) + "_" + std::to_string(side));
            src.pulsesAt(times);
            src.out.connect(router.sel(in, node, side));
        }
    }

    // Terminal wiring: injectors onto their local router input, sink
    // tiles off their local router output.
    for (const FlowPlan &f : gp.flows) {
        Tile &src = tiles[static_cast<std::size_t>(f.spec.src)];
        src.inj->out.connect(
            routers[static_cast<std::size_t>(f.spec.src)]->in(
                kDirLocal));
    }
    for (int s : gp.sinkTiles())
        routers[static_cast<std::size_t>(s)]->out(kDirLocal).connect(
            tiles[static_cast<std::size_t>(s)].snk->in);
}

void
TileGrid::buildLinks()
{
    for (int r = 0; r < gp.tiles(); ++r) {
        const RouterPlan &rp = gp.routers[static_cast<std::size_t>(r)];
        for (int dir = 0; dir < kDirLocal; ++dir) {
            if (!rp.outUsed[dir])
                continue;
            const int neighbor =
                dir == kDirN   ? r - gp.spec.cols
                : dir == kDirS ? r + gp.spec.cols
                : dir == kDirE ? r + 1
                               : r - 1;
            auto &link = nl.create<NocLink>(
                routerName(gp, r) + ".l_" + dirName(dir),
                gp.spec.linkHops, gp.linkLatency);
            routers[static_cast<std::size_t>(r)]->out(dir).connect(
                link.in());
            link.out().connect(
                routers[static_cast<std::size_t>(neighbor)]->in(
                    oppositeDir(dir)));
        }
    }
}

void
TileGrid::buildTaps()
{
    const auto bases = outputWindowBases(gp);
    taps.assign(static_cast<std::size_t>(gp.tiles()) * kDirCount,
                nullptr);
    for (int r = 0; r < gp.tiles(); ++r) {
        for (int d = 0; d < kDirCount; ++d) {
            const std::size_t ch =
                static_cast<std::size_t>(r) * kDirCount +
                static_cast<std::size_t>(d);
            if (bases[ch].empty())
                continue;
            std::vector<std::pair<Tick, int>> starts;
            starts.reserve(bases[ch].size());
            for (const OutputWindowBase &b : bases[ch])
                starts.emplace_back(b.start, b.window);
            auto &tap = nl.create<NocTap>(
                routerName(gp, r) + ".tap_" + dirName(d),
                std::move(starts), gp.windows, gp.cfg.nmax(),
                gp.cfg.slotWidth());
            OutputPort &out =
                routers[static_cast<std::size_t>(r)]->out(d);
            out.markFanoutOk(); // observation shares the output net
            out.connect(tap.in);
            taps[ch] = &tap;
        }
    }
}

void
TileGrid::programOperands(const TileOperands &ops)
{
    const EpochConfig &cfg = gp.cfg;
    const Tick rlOff = dpuSetLag(gp.spec.taps) + 1 * kPicosecond;
    for (int t = 0; t < gp.tiles(); ++t) {
        Tile &tile = tiles[static_cast<std::size_t>(t)];
        const std::size_t base =
            static_cast<std::size_t>(t) *
            static_cast<std::size_t>(gp.spec.taps);
        if (tile.pe != nullptr) {
            tile.in1->pulseAt(kPeRlOff + cfg.rlTime(ops.ids[base]));
            tile.in2->pulsesAt(cfg.streamTimes(ops.streams[base]));
            tile.in3->pulsesAt(cfg.streamTimes(
                gp.spec.taps > 1 ? ops.streams[base + 1] : 0));
        } else {
            for (int i = 0; i < gp.spec.taps; ++i) {
                const std::size_t k =
                    base + static_cast<std::size_t>(i);
                tile.rl[static_cast<std::size_t>(i)]->pulseAt(
                    rlOff + cfg.rlTime(ops.ids[k]));
                tile.stream[static_cast<std::size_t>(i)]->pulsesAt(
                    cfg.streamTimes(ops.streams[k]));
            }
        }
    }
}

FabricObservation
TileGrid::observe() const
{
    FabricObservation obs;
    obs.sinks = gp.sinkTiles();
    for (int s : obs.sinks) {
        obs.sinkWindowCounts.push_back(
            tiles[static_cast<std::size_t>(s)].snk->windowCounts());
        for (std::uint64_t c : obs.sinkWindowCounts.back())
            obs.delivered += c;
    }
    obs.routerCollisions.resize(routers.size(), 0);
    for (std::size_t r = 0; r < routers.size(); ++r) {
        obs.routerCollisions[r] =
            routers[r] != nullptr ? routers[r]->collisions() : 0;
        obs.collisions += obs.routerCollisions[r];
    }
    obs.outputWindowPulses.assign(
        taps.size() * static_cast<std::size_t>(gp.windows), 0);
    for (std::size_t ch = 0; ch < taps.size(); ++ch) {
        if (taps[ch] == nullptr)
            continue;
        const auto &counts = taps[ch]->windowCounts();
        for (std::size_t w = 0; w < counts.size(); ++w)
            obs.outputWindowPulses
                [ch * static_cast<std::size_t>(gp.windows) + w] =
                counts[w];
    }
    return obs;
}

std::uint64_t
TileGrid::latePulses() const
{
    std::uint64_t total = 0;
    for (const Tile &t : tiles)
        if (t.inj != nullptr)
            total += t.inj->latePulses();
    return total;
}

std::vector<int>
TileGrid::injectedCounts() const
{
    std::vector<int> counts(tiles.size(), 0);
    for (std::size_t t = 0; t < tiles.size(); ++t)
        if (tiles[t].inj != nullptr)
            counts[t] = std::min(
                static_cast<int>(tiles[t].inj->counted()),
                gp.cfg.nmax());
    return counts;
}

std::uint64_t
TileGrid::misaligned() const
{
    std::uint64_t total = 0;
    for (const Tile &t : tiles)
        if (t.snk != nullptr)
            total += t.snk->misaligned();
    for (const NocTap *tap : taps)
        if (tap != nullptr)
            total += tap->misbinned();
    return total;
}

PulseFabricResult
runPulseFabric(const GridPlan &plan, std::uint64_t seed)
{
    Netlist nl("noc");
    TileGrid grid(nl, plan);
    grid.programOperands(drawTileOperands(plan, seed));
    nl.elaborate();
    nl.run(plan.horizon);
    PulseFabricResult res;
    res.obs = grid.observe();
    res.latePulses = grid.latePulses();
    res.misaligned = grid.misaligned();
    res.totalJJ = nl.totalJJs();
    return res;
}

} // namespace usfq::noc
