#include "soa/table2.hh"

#include "util/logging.hh"

namespace usfq::soa
{

const std::vector<Entry> &
table2()
{
    static const std::vector<Entry> data = {
        // Adders.
        {"[23]", Unit::Adder, 4, 931, 50, Arch::BitParallel,
         "KOPTI 1.0kA/cm2 Nb"},
        {"[41]", Unit::Adder, 8, 6581, 588, Arch::WavePipelined,
         "AIST-STP2"},
        {"[8]*", Unit::Adder, 8, 4351, 222, Arch::WavePipelined, "NG"},
        {"[8]", Unit::Adder, 16, 16683, 255, Arch::WavePipelined, "NG"},
        {"[9]", Unit::Adder, 16, 9941, 352, Arch::WavePipelined,
         "ISTEC 1.0um 10kA/cm2"},
        // Multipliers.
        {"[40]", Unit::Multiplier, 4, 2308, 1250, Arch::SystolicArray,
         "NEC 2.5kA/cm2"},
        {"[40]", Unit::Multiplier, 8, 4616, 2540, Arch::SystolicArray,
         "**"},
        {"[37]", Unit::Multiplier, 8, 17000, 333, Arch::BitParallel,
         "1um Nb/AlOx/Nb"},
        {"[10]", Unit::Multiplier, 8, 5948, 447, Arch::WavePipelined,
         "ISTEC 1.0um 10kA/cm2"},
        {"[40]", Unit::Multiplier, 16, 9232, 5120, Arch::SystolicArray,
         "**"},
    };
    return data;
}

std::vector<Entry>
entries(Unit unit)
{
    std::vector<Entry> out;
    for (const auto &e : table2())
        if (e.unit == unit)
            out.push_back(e);
    return out;
}

std::vector<Entry>
entries(Unit unit, Arch arch)
{
    std::vector<Entry> out;
    for (const auto &e : table2())
        if (e.unit == unit && e.arch == arch)
            out.push_back(e);
    return out;
}

LinearFit
areaFit(Unit unit)
{
    std::vector<double> xs, ys;
    for (const auto &e : table2()) {
        if (e.unit != unit || e.arch == Arch::BitParallel)
            continue;
        xs.push_back(e.bits);
        ys.push_back(e.jjCount);
    }
    return fitLine(xs, ys);
}

LinearFit
latencyFit(Unit unit)
{
    // The state-of-the-art frontier: the fastest wave-pipelined design
    // at each published width (several early designs are much slower
    // than later ones at the same width).
    auto wp = entries(unit, Arch::WavePipelined);
    std::vector<double> xs, ys;
    for (const auto &e : wp) {
        bool best = true;
        for (const auto &other : wp)
            if (other.bits == e.bits &&
                other.latencyPs < e.latencyPs)
                best = false;
        if (best) {
            xs.push_back(e.bits);
            ys.push_back(e.latencyPs);
        }
    }
    if (xs.size() >= 2)
        return fitLine(xs, ys);
    if (xs.size() == 1) {
        // A single frontier point: scale through the origin.
        LinearFit fit;
        fit.slope = ys.front() / xs.front();
        fit.intercept = 0.0;
        fit.r2 = 1.0;
        return fit;
    }
    panic("latencyFit: no wave-pipelined entries");
}

const Entry &
bitParallelMultiplier8()
{
    for (const auto &e : table2())
        if (e.unit == Unit::Multiplier && e.arch == Arch::BitParallel)
            return e;
    panic("bitParallelMultiplier8: missing entry");
}

const Entry &
bitParallelAdder4()
{
    for (const auto &e : table2())
        if (e.unit == Unit::Adder && e.arch == Arch::BitParallel)
            return e;
    panic("bitParallelAdder4: missing entry");
}

const char *
archName(Arch arch)
{
    switch (arch) {
      case Arch::BitParallel:
        return "BP";
      case Arch::WavePipelined:
        return "WP";
      case Arch::SystolicArray:
        return "SA";
    }
    return "?";
}

} // namespace usfq::soa
