/**
 * @file
 * The paper's Table 2: published RSFQ adders and multipliers used as
 * the binary baseline throughout the evaluation, plus the least-squares
 * fits drawn as dashed lines in Figs. 4, 8, 14, 16 and 18.
 */

#ifndef USFQ_SOA_TABLE2_HH
#define USFQ_SOA_TABLE2_HH

#include <string>
#include <vector>

#include "util/stats.hh"

namespace usfq::soa
{

/** Datapath architecture of a published design. */
enum class Arch
{
    BitParallel,   ///< every cell clocked (BP)
    WavePipelined, ///< clock-free data waves (WP)
    SystolicArray, ///< systolic multiplier (SA)
};

/** What the unit computes. */
enum class Unit
{
    Adder,
    Multiplier,
};

/** One published design point. */
struct Entry
{
    std::string ref;   ///< citation key, e.g. "[37]"
    Unit unit;
    int bits;
    int jjCount;
    double latencyPs;
    Arch arch;
    std::string technology;
};

/** The full Table 2 dataset. */
const std::vector<Entry> &table2();

/** Entries filtered by unit (and optionally architecture). */
std::vector<Entry> entries(Unit unit);
std::vector<Entry> entries(Unit unit, Arch arch);

/**
 * Least-squares JJ-count-vs-bits fit over every non-bit-parallel entry
 * of @p unit: the paper's dashed area baseline.
 */
LinearFit areaFit(Unit unit);

/**
 * Latency-vs-bits fit for the wave-pipelined entries of @p unit.  With
 * a single WP multiplier point, the multiplier fit is the
 * through-origin scaling latency = (447/8) * bits of [10].
 */
LinearFit latencyFit(Unit unit);

/** The 48 GHz, 17 kJJ 8-bit bit-parallel multiplier of [37]. */
const Entry &bitParallelMultiplier8();

/** The 4-bit bit-parallel adder of [23] (scaled linearly for B > 4). */
const Entry &bitParallelAdder4();

/** Short human-readable architecture name. */
const char *archName(Arch arch);

} // namespace usfq::soa

#endif // USFQ_SOA_TABLE2_HH
