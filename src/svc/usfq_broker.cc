/**
 * @file
 * Service-layer entry points of the C ABI (usfq.h): the request
 * broker.  Same placement rationale as usfq_cache.cc -- the broker is
 * a service concern, so the entry points live in usfq_svc while the
 * declarations sit in usfq.h -- and the same armor discipline: no
 * exception or fatal() crosses the boundary, statuses out, malloc'd
 * strings freed with usfq_string_free.
 *
 * usfq_broker_run is intentionally synchronous: FFI callers get the
 * broker's admission control, worker pool, backend auto-selection and
 * result cache without having to marshal futures across the C
 * boundary.  Backpressure is absorbed internally (brief sleep and
 * resubmit), so the call blocks rather than failing on a full queue.
 */

#include <chrono>
#include <future>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <utility>

#include "api/usfq.h"
#include "api/usfq_internal.hh"
#include "obs/artifact.hh"
#include "svc/broker.hh"
#include "util/json.hh"

namespace api = usfq::api;
namespace svc = usfq::svc;
using usfq::JsonWriter;
using usfq::api::abi::dupString;
using usfq::api::abi::toStatus;

/** The opaque broker handle: the service broker plus its last error. */
struct usfq_broker
{
    explicit usfq_broker(svc::BrokerOptions options) : broker(options)
    {
    }

    svc::Broker broker;
    std::string lastError;
};

namespace
{

/** Parse the wire intent string ("default"/"throughput"/"audit"). */
bool
parseIntent(const char *intent, svc::RequestIntent &out)
{
    const std::string s = intent == nullptr ? "default" : intent;
    if (s.empty() || s == "default")
        out = svc::RequestIntent::Default;
    else if (s == "throughput")
        out = svc::RequestIntent::Throughput;
    else if (s == "audit")
        out = svc::RequestIntent::Audit;
    else
        return false;
    return true;
}

} // namespace

extern "C" {

int32_t
usfq_broker_create(int32_t workers, uint64_t queue_capacity,
                   uint64_t cache_capacity, usfq_broker **out)
{
    if (out == nullptr)
        return USFQ_ERR_INVALID_ARG;
    try {
        svc::BrokerOptions options;
        if (workers > 0)
            options.workers = workers;
        if (queue_capacity > 0)
            options.queueCapacity =
                static_cast<std::size_t>(queue_capacity);
        if (cache_capacity > 0)
            options.cacheCapacity =
                static_cast<std::size_t>(cache_capacity);
        *out = new usfq_broker(options);
        return USFQ_OK;
    } catch (...) {
        return USFQ_ERR_INTERNAL;
    }
}

void
usfq_broker_destroy(usfq_broker *broker)
{
    delete broker;
}

const char *
usfq_broker_last_error(const usfq_broker *broker)
{
    return broker == nullptr ? "" : broker->lastError.c_str();
}

int32_t
usfq_broker_run(usfq_broker *broker, const char *spec_json,
                const char *params_json, const char *intent,
                int32_t *out_cache_hit, char **out_json)
{
    if (broker == nullptr || spec_json == nullptr ||
        out_json == nullptr)
        return USFQ_ERR_INVALID_ARG;
    broker->lastError.clear();
    try {
        svc::Request request;
        std::string err;
        if (!api::specFromJson(spec_json, request.spec, &err)) {
            broker->lastError = err;
            return USFQ_ERR_PARSE;
        }
        if (params_json != nullptr &&
            !api::runParamsFromJson(params_json, request.params,
                                    &err)) {
            broker->lastError = err;
            return USFQ_ERR_PARSE;
        }
        if (!parseIntent(intent, request.intent)) {
            broker->lastError =
                "broker: intent must be default, throughput or audit";
            return USFQ_ERR_INVALID_ARG;
        }

        std::optional<std::future<svc::Response>> future;
        for (;;) {
            future = broker->broker.submit(request);
            if (future.has_value())
                break;
            // Full queue: absorb the backpressure here so the flat
            // ABI stays blocking-simple.
            std::this_thread::sleep_for(
                std::chrono::microseconds(50));
        }
        const svc::Response response = future->get();
        if (response.status != api::Status::Ok) {
            broker->lastError = response.error;
            return toStatus(response.status);
        }
        char *copy = dupString(response.json);
        if (copy == nullptr) {
            broker->lastError = "out of memory";
            return USFQ_ERR_INTERNAL;
        }
        if (out_cache_hit != nullptr)
            *out_cache_hit = response.cacheHit ? 1 : 0;
        *out_json = copy;
        return USFQ_OK;
    } catch (const std::exception &e) {
        broker->lastError = e.what();
        return USFQ_ERR_INTERNAL;
    } catch (...) {
        broker->lastError = "unknown exception";
        return USFQ_ERR_INTERNAL;
    }
}

int32_t
usfq_broker_metrics(const usfq_broker *broker, char **out_json)
{
    if (broker == nullptr || out_json == nullptr)
        return USFQ_ERR_INVALID_ARG;
    try {
        const svc::BrokerStats stats = broker->broker.stats();
        const svc::CacheStats cache = broker->broker.cacheStats();
        std::ostringstream os;
        JsonWriter w(os);
        w.beginObject();

        w.key("broker").beginObject();
        w.kv("submitted", stats.submitted);
        w.kv("rejected", stats.rejected);
        w.kv("completed", stats.completed);
        w.kv("failed", stats.failed);
        w.kv("queue_depth_high_water", stats.queueDepthHighWater);
        w.key("workers").beginArray();
        for (const svc::WorkerUtil &u : stats.workerUtil) {
            w.beginObject();
            w.kv("busy_us", u.busyUs);
            w.kv("idle_us", u.idleUs);
            w.kv("utilization", u.utilization());
            w.endObject();
        }
        w.endArray();
        w.endObject();

        w.key("cache").beginObject();
        w.kv("hits", cache.hits);
        w.kv("misses", cache.misses);
        w.kv("insertions", cache.insertions);
        w.kv("evictions", cache.evictions);
        w.kv("hit_rate", cache.hitRate());
        w.endObject();

        w.key("stats").beginObject();
        usfq::obs::writeStatsSections(w,
                                      broker->broker.mergedStats());
        w.endObject();

        w.endObject();
        char *copy = dupString(os.str());
        if (copy == nullptr)
            return USFQ_ERR_INTERNAL;
        *out_json = copy;
        return USFQ_OK;
    } catch (...) {
        return USFQ_ERR_INTERNAL;
    }
}

} // extern "C"
