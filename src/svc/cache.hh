/**
 * @file
 * Content-addressed result cache of the simulation service
 * (docs/service.md).
 *
 * The key is (structural hash of the elaborated netlist, spec hash,
 * backend, seed, result-affecting run params).  The structural hash
 * (api/facade.hh) fingerprints the graph itself -- component records
 * combined order-independently -- so two sessions that BUILD the same
 * design through different registration orders address the same cache
 * line, while any parameter or topology change moves to a new one.
 *
 * The value is the finished result in the artifact wire format (the
 * BENCH_*.json schema serialized by obs::ArtifactPayload with empty
 * host state): a hit hands back the exact bytes a recomputation would
 * produce, which svc_test verifies bit-for-bit -- including across
 * sweep thread counts and batch widths, which are deliberately NOT in
 * the key (the engine's bit-identity contracts make them
 * cache-transparent).
 *
 * Concurrency: one mutex around an intrusive LRU (list + index).
 * Lookups and inserts are O(1); the broker's workers share one cache.
 */

#ifndef USFQ_SVC_CACHE_HH
#define USFQ_SVC_CACHE_HH

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "api/spec.hh"
#include "sim/backend.hh"

namespace usfq
{
class Netlist;
}

namespace usfq::svc
{

/** Content address of one run result. */
struct CacheKey
{
    /** api::structuralHash of the elaborated netlist. */
    std::uint64_t structural = 0;

    /**
     * api::specHash of the request spec.  Not redundant with the
     * structural hash: the paper's resolution independence means e.g.
     * a DPU's graph is identical across `bits`, yet `bits` scales the
     * operand range and therefore the result.
     */
    std::uint64_t spec = 0;

    /** api::runParamsKeyHash (epochs; batch/threads excluded). */
    std::uint64_t params = 0;

    Backend backend = Backend::Functional;
    std::uint64_t seed = 0;

    bool operator==(const CacheKey &other) const = default;
};

/** Hash functor for unordered_map<CacheKey, ...>. */
struct CacheKeyHash
{
    std::size_t operator()(const CacheKey &key) const;
};

/**
 * The full key of (spec, netlist, params): elaborates @p nl if needed
 * (so fatal on unwaived lint -- gate with Session::elaborate first
 * when the netlist is untrusted).
 */
CacheKey cacheKeyFor(const api::NetlistSpec &spec, Netlist &nl,
                     const api::RunParams &params);

/** Hit/miss accounting of one cache instance. */
struct CacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;

    double
    hitRate() const
    {
        const std::uint64_t total = hits + misses;
        return total == 0 ? 0.0
                          : static_cast<double>(hits) /
                                static_cast<double>(total);
    }
};

/** Bounded, thread-safe LRU store of wire-format result documents. */
class ResultCache
{
  public:
    explicit ResultCache(std::size_t capacity = 256);

    ResultCache(const ResultCache &) = delete;
    ResultCache &operator=(const ResultCache &) = delete;

    /**
     * Look up a result; a hit refreshes recency and returns a copy of
     * the stored document.
     */
    std::optional<std::string> lookup(const CacheKey &key);

    /**
     * Store a result (no-op if the key is already present -- the
     * deterministic wire format makes duplicate inserts identical
     * anyway).  Evicts the least recently used entry beyond capacity.
     */
    void insert(const CacheKey &key, std::string result_json);

    CacheStats stats() const;
    std::size_t size() const;
    std::size_t capacity() const { return cap; }
    void clear();

  private:
    struct Entry
    {
        CacheKey key;
        std::string json;
    };

    mutable std::mutex mu;
    std::size_t cap;
    std::list<Entry> lru; ///< front = most recently used
    std::unordered_map<CacheKey, std::list<Entry>::iterator,
                       CacheKeyHash>
        index;
    CacheStats counters;
};

} // namespace usfq::svc

#endif // USFQ_SVC_CACHE_HH
