/**
 * @file
 * Service-layer entry points of the C ABI (usfq.h): the shared result
 * cache.  Lives in usfq_svc rather than usfq_api because the cache is
 * a service concern -- the api library stays free of the svc layer it
 * underpins -- yet the declarations sit in usfq.h so one header covers
 * the whole ABI.  Same armor discipline as api/usfq.cc: fatal-throw
 * mode plus catch-all, status codes out, malloc'd strings the caller
 * frees with usfq_string_free.
 */

#include <cstddef>
#include <optional>
#include <sstream>
#include <string>
#include <utility>

#include "api/usfq.h"
#include "api/usfq_internal.hh"
#include "svc/cache.hh"
#include "util/json.hh"

namespace api = usfq::api;
namespace svc = usfq::svc;
using usfq::JsonWriter;
using usfq::api::abi::dupString;
using usfq::api::abi::guarded;

/** The opaque cache handle: just the service-layer LRU store. */
struct usfq_cache
{
    explicit usfq_cache(std::size_t capacity) : cache(capacity) {}

    svc::ResultCache cache;
};

extern "C" {

int32_t
usfq_cache_create(uint64_t capacity, usfq_cache **out)
{
    if (capacity == 0 || out == nullptr)
        return USFQ_ERR_INVALID_ARG;
    try {
        *out = new usfq_cache(static_cast<std::size_t>(capacity));
        return USFQ_OK;
    } catch (...) {
        return USFQ_ERR_INTERNAL;
    }
}

void
usfq_cache_destroy(usfq_cache *cache)
{
    delete cache;
}

int32_t
usfq_cache_stats(const usfq_cache *cache, char **out_json)
{
    if (cache == nullptr || out_json == nullptr)
        return USFQ_ERR_INVALID_ARG;
    try {
        const svc::CacheStats stats = cache->cache.stats();
        std::ostringstream os;
        JsonWriter w(os);
        w.beginObject();
        w.kv("capacity",
             static_cast<std::uint64_t>(cache->cache.capacity()));
        w.kv("size", static_cast<std::uint64_t>(cache->cache.size()));
        w.kv("hits", stats.hits);
        w.kv("misses", stats.misses);
        w.kv("insertions", stats.insertions);
        w.kv("evictions", stats.evictions);
        w.kv("hit_rate", stats.hitRate());
        w.endObject();
        char *copy = dupString(os.str());
        if (copy == nullptr)
            return USFQ_ERR_INTERNAL;
        *out_json = copy;
        return USFQ_OK;
    } catch (...) {
        return USFQ_ERR_INTERNAL;
    }
}

int32_t
usfq_engine_run_cached(usfq_engine *engine, usfq_cache *cache,
                       const char *params_json, int32_t *out_hit,
                       char **out_json)
{
    if (cache == nullptr || params_json == nullptr ||
        out_json == nullptr)
        return USFQ_ERR_INVALID_ARG;
    return guarded(engine, [&] {
        api::RunParams params;
        std::string err;
        if (!api::runParamsFromJson(params_json, params, &err)) {
            engine->lastError = err;
            return err.rfind("run: epochs", 0) == 0 ||
                           err.rfind("run: batch", 0) == 0 ||
                           err.rfind("run: threads", 0) == 0
                       ? api::Status::InvalidArg
                       : api::Status::ParseError;
        }

        // Elaborate through the session so lint failures come back as
        // a status (cacheKeyFor would fatal on an unlinted netlist).
        if (const api::Status s = engine->session.elaborate();
            s != api::Status::Ok)
            return s;
        const svc::CacheKey key = svc::cacheKeyFor(
            engine->session.spec(), *engine->session.netlist(),
            params);

        if (std::optional<std::string> hit =
                cache->cache.lookup(key);
            hit.has_value()) {
            char *copy = dupString(*hit);
            if (copy == nullptr) {
                engine->lastError = "out of memory";
                return api::Status::Internal;
            }
            if (out_hit != nullptr)
                *out_hit = 1;
            *out_json = copy;
            return api::Status::Ok;
        }

        api::RunResult result;
        if (const api::Status s = engine->session.run(params, result);
            s != api::Status::Ok)
            return s;
        std::string json = api::resultToJson(engine->session.spec(),
                                             params, result);
        char *copy = dupString(json);
        if (copy == nullptr) {
            engine->lastError = "out of memory";
            return api::Status::Internal;
        }
        cache->cache.insert(key, std::move(json));
        engine->metrics.mergeFrom(result.stats);
        if (out_hit != nullptr)
            *out_hit = 0;
        *out_json = copy;
        return api::Status::Ok;
    });
}

} // extern "C"
