#include "svc/broker.hh"

#include <algorithm>

#include "obs/phase.hh"
#include "util/logging.hh"

namespace usfq::svc
{

Broker::Broker(BrokerOptions options)
    : opts(options), cache(options.cacheCapacity)
{
    if (opts.workers < 1)
        opts.workers = 1;
    if (opts.queueCapacity < 1)
        opts.queueCapacity = 1;
    counters.workerUtil.resize(
        static_cast<std::size_t>(opts.workers));
    workers.reserve(static_cast<std::size_t>(opts.workers));
    for (int i = 0; i < opts.workers; ++i)
        workers.emplace_back([this, i] { workerLoop(i); });
}

Broker::~Broker() { shutdown(); }

Backend
Broker::resolveBackend(const Request &request)
{
    switch (request.intent) {
    case RequestIntent::Throughput:
        return Backend::Functional;
    case RequestIntent::Audit:
        return Backend::PulseLevel;
    case RequestIntent::Default:
        break;
    }
    return request.params.backend;
}

std::optional<std::future<Response>>
Broker::submit(Request request)
{
    std::promise<Response> promise;
    std::future<Response> future = promise.get_future();
    {
        std::lock_guard<std::mutex> lock(mu);
        if (stopping)
            return std::nullopt;
        if (queue.size() >= opts.queueCapacity) {
            ++counters.rejected;
            return std::nullopt;
        }
        ++counters.submitted;
        Pending p{nextId++, std::move(request), std::move(promise)};
        p.enqueueUs = obs::wallClockUs();
        p.trace = obs::TraceContext::begin();
        queue.push_back(std::move(p));
        counters.queueDepthHighWater = std::max(
            counters.queueDepthHighWater,
            static_cast<std::uint64_t>(queue.size()));
    }
    cvQueue.notify_one();
    return future;
}

void
Broker::drain()
{
    std::unique_lock<std::mutex> lock(mu);
    cvDrain.wait(lock,
                 [this] { return queue.empty() && inFlight == 0; });
}

void
Broker::shutdown()
{
    std::vector<Pending> orphaned;
    {
        std::lock_guard<std::mutex> lock(mu);
        if (stopping && workers.empty())
            return;
        stopping = true;
        while (!queue.empty()) {
            orphaned.push_back(std::move(queue.front()));
            queue.pop_front();
        }
    }
    cvQueue.notify_all();
    for (Pending &p : orphaned) {
        Response r;
        r.requestId = p.id;
        r.status = api::Status::Internal;
        r.error = "broker shut down before the request ran";
        p.promise.set_value(std::move(r));
    }
    for (std::thread &t : workers)
        if (t.joinable())
            t.join();
    workers.clear();
    cvDrain.notify_all();
}

BrokerStats
Broker::stats() const
{
    std::lock_guard<std::mutex> lock(mu);
    return counters;
}

obs::StatsRegistry
Broker::mergedStats() const
{
    std::lock_guard<std::mutex> lock(mu);
    obs::StatsRegistry merged;
    // std::map iteration is ascending id order: deterministic fold.
    for (const auto &[id, reg] : requestStats)
        merged.mergeFrom(reg);
    return merged;
}

void
Broker::workerLoop(int workerIndex)
{
    obs::setCurrentThreadName("worker-" +
                              std::to_string(workerIndex));
    const std::size_t wi = static_cast<std::size_t>(workerIndex);
    for (;;) {
        Pending job;
        {
            const std::uint64_t idleFrom = obs::wallClockUs();
            std::unique_lock<std::mutex> lock(mu);
            cvQueue.wait(lock, [this] {
                return stopping || !queue.empty();
            });
            counters.workerUtil[wi].idleUs +=
                obs::wallClockUs() - idleFrom;
            if (queue.empty())
                return; // stopping and drained
            job = std::move(queue.front());
            queue.pop_front();
            ++inFlight;
        }
        const std::uint64_t busyFrom = obs::wallClockUs();

        // Root span covers the request's whole broker residency: it
        // opens at admission time, so the queue wait is inside it.
        obs::ScopedSpan root(job.trace, "request");
        root.startAt(job.enqueueUs);
        root.arg("id", std::to_string(job.id));
        {
            obs::ScopedSpan wait(root.context(), "queue_wait");
            wait.startAt(job.enqueueUs);
        }
        Response response =
            process(job.id, job.request, root.context());
        root.finish();

        {
            std::lock_guard<std::mutex> lock(mu);
            --inFlight;
            ++counters.completed;
            if (response.status != api::Status::Ok)
                ++counters.failed;
            counters.workerUtil[wi].busyUs +=
                obs::wallClockUs() - busyFrom;
        }
        job.promise.set_value(std::move(response));
        cvDrain.notify_all();
    }
}

Response
Broker::process(std::uint64_t id, const Request &request,
                const obs::TraceContext &trace)
{
    Response response;
    response.requestId = id;

    api::RunParams params = request.params;
    params.backend = resolveBackend(request);
    response.backend = params.backend;

    api::Session session(request.spec);

    CacheKey key;
    {
        obs::ScopedSpan span(trace, "elaborate");
        // Elaborate first: a spec that does not lint never reaches
        // the cache or an engine, and the finding-derived message
        // survives in the response.
        if (const api::Status s = session.elaborate();
            s != api::Status::Ok) {
            response.status = s;
            response.error = session.lastError();
            return response;
        }

        std::uint64_t structural = 0;
        if (const api::Status s = session.contentHash(structural);
            s != api::Status::Ok) {
            response.status = s;
            response.error = session.lastError();
            return response;
        }
        response.structural = structural;

        key.structural = structural;
        key.spec = api::specHash(request.spec);
        key.params = api::runParamsKeyHash(params);
        key.backend = params.backend;
        key.seed = params.seed;
    }

    {
        obs::ScopedSpan span(trace, "cache_probe");
        std::optional<std::string> hit = cache.lookup(key);
        span.arg("hit", hit.has_value() ? "1" : "0");
        if (hit.has_value()) {
            response.cacheHit = true;
            response.json = std::move(*hit);
            return response;
        }
    }

    api::RunResult result;
    {
        obs::ScopedSpan span(trace, "run");
        if (const api::Status s = session.run(params, result);
            s != api::Status::Ok) {
            response.status = s;
            response.error = session.lastError();
            return response;
        }
    }
    {
        obs::ScopedSpan span(trace, "serialize");
        response.json =
            api::resultToJson(request.spec, params, result);
        cache.insert(key, response.json);
    }
    {
        std::lock_guard<std::mutex> lock(mu);
        requestStats[id] = std::move(result.stats);
    }
    return response;
}

} // namespace usfq::svc
