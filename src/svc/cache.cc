#include "svc/cache.hh"

#include "api/facade.hh"

namespace usfq::svc
{

namespace
{

/** SplitMix64 finalizer: full-avalanche mix of one 64-bit word. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

} // namespace

std::size_t
CacheKeyHash::operator()(const CacheKey &key) const
{
    std::uint64_t h = mix64(key.structural);
    h = mix64(h ^ key.spec);
    h = mix64(h ^ key.params);
    h = mix64(h ^ static_cast<std::uint64_t>(key.backend));
    h = mix64(h ^ key.seed);
    return static_cast<std::size_t>(h);
}

CacheKey
cacheKeyFor(const api::NetlistSpec &spec, Netlist &nl,
            const api::RunParams &params)
{
    CacheKey key;
    key.structural = api::structuralHash(nl);
    key.spec = api::specHash(spec);
    key.params = api::runParamsKeyHash(params);
    key.backend = params.backend;
    key.seed = params.seed;
    return key;
}

ResultCache::ResultCache(std::size_t capacity)
    : cap(capacity == 0 ? 1 : capacity)
{
}

std::optional<std::string>
ResultCache::lookup(const CacheKey &key)
{
    std::lock_guard<std::mutex> lock(mu);
    const auto it = index.find(key);
    if (it == index.end()) {
        ++counters.misses;
        return std::nullopt;
    }
    ++counters.hits;
    lru.splice(lru.begin(), lru, it->second);
    return it->second->json;
}

void
ResultCache::insert(const CacheKey &key, std::string result_json)
{
    std::lock_guard<std::mutex> lock(mu);
    if (index.find(key) != index.end())
        return;
    lru.push_front(Entry{key, std::move(result_json)});
    index.emplace(key, lru.begin());
    ++counters.insertions;
    while (lru.size() > cap) {
        index.erase(lru.back().key);
        lru.pop_back();
        ++counters.evictions;
    }
}

CacheStats
ResultCache::stats() const
{
    std::lock_guard<std::mutex> lock(mu);
    return counters;
}

std::size_t
ResultCache::size() const
{
    std::lock_guard<std::mutex> lock(mu);
    return lru.size();
}

void
ResultCache::clear()
{
    std::lock_guard<std::mutex> lock(mu);
    lru.clear();
    index.clear();
    counters = CacheStats{};
}

} // namespace usfq::svc
