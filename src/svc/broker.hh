/**
 * @file
 * Request broker of the simulation service (docs/service.md): a
 * bounded request queue feeding a worker pool, with admission control
 * (reject-with-backpressure instead of unbounded queueing), backend
 * auto-selection (functional for throughput requests, pulse-level for
 * audit requests) and a shared content-addressed result cache
 * (svc/cache.hh).
 *
 * Each request runs in its own api::Session, so lint/STA/run failures
 * come back as a Status in the Response -- a poisoned request can
 * never take the broker (or the host) down.  Each run's deterministic
 * stats registry is retained per request id; mergedStats() folds them
 * in ascending id order, so the roll-up is independent of worker
 * scheduling.
 *
 * When tracing is on (obs/trace.hh), every admitted request opens a
 * trace at submit() and its context crosses the queue to the worker
 * that runs it: a root "request" span plus child spans for the queue
 * wait, cache probe (hit/miss), session elaborate/run, and response
 * serialization -- the whole serving story of one request as one span
 * chain in the Perfetto export (docs/observability.md).
 */

#ifndef USFQ_SVC_BROKER_HH
#define USFQ_SVC_BROKER_HH

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "api/facade.hh"
#include "api/spec.hh"
#include "obs/stats.hh"
#include "obs/trace.hh"
#include "svc/cache.hh"

namespace usfq::svc
{

/** Broker sizing knobs. */
struct BrokerOptions
{
    /** Worker threads executing requests. */
    int workers = 4;

    /**
     * Bound of the pending-request queue.  submit() on a full queue
     * rejects immediately (backpressure) instead of blocking or
     * growing without limit.
     */
    std::size_t queueCapacity = 64;

    /** Result-cache capacity in entries. */
    std::size_t cacheCapacity = 256;
};

/** What the caller wants optimized; drives backend auto-selection. */
enum class RequestIntent
{
    /** Run on whatever RunParams::backend says. */
    Default,
    /** Throughput: force the functional engine. */
    Throughput,
    /** Audit: force the pulse-level engine (event-accurate). */
    Audit,
};

/** One simulation request. */
struct Request
{
    api::NetlistSpec spec;
    api::RunParams params;
    RequestIntent intent = RequestIntent::Default;
};

/** One finished (or failed) request. */
struct Response
{
    std::uint64_t requestId = 0;
    api::Status status = api::Status::Ok;

    /** Human-readable failure message (empty on Ok). */
    std::string error;

    /** Result document in the artifact wire format (empty on error). */
    std::string json;

    /** Engine the request actually ran on (after auto-selection). */
    Backend backend = Backend::Functional;

    /** True when the result came out of the cache. */
    bool cacheHit = false;

    /** Structural hash of the request's netlist (0 on early failure). */
    std::uint64_t structural = 0;
};

/** Wall-clock busy/idle split of one broker worker thread. */
struct WorkerUtil
{
    std::uint64_t busyUs = 0; ///< time spent inside process()
    std::uint64_t idleUs = 0; ///< time spent waiting for work

    /** Busy fraction of the observed lifetime (0 when unobserved). */
    double
    utilization() const
    {
        const std::uint64_t total = busyUs + idleUs;
        return total > 0
                   ? static_cast<double>(busyUs) /
                         static_cast<double>(total)
                   : 0.0;
    }
};

/** Broker-level accounting (monotonic over the broker's lifetime). */
struct BrokerStats
{
    std::uint64_t submitted = 0;
    std::uint64_t rejected = 0; ///< backpressure refusals
    std::uint64_t completed = 0;
    std::uint64_t failed = 0; ///< completed with status != Ok

    /** Deepest the pending queue ever got (admission high-water). */
    std::uint64_t queueDepthHighWater = 0;

    /** Busy/idle gauge per worker thread, worker order. */
    std::vector<WorkerUtil> workerUtil;
};

/** The request broker. */
class Broker
{
  public:
    explicit Broker(BrokerOptions options = {});

    /** Drains nothing: pending requests are failed, workers joined. */
    ~Broker();

    Broker(const Broker &) = delete;
    Broker &operator=(const Broker &) = delete;

    /**
     * Admit one request.  Returns a future for its response, or
     * std::nullopt when the queue is full (backpressure: the caller
     * should back off and resubmit).
     */
    std::optional<std::future<Response>> submit(Request request);

    /** Block until every admitted request has completed. */
    void drain();

    /** Stop accepting, finish nothing more, join the workers. */
    void shutdown();

    BrokerStats stats() const;
    CacheStats cacheStats() const { return cache.stats(); }

    /**
     * Fold the per-request stats registries of every completed request
     * into one, in ascending request-id order -- deterministic however
     * the workers interleaved.  Cache hits contribute no registry (the
     * run they reused already did).
     */
    obs::StatsRegistry mergedStats() const;

    /** The backend a request's intent resolves to. */
    static Backend resolveBackend(const Request &request);

  private:
    struct Pending
    {
        std::uint64_t id;
        Request request;
        std::promise<Response> promise;

        /** Wall-clock admission time (queue-wait span start). */
        std::uint64_t enqueueUs = 0;

        /** Request trace (invalid when tracing is off). */
        obs::TraceContext trace;
    };

    void workerLoop(int workerIndex);
    Response process(std::uint64_t id, const Request &request,
                     const obs::TraceContext &trace);

    BrokerOptions opts;
    ResultCache cache;

    mutable std::mutex mu;
    std::condition_variable cvQueue; ///< workers wait for work
    std::condition_variable cvDrain; ///< drain() waits for quiescence
    std::deque<Pending> queue;
    std::uint64_t nextId = 1;
    std::size_t inFlight = 0;
    bool stopping = false;
    BrokerStats counters;
    std::map<std::uint64_t, obs::StatsRegistry> requestStats;

    std::vector<std::thread> workers;
};

} // namespace usfq::svc

#endif // USFQ_SVC_BROKER_HH
