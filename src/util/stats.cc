#include "util/stats.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace usfq
{

void
RunningStats::add(double x)
{
    if (n == 0) {
        lo = hi = x;
    } else {
        lo = std::min(lo, x);
        hi = std::max(hi, x);
    }
    ++n;
    const double delta = x - m;
    m += delta / static_cast<double>(n);
    m2 += delta * (x - m);
}

double
RunningStats::mean() const
{
    return n ? m : 0.0;
}

double
RunningStats::variance() const
{
    return n > 1 ? m2 / static_cast<double>(n - 1) : 0.0;
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

double
RunningStats::min() const
{
    return n ? lo : 0.0;
}

double
RunningStats::max() const
{
    return n ? hi : 0.0;
}

LinearFit
fitLine(const std::vector<double> &xs, const std::vector<double> &ys)
{
    if (xs.size() != ys.size())
        panic("fitLine: size mismatch %zu vs %zu", xs.size(), ys.size());
    if (xs.size() < 2)
        panic("fitLine: need at least 2 points, got %zu", xs.size());

    const double n = static_cast<double>(xs.size());
    double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        sx += xs[i];
        sy += ys[i];
        sxx += xs[i] * xs[i];
        sxy += xs[i] * ys[i];
        syy += ys[i] * ys[i];
    }
    const double denom = n * sxx - sx * sx;
    LinearFit fit;
    if (denom == 0.0) {
        fit.slope = 0.0;
        fit.intercept = sy / n;
        fit.r2 = 0.0;
        return fit;
    }
    fit.slope = (n * sxy - sx * sy) / denom;
    fit.intercept = (sy - fit.slope * sx) / n;

    const double ss_tot = syy - sy * sy / n;
    double ss_res = 0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        const double e = ys[i] - fit(xs[i]);
        ss_res += e * e;
    }
    fit.r2 = ss_tot > 0 ? 1.0 - ss_res / ss_tot : 1.0;
    return fit;
}

double
percentile(std::vector<double> values, double p)
{
    if (values.empty())
        panic("percentile: empty input");
    std::sort(values.begin(), values.end());
    const double rank =
        (p / 100.0) * static_cast<double>(values.size() - 1);
    const std::size_t lo_idx = static_cast<std::size_t>(rank);
    const std::size_t hi_idx = std::min(lo_idx + 1, values.size() - 1);
    const double frac = rank - static_cast<double>(lo_idx);
    return values[lo_idx] * (1.0 - frac) + values[hi_idx] * frac;
}

double
mean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double s = 0;
    for (double v : values)
        s += v;
    return s / static_cast<double>(values.size());
}

} // namespace usfq
