/**
 * @file
 * ASCII table rendering used by the bench harnesses to print the paper's
 * tables and figure series in a uniform format.
 */

#ifndef USFQ_UTIL_TABLE_HH
#define USFQ_UTIL_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace usfq
{

/**
 * Accumulates rows of strings and renders them with aligned columns.
 *
 * Numeric convenience overloads format with a sensible default precision;
 * callers that need specific formatting pass pre-formatted strings.
 */
class Table
{
  public:
    /** Create a table with the given title and column headers. */
    Table(std::string title, std::vector<std::string> headers);

    /** Begin a new row; subsequent cell() calls fill it left to right. */
    Table &row();

    /** Append a string cell to the current row. */
    Table &cell(const std::string &value);
    Table &cell(const char *value);
    /** Append an integer cell. */
    Table &cell(std::int64_t value);
    Table &cell(int value);
    Table &cell(std::size_t value);
    /** Append a floating cell with @p precision significant digits. */
    Table &cell(double value, int precision = 4);

    /** Render the table to @p os. */
    void print(std::ostream &os) const;

    /** Number of data rows so far. */
    std::size_t numRows() const { return rows.size(); }

  private:
    std::string title;
    std::vector<std::string> headers;
    std::vector<std::vector<std::string>> rows;
};

/** Format a double with engineering-style trimming ("1.23e+04" etc.). */
std::string formatNumber(double value, int precision = 4);

} // namespace usfq

#endif // USFQ_UTIL_TABLE_HH
