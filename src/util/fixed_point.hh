/**
 * @file
 * Signed fixed-point arithmetic used by the binary RSFQ baseline models.
 *
 * The paper's binary accelerators use B-bit two's-complement fixed point
 * in [-1, 1).  FixedPoint captures exactly that: a raw integer of
 * configurable width with saturation, rounding-to-nearest quantization,
 * and bit-flip fault injection (the paper's binary error model).
 */

#ifndef USFQ_UTIL_FIXED_POINT_HH
#define USFQ_UTIL_FIXED_POINT_HH

#include <cstdint>

namespace usfq
{

/**
 * A B-bit two's-complement fixed-point value in [-1, 1).
 *
 * The value is raw / 2^(bits-1); bits may be 2..32.  All arithmetic
 * saturates at the representable range, matching a hardware datapath
 * with overflow clamping.
 */
class FixedPoint
{
  public:
    /** Construct the zero value with the given width. */
    explicit FixedPoint(int bits = 8);

    /** Quantize a real value (round to nearest, saturate). */
    FixedPoint(double value, int bits);

    /** Construct directly from a raw integer (clamped to range). */
    static FixedPoint fromRaw(std::int64_t raw, int bits);

    /** Width in bits. */
    int bits() const { return nbits; }

    /** Raw two's-complement integer. */
    std::int64_t raw() const { return rawValue; }

    /** Real value raw / 2^(bits-1). */
    double toDouble() const;

    /** Smallest representable increment, 2^-(bits-1). */
    double lsb() const;

    /** Saturating add; operands must share the same width. */
    FixedPoint operator+(const FixedPoint &other) const;

    /** Saturating subtract. */
    FixedPoint operator-(const FixedPoint &other) const;

    /**
     * Fixed-point multiply: full-precision product rescaled back to this
     * operand's width with round-to-nearest and saturation.
     */
    FixedPoint operator*(const FixedPoint &other) const;

    bool operator==(const FixedPoint &other) const = default;

    /** Flip a single bit (0 = LSB .. bits-1 = sign) -- fault injection. */
    FixedPoint withBitFlipped(int bit) const;

    /** Largest representable value, (2^(bits-1) - 1) / 2^(bits-1). */
    static FixedPoint maxValue(int bits);

    /** Most negative representable value, -1.0. */
    static FixedPoint minValue(int bits);

  private:
    std::int64_t clampRaw(std::int64_t v) const;

    int nbits;
    std::int64_t rawValue;
};

} // namespace usfq

#endif // USFQ_UTIL_FIXED_POINT_HH
