/**
 * @file
 * Fundamental simulation types: integer time ticks and unit helpers.
 *
 * The event kernel operates on integer femtosecond ticks so simulations
 * are exactly deterministic and immune to floating-point drift.  SFQ cell
 * delays are a handful of picoseconds, so femtoseconds give three decimal
 * digits of sub-cell resolution while a 64-bit tick still covers ~106 days
 * of simulated time.
 */

#ifndef USFQ_UTIL_TYPES_HH
#define USFQ_UTIL_TYPES_HH

#include <cstdint>

namespace usfq
{

/** Simulation time in integer femtoseconds. */
using Tick = std::int64_t;

/** One femtosecond, the kernel tick. */
constexpr Tick kFemtosecond = 1;
/** One picosecond in ticks. */
constexpr Tick kPicosecond = 1000;
/** One nanosecond in ticks. */
constexpr Tick kNanosecond = 1000 * kPicosecond;
/** One microsecond in ticks. */
constexpr Tick kMicrosecond = 1000 * kNanosecond;

/** Sentinel for "no time" / unscheduled. */
constexpr Tick kTickInvalid = -1;

/** Convert a tick count to double-precision seconds. */
constexpr double
ticksToSeconds(Tick t)
{
    return static_cast<double>(t) * 1e-15;
}

/** Convert a tick count to double-precision picoseconds. */
constexpr double
ticksToPs(Tick t)
{
    return static_cast<double>(t) * 1e-3;
}

/** Convert a tick count to double-precision nanoseconds. */
constexpr double
ticksToNs(Tick t)
{
    return static_cast<double>(t) * 1e-6;
}

/** Convert picoseconds (may be fractional) to the nearest tick. */
constexpr Tick
psToTicks(double ps)
{
    return static_cast<Tick>(ps * 1e3 + (ps >= 0 ? 0.5 : -0.5));
}

/** Convert nanoseconds to ticks. */
constexpr Tick
nsToTicks(double ns)
{
    return psToTicks(ns * 1e3);
}

} // namespace usfq

#endif // USFQ_UTIL_TYPES_HH
