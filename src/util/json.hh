/**
 * @file
 * Minimal JSON support with no third-party dependency: a streaming
 * writer for the machine-readable bench artifacts and Perfetto traces
 * (docs/observability.md), and a small recursive-descent parser used
 * by tests and the artifact linter to validate what was written.
 */

#ifndef USFQ_UTIL_JSON_HH
#define USFQ_UTIL_JSON_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace usfq
{

/**
 * Streaming JSON writer: begin/end nesting with automatic commas and
 * indentation, full string escaping, and non-finite doubles mapped to
 * null so the output always parses.
 */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &os, int indent = 2)
        : out(os), indentWidth(indent)
    {
    }

    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Emit an object key (must be inside an object). */
    JsonWriter &key(std::string_view k);

    JsonWriter &value(std::string_view v);
    JsonWriter &value(const char *v) { return value(std::string_view(v)); }
    JsonWriter &value(double v);
    JsonWriter &value(std::int64_t v);
    JsonWriter &value(std::uint64_t v);
    JsonWriter &value(int v) { return value(static_cast<std::int64_t>(v)); }
    JsonWriter &value(bool v);
    JsonWriter &null();

    /** key() + value() in one call. */
    template <typename T>
    JsonWriter &
    kv(std::string_view k, T &&v)
    {
        key(k);
        return value(std::forward<T>(v));
    }

    /** Escape @p s as a quoted JSON string literal. */
    static std::string escape(std::string_view s);

  private:
    /** Comma/indent bookkeeping before a new value or key. */
    void prefix(bool is_key);

    struct Level
    {
        bool isObject;
        bool hasEntries = false;
    };

    std::ostream &out;
    int indentWidth;
    std::vector<Level> stack;
    bool keyPending = false;
};

/** A parsed JSON document node (maps keep key order sorted). */
struct JsonValue
{
    enum class Type
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Type type = Type::Null;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::vector<JsonValue> array;
    std::map<std::string, JsonValue> object;

    bool isObject() const { return type == Type::Object; }
    bool isArray() const { return type == Type::Array; }

    /** Object member lookup; null if absent or not an object. */
    const JsonValue *find(const std::string &k) const;
};

/**
 * Parse a complete JSON document.  Returns false (and sets @p error,
 * when given) on malformed input or trailing garbage.
 */
bool parseJson(std::string_view text, JsonValue &out,
               std::string *error = nullptr);

} // namespace usfq

#endif // USFQ_UTIL_JSON_HH
