/**
 * @file
 * Deterministic pseudo-random number generation for simulations.
 *
 * A xoshiro256** generator seeded by SplitMix64.  Every stochastic piece
 * of the repository (error injection, workload generation) draws from an
 * explicitly-seeded Rng so results are reproducible run to run.
 */

#ifndef USFQ_UTIL_RANDOM_HH
#define USFQ_UTIL_RANDOM_HH

#include <array>
#include <cstdint>

namespace usfq
{

/**
 * xoshiro256** pseudo-random generator (Blackman & Vigna).
 *
 * Satisfies UniformRandomBitGenerator so it can also be used with
 * <random> distributions.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Construct from a 64-bit seed (expanded via SplitMix64). */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Reseed the generator. */
    void seed(std::uint64_t seed);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    std::uint64_t operator()() { return next(); }

    static constexpr std::uint64_t min() { return 0; }
    static constexpr std::uint64_t max() { return ~0ULL; }

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

    /** Bernoulli draw with probability p of returning true. */
    bool bernoulli(double p);

    /** Standard normal via Box-Muller. */
    double gaussian();

    /** Normal with the given mean and standard deviation. */
    double gaussian(double mean, double sigma);

  private:
    std::array<std::uint64_t, 4> state;
    bool haveSpareGaussian = false;
    double spareGaussian = 0.0;
};

} // namespace usfq

#endif // USFQ_UTIL_RANDOM_HH
