#include "util/fixed_point.hh"

#include <cmath>

#include "util/logging.hh"

namespace usfq
{

namespace
{

void
checkBits(int bits)
{
    if (bits < 2 || bits > 32)
        panic("FixedPoint: unsupported width %d (need 2..32)", bits);
}

} // namespace

FixedPoint::FixedPoint(int bits)
    : nbits(bits), rawValue(0)
{
    checkBits(bits);
}

FixedPoint::FixedPoint(double value, int bits)
    : nbits(bits)
{
    checkBits(bits);
    const double scale = static_cast<double>(std::int64_t{1} << (bits - 1));
    rawValue = clampRaw(std::llround(value * scale));
}

FixedPoint
FixedPoint::fromRaw(std::int64_t raw, int bits)
{
    FixedPoint fp(bits);
    fp.rawValue = fp.clampRaw(raw);
    return fp;
}

double
FixedPoint::toDouble() const
{
    const double scale = static_cast<double>(std::int64_t{1} << (nbits - 1));
    return static_cast<double>(rawValue) / scale;
}

double
FixedPoint::lsb() const
{
    return 1.0 / static_cast<double>(std::int64_t{1} << (nbits - 1));
}

std::int64_t
FixedPoint::clampRaw(std::int64_t v) const
{
    const std::int64_t hi = (std::int64_t{1} << (nbits - 1)) - 1;
    const std::int64_t lo = -(std::int64_t{1} << (nbits - 1));
    if (v > hi)
        return hi;
    if (v < lo)
        return lo;
    return v;
}

FixedPoint
FixedPoint::operator+(const FixedPoint &other) const
{
    if (other.nbits != nbits)
        panic("FixedPoint: width mismatch %d vs %d", nbits, other.nbits);
    return fromRaw(rawValue + other.rawValue, nbits);
}

FixedPoint
FixedPoint::operator-(const FixedPoint &other) const
{
    if (other.nbits != nbits)
        panic("FixedPoint: width mismatch %d vs %d", nbits, other.nbits);
    return fromRaw(rawValue - other.rawValue, nbits);
}

FixedPoint
FixedPoint::operator*(const FixedPoint &other) const
{
    if (other.nbits != nbits)
        panic("FixedPoint: width mismatch %d vs %d", nbits, other.nbits);
    // Full product has 2*(nbits-1) fractional bits; shift back with
    // round-to-nearest.
    const std::int64_t prod = rawValue * other.rawValue;
    const int shift = nbits - 1;
    const std::int64_t bias = std::int64_t{1} << (shift - 1);
    std::int64_t scaled;
    if (prod >= 0)
        scaled = (prod + bias) >> shift;
    else
        scaled = -((-prod + bias) >> shift);
    return fromRaw(scaled, nbits);
}

FixedPoint
FixedPoint::withBitFlipped(int bit) const
{
    if (bit < 0 || bit >= nbits)
        panic("FixedPoint: bit %d out of range for %d-bit value", bit, nbits);
    // Flip in the nbits-wide two's-complement view, then sign-extend.
    std::uint64_t mask = (std::uint64_t{1} << nbits) - 1;
    std::uint64_t u = static_cast<std::uint64_t>(rawValue) & mask;
    u ^= std::uint64_t{1} << bit;
    // Sign-extend.
    std::int64_t v;
    if (u & (std::uint64_t{1} << (nbits - 1)))
        v = static_cast<std::int64_t>(u | ~mask);
    else
        v = static_cast<std::int64_t>(u);
    FixedPoint fp(nbits);
    fp.rawValue = v; // already in range by construction
    return fp;
}

FixedPoint
FixedPoint::maxValue(int bits)
{
    return fromRaw((std::int64_t{1} << (bits - 1)) - 1, bits);
}

FixedPoint
FixedPoint::minValue(int bits)
{
    return fromRaw(-(std::int64_t{1} << (bits - 1)), bits);
}

} // namespace usfq
