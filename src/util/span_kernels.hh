/**
 * @file
 * Contiguous-span word kernels for the packed-bitstream engines.
 *
 * Every op works on spans of raw uint64 words (a batch of pulse-stream
 * lanes laid out back to back) and is implemented three times -- a
 * portable scalar loop, an AVX2 build, and an AVX-512 build of the
 * same loop -- behind one runtime-dispatched function table.  The
 * three builds are the *same* C++ loop compiled for different ISAs, so
 * they are bit-identical by construction; tests/span_kernel_test.cpp
 * pins that anyway by running every supported level against the
 * scalar reference.
 *
 * Dispatch: the best level the host supports is selected on first use.
 * The USFQ_SPAN_KERNEL environment variable (scalar|avx2|avx512)
 * forces a lower level -- the differential tests use it to compare
 * the SIMD paths against the portable fallback -- and setSpanKernel()
 * does the same programmatically.
 *
 * None of the kernels assume alignment: callers may pass any offset
 * into a buffer (the span-kernel property test fuzzes unaligned spans
 * and partial tails on purpose).  Window/tail masking is the caller's
 * job -- these are raw word ops.
 */

#ifndef USFQ_UTIL_SPAN_KERNELS_HH
#define USFQ_UTIL_SPAN_KERNELS_HH

#include <cstddef>
#include <cstdint>

namespace usfq::span
{

/** One ISA build of the kernel set, in increasing capability order. */
enum class KernelLevel
{
    Scalar, ///< portable C++ loop, no ISA assumptions
    Avx2,   ///< the same loops compiled for AVX2
    Avx512, ///< the same loops compiled for AVX-512F/BW/VPOPCNTDQ
};

/** Stable lower-case name ("scalar", "avx2", "avx512"). */
const char *kernelName(KernelLevel level);

/** The best level this host can execute. */
KernelLevel bestSupportedKernel();

/**
 * The level currently dispatched to.  On first call this resolves to
 * bestSupportedKernel() unless USFQ_SPAN_KERNEL names a lower one.
 */
KernelLevel activeKernel();

/**
 * Force dispatch to @p level; returns false (and changes nothing) if
 * the host cannot execute it.  Tests use this to diff the SIMD builds
 * against the portable fallback.
 */
bool setSpanKernel(KernelLevel level);

// --- the kernels -------------------------------------------------------------
//
// All spans are n words long; dst may alias a or b exactly (full
// overlap), never partially.

/** dst[i] = a[i] | b[i] */
void wordOr(std::uint64_t *dst, const std::uint64_t *a,
            const std::uint64_t *b, std::size_t n);

/** dst[i] = a[i] & b[i] */
void wordAnd(std::uint64_t *dst, const std::uint64_t *a,
             const std::uint64_t *b, std::size_t n);

/** dst[i] = a[i] & ~b[i] */
void wordAndNot(std::uint64_t *dst, const std::uint64_t *a,
                const std::uint64_t *b, std::size_t n);

/** dst[i] = ~(a[i] ^ b[i]) -- the bipolar XNOR product on raw words. */
void wordXnor(std::uint64_t *dst, const std::uint64_t *a,
              const std::uint64_t *b, std::size_t n);

/** dst[i] = ~a[i] */
void wordNot(std::uint64_t *dst, const std::uint64_t *a, std::size_t n);

/** dst[i] = value */
void wordFill(std::uint64_t *dst, std::uint64_t value, std::size_t n);

/** Total popcount of the span. */
std::uint64_t wordPopcount(const std::uint64_t *a, std::size_t n);

/** Total popcount of a[i] & b[i] (no temporary). */
std::uint64_t wordPopcountAnd(const std::uint64_t *a,
                              const std::uint64_t *b, std::size_t n);

} // namespace usfq::span

#endif // USFQ_UTIL_SPAN_KERNELS_HH
