/**
 * @file
 * Bump arena for packed-word batch buffers.
 *
 * A batched functional epoch (src/func/batch.hh) wants every
 * temporary -- lane bitmaps, prefix masks, product buffers -- to be a
 * fresh contiguous span with zero per-run allocation cost.  WordArena
 * provides exactly that: 64-byte-aligned uint64 storage handed out by
 * pointer bump, released all at once by reset() at the epoch boundary.
 *
 * reset() keeps the high-water capacity, and coalesces multi-chunk
 * growth into one contiguous block, so a steady-state epoch loop does
 * no allocation at all after warm-up and walks one linear buffer.
 */

#ifndef USFQ_UTIL_ARENA_HH
#define USFQ_UTIL_ARENA_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

namespace usfq
{

/** Bump allocator of 64-byte-aligned uint64 spans. */
class WordArena
{
  public:
    /** Alignment of every returned span, in bytes (one cache line,
     *  and enough for any AVX-512 access pattern). */
    static constexpr std::size_t kAlignBytes = 64;

    explicit WordArena(std::size_t initial_words = 0);

    WordArena(const WordArena &) = delete;
    WordArena &operator=(const WordArena &) = delete;

    /** @p n words, 64-byte aligned, uninitialized.  n == 0 is legal
     *  and returns a unique non-null pointer. */
    std::uint64_t *alloc(std::size_t n);

    /** @p n words, zero-filled. */
    std::uint64_t *allocZeroed(std::size_t n);

    /**
     * @p n elements of trivial type T carved out of word storage
     * (rounded up to whole words), 64-byte aligned, uninitialized.
     * For non-bitmap batch scratch (e.g. per-lane count buffers).
     */
    template <typename T>
    T *allocAs(std::size_t n)
    {
        static_assert(std::is_trivially_default_constructible_v<T> &&
                          std::is_trivially_destructible_v<T>,
                      "arena storage is never constructed/destroyed");
        static_assert(alignof(T) <= kAlignBytes);
        const std::size_t words =
            (n * sizeof(T) + sizeof(std::uint64_t) - 1) /
            sizeof(std::uint64_t);
        return reinterpret_cast<T *>(alloc(words));
    }

    /**
     * Invalidate every span handed out so far and make the full
     * capacity available again.  Capacity is retained; if growth left
     * multiple chunks behind, they are coalesced into one so future
     * epochs are a single linear buffer.
     */
    void reset();

    /** Words handed out since the last reset(). */
    std::size_t usedWords() const { return used; }

    /** Total words the arena can serve without growing. */
    std::size_t capacityWords() const { return capacity; }

  private:
    struct Chunk
    {
        std::unique_ptr<std::uint64_t[]> storage; ///< over-allocated
        std::uint64_t *base = nullptr;            ///< aligned start
        std::size_t words = 0;                    ///< usable words
    };

    static Chunk makeChunk(std::size_t words);

    /** Grow by a chunk able to hold at least @p n more words. */
    void grow(std::size_t n);

    std::vector<Chunk> chunks;
    std::size_t active = 0;   ///< chunk currently bumped
    std::size_t offset = 0;   ///< words used in the active chunk
    std::size_t used = 0;     ///< words used across all chunks
    std::size_t capacity = 0; ///< total usable words
};

} // namespace usfq

#endif // USFQ_UTIL_ARENA_HH
