#include "util/logging.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <vector>

namespace usfq
{

namespace
{

std::atomic<bool> quietMode{false};
std::atomic<std::uint64_t> warnCalls{0};
std::atomic<std::uint64_t> informCalls{0};

std::string
vstrprintf(const char *fmt, va_list args)
{
    va_list args_copy;
    va_copy(args_copy, args);
    int len = std::vsnprintf(nullptr, 0, fmt, args_copy);
    va_end(args_copy);
    if (len < 0)
        return "<format error>";
    std::vector<char> buf(static_cast<size_t>(len) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args);
    return std::string(buf.data(), static_cast<size_t>(len));
}

} // namespace

std::string
strprintf(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string s = vstrprintf(fmt, args);
    va_end(args);
    return s;
}

void
panic(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string s = vstrprintf(fmt, args);
    va_end(args);
    std::fprintf(stderr, "panic: %s\n", s.c_str());
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string s = vstrprintf(fmt, args);
    va_end(args);
    std::fprintf(stderr, "fatal: %s\n", s.c_str());
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    warnCalls.fetch_add(1, std::memory_order_relaxed);
    if (quietMode.load(std::memory_order_relaxed))
        return;
    va_list args;
    va_start(args, fmt);
    std::string s = vstrprintf(fmt, args);
    va_end(args);
    std::fprintf(stderr, "warn: %s\n", s.c_str());
}

void
inform(const char *fmt, ...)
{
    informCalls.fetch_add(1, std::memory_order_relaxed);
    if (quietMode.load(std::memory_order_relaxed))
        return;
    va_list args;
    va_start(args, fmt);
    std::string s = vstrprintf(fmt, args);
    va_end(args);
    std::fprintf(stderr, "info: %s\n", s.c_str());
}

void
setQuiet(bool quiet)
{
    quietMode.store(quiet, std::memory_order_relaxed);
}

std::uint64_t
warnCount()
{
    return warnCalls.load(std::memory_order_relaxed);
}

std::uint64_t
informCount()
{
    return informCalls.load(std::memory_order_relaxed);
}

void
resetLogCounts()
{
    warnCalls.store(0, std::memory_order_relaxed);
    informCalls.store(0, std::memory_order_relaxed);
}

} // namespace usfq
