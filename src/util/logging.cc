#include "util/logging.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <vector>

namespace usfq
{

namespace
{

std::atomic<bool> quietMode{false};
std::atomic<std::uint64_t> warnCalls{0};
std::atomic<std::uint64_t> informCalls{0};
std::atomic<FatalMode> fatalDisposition{FatalMode::Exit};
std::atomic<FatalCallback> fatalCb{nullptr};
std::atomic<void *> fatalCbCtx{nullptr};

std::string
vstrprintf(const char *fmt, va_list args)
{
    va_list args_copy;
    va_copy(args_copy, args);
    int len = std::vsnprintf(nullptr, 0, fmt, args_copy);
    va_end(args_copy);
    if (len < 0)
        return "<format error>";
    std::vector<char> buf(static_cast<size_t>(len) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args);
    return std::string(buf.data(), static_cast<size_t>(len));
}

} // namespace

std::string
strprintf(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string s = vstrprintf(fmt, args);
    va_end(args);
    return s;
}

void
panic(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string s = vstrprintf(fmt, args);
    va_end(args);
    std::fprintf(stderr, "panic: %s\n", s.c_str());
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string s = vstrprintf(fmt, args);
    va_end(args);
    if (FatalCallback cb = fatalCb.load(std::memory_order_acquire))
        cb(s.c_str(), fatalCbCtx.load(std::memory_order_acquire));
    if (fatalDisposition.load(std::memory_order_acquire) ==
        FatalMode::Throw)
        throw FatalError(s);
    std::fprintf(stderr, "fatal: %s\n", s.c_str());
    std::exit(1);
}

FatalMode
fatalMode()
{
    return fatalDisposition.load(std::memory_order_acquire);
}

FatalMode
setFatalMode(FatalMode mode)
{
    return fatalDisposition.exchange(mode, std::memory_order_acq_rel);
}

void
setFatalCallback(FatalCallback cb, void *ctx)
{
    // Context first: a reader pairing the new callback with the old
    // context would be the dangerous interleaving.
    fatalCbCtx.store(ctx, std::memory_order_release);
    fatalCb.store(cb, std::memory_order_release);
}

void
warn(const char *fmt, ...)
{
    warnCalls.fetch_add(1, std::memory_order_relaxed);
    if (quietMode.load(std::memory_order_relaxed))
        return;
    va_list args;
    va_start(args, fmt);
    std::string s = vstrprintf(fmt, args);
    va_end(args);
    std::fprintf(stderr, "warn: %s\n", s.c_str());
}

void
inform(const char *fmt, ...)
{
    informCalls.fetch_add(1, std::memory_order_relaxed);
    if (quietMode.load(std::memory_order_relaxed))
        return;
    va_list args;
    va_start(args, fmt);
    std::string s = vstrprintf(fmt, args);
    va_end(args);
    std::fprintf(stderr, "info: %s\n", s.c_str());
}

void
setQuiet(bool quiet)
{
    quietMode.store(quiet, std::memory_order_relaxed);
}

std::uint64_t
warnCount()
{
    return warnCalls.load(std::memory_order_relaxed);
}

std::uint64_t
informCount()
{
    return informCalls.load(std::memory_order_relaxed);
}

void
resetLogCounts()
{
    warnCalls.store(0, std::memory_order_relaxed);
    informCalls.store(0, std::memory_order_relaxed);
}

} // namespace usfq
