#include "util/arena.hh"

#include <cstring>

#include "util/logging.hh"

namespace usfq
{

namespace
{

constexpr std::size_t kAlignWords =
    WordArena::kAlignBytes / sizeof(std::uint64_t);

/** Round @p n up to the alignment quantum so every bump stays aligned. */
std::size_t
roundUp(std::size_t n)
{
    return (n + kAlignWords - 1) / kAlignWords * kAlignWords;
}

} // namespace

WordArena::WordArena(std::size_t initial_words)
{
    if (initial_words > 0)
        grow(initial_words);
}

WordArena::Chunk
WordArena::makeChunk(std::size_t words)
{
    Chunk c;
    // Over-allocate one alignment quantum and round the base up; the
    // plain new[] keeps the arena free of platform aligned-alloc APIs.
    c.storage =
        std::make_unique<std::uint64_t[]>(words + kAlignWords);
    auto addr = reinterpret_cast<std::uintptr_t>(c.storage.get());
    const std::uintptr_t aligned =
        (addr + kAlignBytes - 1) / kAlignBytes * kAlignBytes;
    c.base = c.storage.get() + (aligned - addr) / sizeof(std::uint64_t);
    c.words = words;
    return c;
}

void
WordArena::grow(std::size_t n)
{
    // Geometric growth with a floor keeps chunk count logarithmic in
    // the high-water mark.
    const std::size_t floor_words = 4096;
    std::size_t want = roundUp(n);
    if (want < floor_words)
        want = floor_words;
    if (want < capacity)
        want = capacity; // at least double the total
    chunks.push_back(makeChunk(want));
    capacity += want;
    active = chunks.size() - 1;
    offset = 0;
}

std::uint64_t *
WordArena::alloc(std::size_t n)
{
    if (chunks.empty())
        grow(n > 0 ? n : 1);
    const std::size_t take = roundUp(n);
    if (offset + take > chunks[active].words) {
        // Try the remaining chunks (only after a reset() that kept
        // several), else grow.
        std::size_t next = active + 1;
        while (next < chunks.size() && chunks[next].words < take)
            ++next;
        if (next < chunks.size()) {
            active = next;
            offset = 0;
        } else {
            grow(take);
        }
    }
    std::uint64_t *out = chunks[active].base + offset;
    offset += take;
    used += take;
    return out;
}

std::uint64_t *
WordArena::allocZeroed(std::size_t n)
{
    std::uint64_t *out = alloc(n);
    std::memset(out, 0, n * sizeof(std::uint64_t));
    return out;
}

void
WordArena::reset()
{
    if (chunks.size() > 1) {
        // Coalesce: one chunk of the full capacity, so the next epoch
        // bumps through a single linear buffer.
        const std::size_t total = capacity;
        chunks.clear();
        chunks.push_back(makeChunk(total));
    }
    active = 0;
    offset = 0;
    used = 0;
}

} // namespace usfq
