#include "util/json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/logging.hh"

namespace usfq
{

// --- writer ----------------------------------------------------------------

void
JsonWriter::prefix(bool is_key)
{
    if (keyPending) {
        // A key was just written: this value attaches to it inline.
        if (is_key)
            panic("JsonWriter: key after key");
        keyPending = false;
        return;
    }
    if (stack.empty())
        return;
    Level &top = stack.back();
    if (top.isObject && !is_key)
        panic("JsonWriter: bare value inside an object (missing key)");
    if (top.hasEntries)
        out << ',';
    top.hasEntries = true;
    if (indentWidth > 0) {
        out << '\n';
        for (std::size_t i = 0; i < stack.size(); ++i)
            for (int s = 0; s < indentWidth; ++s)
                out << ' ';
    }
}

JsonWriter &
JsonWriter::beginObject()
{
    prefix(false);
    out << '{';
    stack.push_back(Level{true});
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    if (stack.empty() || !stack.back().isObject)
        panic("JsonWriter: endObject() outside an object");
    const bool had = stack.back().hasEntries;
    stack.pop_back();
    if (had && indentWidth > 0) {
        out << '\n';
        for (std::size_t i = 0; i < stack.size(); ++i)
            for (int s = 0; s < indentWidth; ++s)
                out << ' ';
    }
    out << '}';
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    prefix(false);
    out << '[';
    stack.push_back(Level{false});
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    if (stack.empty() || stack.back().isObject)
        panic("JsonWriter: endArray() outside an array");
    const bool had = stack.back().hasEntries;
    stack.pop_back();
    if (had && indentWidth > 0) {
        out << '\n';
        for (std::size_t i = 0; i < stack.size(); ++i)
            for (int s = 0; s < indentWidth; ++s)
                out << ' ';
    }
    out << ']';
    return *this;
}

JsonWriter &
JsonWriter::key(std::string_view k)
{
    if (stack.empty() || !stack.back().isObject)
        panic("JsonWriter: key() outside an object");
    prefix(true);
    out << escape(k) << (indentWidth > 0 ? ": " : ":");
    keyPending = true;
    return *this;
}

JsonWriter &
JsonWriter::value(std::string_view v)
{
    prefix(false);
    out << escape(v);
    return *this;
}

JsonWriter &
JsonWriter::value(double v)
{
    prefix(false);
    if (!std::isfinite(v)) {
        out << "null";
        return *this;
    }
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    out << buf;
    return *this;
}

JsonWriter &
JsonWriter::value(std::int64_t v)
{
    prefix(false);
    out << v;
    return *this;
}

JsonWriter &
JsonWriter::value(std::uint64_t v)
{
    prefix(false);
    out << v;
    return *this;
}

JsonWriter &
JsonWriter::value(bool v)
{
    prefix(false);
    out << (v ? "true" : "false");
    return *this;
}

JsonWriter &
JsonWriter::null()
{
    prefix(false);
    out << "null";
    return *this;
}

std::string
JsonWriter::escape(std::string_view s)
{
    std::string r;
    r.reserve(s.size() + 2);
    r += '"';
    for (unsigned char c : s) {
        switch (c) {
          case '"':
            r += "\\\"";
            break;
          case '\\':
            r += "\\\\";
            break;
          case '\n':
            r += "\\n";
            break;
          case '\r':
            r += "\\r";
            break;
          case '\t':
            r += "\\t";
            break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                r += buf;
            } else {
                r += static_cast<char>(c);
            }
        }
    }
    r += '"';
    return r;
}

// --- parser ----------------------------------------------------------------

const JsonValue *
JsonValue::find(const std::string &k) const
{
    if (type != Type::Object)
        return nullptr;
    const auto it = object.find(k);
    return it == object.end() ? nullptr : &it->second;
}

namespace
{

/** Recursive-descent JSON parser over a string_view cursor. */
struct JsonParser
{
    std::string_view text;
    std::size_t pos = 0;
    std::string error;
    int depth = 0;
    static constexpr int kMaxDepth = 200;

    bool
    fail(const std::string &what)
    {
        if (error.empty())
            error = what + " at offset " + std::to_string(pos);
        return false;
    }

    void
    skipWs()
    {
        while (pos < text.size() &&
               (text[pos] == ' ' || text[pos] == '\t' ||
                text[pos] == '\n' || text[pos] == '\r'))
            ++pos;
    }

    bool
    consume(char c)
    {
        skipWs();
        if (pos >= text.size() || text[pos] != c)
            return false;
        ++pos;
        return true;
    }

    bool
    literal(std::string_view word)
    {
        if (text.substr(pos, word.size()) != word)
            return fail("bad literal");
        pos += word.size();
        return true;
    }

    bool
    parseString(std::string &out)
    {
        if (!consume('"'))
            return fail("expected string");
        out.clear();
        while (pos < text.size()) {
            const char c = text[pos++];
            if (c == '"')
                return true;
            if (static_cast<unsigned char>(c) < 0x20)
                return fail("raw control character in string");
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos >= text.size())
                return fail("truncated escape");
            const char e = text[pos++];
            switch (e) {
              case '"':
                out += '"';
                break;
              case '\\':
                out += '\\';
                break;
              case '/':
                out += '/';
                break;
              case 'b':
                out += '\b';
                break;
              case 'f':
                out += '\f';
                break;
              case 'n':
                out += '\n';
                break;
              case 'r':
                out += '\r';
                break;
              case 't':
                out += '\t';
                break;
              case 'u': {
                if (pos + 4 > text.size())
                    return fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text[pos++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        return fail("bad \\u escape");
                }
                // UTF-8 encode (surrogate pairs are passed through as
                // two separate code units -- good enough for a linter).
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xc0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3f));
                } else {
                    out += static_cast<char>(0xe0 | (code >> 12));
                    out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
                    out += static_cast<char>(0x80 | (code & 0x3f));
                }
                break;
              }
              default:
                return fail("bad escape character");
            }
        }
        return fail("unterminated string");
    }

    bool
    parseNumber(JsonValue &v)
    {
        const std::size_t start = pos;
        if (pos < text.size() && text[pos] == '-')
            ++pos;
        while (pos < text.size() &&
               (std::isdigit(static_cast<unsigned char>(text[pos])) ||
                text[pos] == '.' || text[pos] == 'e' ||
                text[pos] == 'E' || text[pos] == '+' ||
                text[pos] == '-'))
            ++pos;
        if (pos == start)
            return fail("expected number");
        const std::string num(text.substr(start, pos - start));
        char *end = nullptr;
        v.number = std::strtod(num.c_str(), &end);
        if (end == nullptr || *end != '\0')
            return fail("malformed number");
        v.type = JsonValue::Type::Number;
        return true;
    }

    bool
    parseValue(JsonValue &v)
    {
        if (++depth > kMaxDepth)
            return fail("nesting too deep");
        skipWs();
        if (pos >= text.size())
            return fail("unexpected end of input");
        bool ok = false;
        switch (text[pos]) {
          case '{': {
            ++pos;
            v.type = JsonValue::Type::Object;
            skipWs();
            if (consume('}')) {
                ok = true;
                break;
            }
            for (;;) {
                std::string k;
                if (!parseString(k))
                    return false;
                if (!consume(':'))
                    return fail("expected ':'");
                JsonValue member;
                if (!parseValue(member))
                    return false;
                v.object.emplace(std::move(k), std::move(member));
                if (consume(','))
                    continue;
                if (consume('}')) {
                    ok = true;
                    break;
                }
                return fail("expected ',' or '}'");
            }
            break;
          }
          case '[': {
            ++pos;
            v.type = JsonValue::Type::Array;
            skipWs();
            if (consume(']')) {
                ok = true;
                break;
            }
            for (;;) {
                JsonValue item;
                if (!parseValue(item))
                    return false;
                v.array.push_back(std::move(item));
                if (consume(','))
                    continue;
                if (consume(']')) {
                    ok = true;
                    break;
                }
                return fail("expected ',' or ']'");
            }
            break;
          }
          case '"':
            v.type = JsonValue::Type::String;
            ok = parseString(v.str);
            break;
          case 't':
            v.type = JsonValue::Type::Bool;
            v.boolean = true;
            ok = literal("true");
            break;
          case 'f':
            v.type = JsonValue::Type::Bool;
            v.boolean = false;
            ok = literal("false");
            break;
          case 'n':
            v.type = JsonValue::Type::Null;
            ok = literal("null");
            break;
          default:
            ok = parseNumber(v);
        }
        --depth;
        return ok;
    }
};

} // namespace

bool
parseJson(std::string_view text, JsonValue &out, std::string *error)
{
    JsonParser p{text};
    out = JsonValue{};
    if (!p.parseValue(out)) {
        if (error)
            *error = p.error;
        return false;
    }
    p.skipWs();
    if (p.pos != text.size()) {
        if (error)
            *error = "trailing garbage at offset " + std::to_string(p.pos);
        return false;
    }
    return true;
}

} // namespace usfq
