#include "util/csv.hh"

#include "util/logging.hh"
#include "util/table.hh"

namespace usfq
{

CsvWriter::CsvWriter(const std::string &path,
                     std::vector<std::string> headers)
    : out(path), columns(headers.size())
{
    if (!out.is_open())
        return;
    writeRow(headers);
}

std::string
CsvWriter::escape(const std::string &field)
{
    if (field.find_first_of(",\"\n") == std::string::npos)
        return field;
    std::string escaped = "\"";
    for (char c : field) {
        if (c == '"')
            escaped += '"';
        escaped += c;
    }
    escaped += '"';
    return escaped;
}

void
CsvWriter::writeRow(const std::vector<std::string> &fields)
{
    if (!out.is_open())
        return;
    if (fields.size() != columns)
        warn("CsvWriter: row has %zu fields, expected %zu", fields.size(),
             columns);
    for (std::size_t i = 0; i < fields.size(); ++i) {
        if (i)
            out << ',';
        out << escape(fields[i]);
    }
    out << '\n';
}

void
CsvWriter::writeRow(const std::vector<double> &fields)
{
    std::vector<std::string> formatted;
    formatted.reserve(fields.size());
    for (double v : fields)
        formatted.push_back(formatNumber(v, 8));
    writeRow(formatted);
}

} // namespace usfq
