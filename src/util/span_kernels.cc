#include "util/span_kernels.hh"

#include <atomic>
#include <bit>
#include <cstdlib>
#include <cstring>

#include "util/logging.hh"

namespace usfq::span
{

namespace
{

// The kernel loops, written once and stamped out per ISA.  GCC/Clang
// compile the plain loops under the target attribute, so the AVX2 and
// AVX-512 builds are auto-vectorized versions of exactly the scalar
// semantics (span_kernel_test pins the bit-identity).  The loops use
// only unaligned loads/stores -- callers pass arbitrary offsets.
#define USFQ_SPAN_KERNEL_IMPLS(suffix, target_attr)                     \
    target_attr void or_##suffix(std::uint64_t *dst,                    \
                                 const std::uint64_t *a,                \
                                 const std::uint64_t *b,                \
                                 std::size_t n)                         \
    {                                                                   \
        for (std::size_t i = 0; i < n; ++i)                             \
            dst[i] = a[i] | b[i];                                       \
    }                                                                   \
    target_attr void and_##suffix(std::uint64_t *dst,                   \
                                  const std::uint64_t *a,               \
                                  const std::uint64_t *b,               \
                                  std::size_t n)                        \
    {                                                                   \
        for (std::size_t i = 0; i < n; ++i)                             \
            dst[i] = a[i] & b[i];                                       \
    }                                                                   \
    target_attr void andnot_##suffix(std::uint64_t *dst,                \
                                     const std::uint64_t *a,            \
                                     const std::uint64_t *b,            \
                                     std::size_t n)                     \
    {                                                                   \
        for (std::size_t i = 0; i < n; ++i)                             \
            dst[i] = a[i] & ~b[i];                                      \
    }                                                                   \
    target_attr void xnor_##suffix(std::uint64_t *dst,                  \
                                   const std::uint64_t *a,              \
                                   const std::uint64_t *b,              \
                                   std::size_t n)                       \
    {                                                                   \
        for (std::size_t i = 0; i < n; ++i)                             \
            dst[i] = ~(a[i] ^ b[i]);                                    \
    }                                                                   \
    target_attr void not_##suffix(std::uint64_t *dst,                   \
                                  const std::uint64_t *a,               \
                                  std::size_t n)                        \
    {                                                                   \
        for (std::size_t i = 0; i < n; ++i)                             \
            dst[i] = ~a[i];                                             \
    }                                                                   \
    target_attr void fill_##suffix(std::uint64_t *dst,                  \
                                   std::uint64_t value, std::size_t n)  \
    {                                                                   \
        for (std::size_t i = 0; i < n; ++i)                             \
            dst[i] = value;                                             \
    }                                                                   \
    target_attr std::uint64_t popcount_##suffix(const std::uint64_t *a, \
                                                std::size_t n)          \
    {                                                                   \
        std::uint64_t total = 0;                                        \
        for (std::size_t i = 0; i < n; ++i)                             \
            total += static_cast<std::uint64_t>(                        \
                __builtin_popcountll(a[i]));                            \
        return total;                                                   \
    }                                                                   \
    target_attr std::uint64_t popcount_and_##suffix(                    \
        const std::uint64_t *a, const std::uint64_t *b, std::size_t n)  \
    {                                                                   \
        std::uint64_t total = 0;                                        \
        for (std::size_t i = 0; i < n; ++i)                             \
            total += static_cast<std::uint64_t>(                        \
                __builtin_popcountll(a[i] & b[i]));                     \
        return total;                                                   \
    }

USFQ_SPAN_KERNEL_IMPLS(scalar, )

#if defined(__x86_64__) || defined(__i386__)
#define USFQ_HAVE_X86_DISPATCH 1
USFQ_SPAN_KERNEL_IMPLS(avx2, __attribute__((target("avx2"))))
USFQ_SPAN_KERNEL_IMPLS(
    avx512,
    __attribute__((target("avx512f,avx512bw,avx512vpopcntdq"))))
#else
#define USFQ_HAVE_X86_DISPATCH 0
#endif

#undef USFQ_SPAN_KERNEL_IMPLS

/** One ISA build's entry points. */
struct KernelTable
{
    void (*opOr)(std::uint64_t *, const std::uint64_t *,
                 const std::uint64_t *, std::size_t);
    void (*opAnd)(std::uint64_t *, const std::uint64_t *,
                  const std::uint64_t *, std::size_t);
    void (*opAndNot)(std::uint64_t *, const std::uint64_t *,
                     const std::uint64_t *, std::size_t);
    void (*opXnor)(std::uint64_t *, const std::uint64_t *,
                   const std::uint64_t *, std::size_t);
    void (*opNot)(std::uint64_t *, const std::uint64_t *, std::size_t);
    void (*opFill)(std::uint64_t *, std::uint64_t, std::size_t);
    std::uint64_t (*opPopcount)(const std::uint64_t *, std::size_t);
    std::uint64_t (*opPopcountAnd)(const std::uint64_t *,
                                   const std::uint64_t *, std::size_t);
};

constexpr KernelTable kScalarTable{
    or_scalar,   and_scalar,  andnot_scalar,   xnor_scalar,
    not_scalar,  fill_scalar, popcount_scalar, popcount_and_scalar};

#if USFQ_HAVE_X86_DISPATCH
constexpr KernelTable kAvx2Table{
    or_avx2,   and_avx2,  andnot_avx2,   xnor_avx2,
    not_avx2,  fill_avx2, popcount_avx2, popcount_and_avx2};
constexpr KernelTable kAvx512Table{
    or_avx512,   and_avx512,  andnot_avx512,   xnor_avx512,
    not_avx512,  fill_avx512, popcount_avx512, popcount_and_avx512};
#endif

const KernelTable &
tableFor(KernelLevel level)
{
#if USFQ_HAVE_X86_DISPATCH
    if (level == KernelLevel::Avx512)
        return kAvx512Table;
    if (level == KernelLevel::Avx2)
        return kAvx2Table;
#else
    (void)level;
#endif
    return kScalarTable;
}

bool
hostSupports(KernelLevel level)
{
    switch (level) {
      case KernelLevel::Scalar:
        return true;
      case KernelLevel::Avx2:
#if USFQ_HAVE_X86_DISPATCH
        return __builtin_cpu_supports("avx2") != 0;
#else
        return false;
#endif
      case KernelLevel::Avx512:
#if USFQ_HAVE_X86_DISPATCH
        return __builtin_cpu_supports("avx512f") != 0 &&
               __builtin_cpu_supports("avx512bw") != 0 &&
               __builtin_cpu_supports("avx512vpopcntdq") != 0;
#else
        return false;
#endif
    }
    return false;
}

KernelLevel
resolveInitialLevel()
{
    KernelLevel level = bestSupportedKernel();
    if (const char *env = std::getenv("USFQ_SPAN_KERNEL")) {
        KernelLevel asked = level;
        if (std::strcmp(env, "scalar") == 0)
            asked = KernelLevel::Scalar;
        else if (std::strcmp(env, "avx2") == 0)
            asked = KernelLevel::Avx2;
        else if (std::strcmp(env, "avx512") == 0)
            asked = KernelLevel::Avx512;
        else
            warn("ignoring USFQ_SPAN_KERNEL=%s (want scalar, avx2 or "
                 "avx512)",
                 env);
        if (hostSupports(asked))
            level = asked;
        else
            warn("USFQ_SPAN_KERNEL=%s unsupported on this host; using "
                 "%s",
                 env, kernelName(level));
    }
    return level;
}

std::atomic<KernelLevel> &
activeLevel()
{
    static std::atomic<KernelLevel> level{resolveInitialLevel()};
    return level;
}

const KernelTable &
active()
{
    return tableFor(activeLevel().load(std::memory_order_relaxed));
}

} // namespace

const char *
kernelName(KernelLevel level)
{
    switch (level) {
      case KernelLevel::Scalar:
        return "scalar";
      case KernelLevel::Avx2:
        return "avx2";
      case KernelLevel::Avx512:
        return "avx512";
    }
    return "?";
}

KernelLevel
bestSupportedKernel()
{
    if (hostSupports(KernelLevel::Avx512))
        return KernelLevel::Avx512;
    if (hostSupports(KernelLevel::Avx2))
        return KernelLevel::Avx2;
    return KernelLevel::Scalar;
}

KernelLevel
activeKernel()
{
    return activeLevel().load(std::memory_order_relaxed);
}

bool
setSpanKernel(KernelLevel level)
{
    if (!hostSupports(level))
        return false;
    activeLevel().store(level, std::memory_order_relaxed);
    return true;
}

void
wordOr(std::uint64_t *dst, const std::uint64_t *a,
       const std::uint64_t *b, std::size_t n)
{
    active().opOr(dst, a, b, n);
}

void
wordAnd(std::uint64_t *dst, const std::uint64_t *a,
        const std::uint64_t *b, std::size_t n)
{
    active().opAnd(dst, a, b, n);
}

void
wordAndNot(std::uint64_t *dst, const std::uint64_t *a,
           const std::uint64_t *b, std::size_t n)
{
    active().opAndNot(dst, a, b, n);
}

void
wordXnor(std::uint64_t *dst, const std::uint64_t *a,
         const std::uint64_t *b, std::size_t n)
{
    active().opXnor(dst, a, b, n);
}

void
wordNot(std::uint64_t *dst, const std::uint64_t *a, std::size_t n)
{
    active().opNot(dst, a, n);
}

void
wordFill(std::uint64_t *dst, std::uint64_t value, std::size_t n)
{
    active().opFill(dst, value, n);
}

std::uint64_t
wordPopcount(const std::uint64_t *a, std::size_t n)
{
    return active().opPopcount(a, n);
}

std::uint64_t
wordPopcountAnd(const std::uint64_t *a, const std::uint64_t *b,
                std::size_t n)
{
    return active().opPopcountAnd(a, b, n);
}

} // namespace usfq::span
