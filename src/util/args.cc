#include "util/args.hh"

#include <cstring>

#include "util/logging.hh"

namespace usfq::args
{

bool
isFlag(const char *arg)
{
    return arg != nullptr && std::strncmp(arg, "--", 2) == 0 &&
           arg[2] != '\0';
}

std::string
extractFlag(int *argc, char **argv, const std::string &name)
{
    const std::string plain = "--" + name;
    const std::string eq = plain + "=";
    std::string value;
    int w = 1;
    for (int r = 1; r < *argc; ++r) {
        if (plain == argv[r]) {
            if (r + 1 >= *argc)
                fatal("%s: missing value (expected %s <value>)",
                      plain.c_str(), plain.c_str());
            if (isFlag(argv[r + 1]))
                fatal("%s: missing value ('%s' looks like another "
                      "flag, not a value)",
                      plain.c_str(), argv[r + 1]);
            value = argv[++r];
            continue;
        }
        if (std::strncmp(argv[r], eq.c_str(), eq.size()) == 0) {
            value = argv[r] + eq.size();
            continue;
        }
        argv[w++] = argv[r];
    }
    *argc = w;
    argv[w] = nullptr;
    return value;
}

void
rejectUnknownFlags(int argc, char *const *argv,
                   const std::vector<std::string> &allowed_prefixes)
{
    for (int i = 1; i < argc; ++i) {
        if (!isFlag(argv[i]))
            continue;
        bool ok = false;
        for (const std::string &prefix : allowed_prefixes) {
            if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) ==
                0) {
                ok = true;
                break;
            }
        }
        if (!ok)
            fatal("unknown flag '%s' (this binary accepts --json "
                  "<path>%s)",
                  argv[i],
                  allowed_prefixes.empty()
                      ? ""
                      : " plus the listed pass-through prefixes");
    }
}

} // namespace usfq::args
