#include "util/table.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/logging.hh"

namespace usfq
{

std::string
formatNumber(double value, int precision)
{
    if (std::isnan(value))
        return "n/a";
    char buf[64];
    const double mag = std::fabs(value);
    if (value == 0.0) {
        std::snprintf(buf, sizeof(buf), "0");
    } else if (mag >= 1e6 || mag < 1e-3) {
        std::snprintf(buf, sizeof(buf), "%.*e", precision - 1, value);
    } else {
        std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
    }
    return buf;
}

Table::Table(std::string title_in, std::vector<std::string> headers_in)
    : title(std::move(title_in)), headers(std::move(headers_in))
{
}

Table &
Table::row()
{
    rows.emplace_back();
    return *this;
}

Table &
Table::cell(const std::string &value)
{
    if (rows.empty())
        panic("Table::cell before Table::row");
    rows.back().push_back(value);
    return *this;
}

Table &
Table::cell(const char *value)
{
    return cell(std::string(value));
}

Table &
Table::cell(std::int64_t value)
{
    return cell(std::to_string(value));
}

Table &
Table::cell(int value)
{
    return cell(static_cast<std::int64_t>(value));
}

Table &
Table::cell(std::size_t value)
{
    return cell(std::to_string(value));
}

Table &
Table::cell(double value, int precision)
{
    return cell(formatNumber(value, precision));
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(headers.size());
    for (std::size_t c = 0; c < headers.size(); ++c)
        widths[c] = headers[c].size();
    for (const auto &r : rows) {
        for (std::size_t c = 0; c < r.size() && c < widths.size(); ++c)
            widths[c] = std::max(widths[c], r[c].size());
    }

    auto hline = [&]() {
        os << '+';
        for (auto w : widths)
            os << std::string(w + 2, '-') << '+';
        os << '\n';
    };
    auto emit = [&](const std::vector<std::string> &cells) {
        os << '|';
        for (std::size_t c = 0; c < widths.size(); ++c) {
            const std::string &v = c < cells.size() ? cells[c] : "";
            os << ' ' << v << std::string(widths[c] - v.size() + 1, ' ')
               << '|';
        }
        os << '\n';
    };

    if (!title.empty())
        os << "== " << title << " ==\n";
    hline();
    emit(headers);
    hline();
    for (const auto &r : rows)
        emit(r);
    hline();
}

} // namespace usfq
