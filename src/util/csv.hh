/**
 * @file
 * Minimal CSV emission for bench outputs that downstream plotting
 * scripts can consume.
 */

#ifndef USFQ_UTIL_CSV_HH
#define USFQ_UTIL_CSV_HH

#include <fstream>
#include <string>
#include <vector>

namespace usfq
{

/**
 * Streams rows to a CSV file; the header is written on construction.
 * Writing is best-effort: if the path cannot be opened the writer is
 * inert (benches still print their tables to stdout).
 */
class CsvWriter
{
  public:
    CsvWriter(const std::string &path, std::vector<std::string> headers);

    /** True if the output file opened successfully. */
    bool ok() const { return out.is_open(); }

    /** Write one row of already-formatted fields. */
    void writeRow(const std::vector<std::string> &fields);

    /** Write one row of doubles. */
    void writeRow(const std::vector<double> &fields);

  private:
    static std::string escape(const std::string &field);

    std::ofstream out;
    std::size_t columns;
};

} // namespace usfq

#endif // USFQ_UTIL_CSV_HH
