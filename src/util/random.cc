#include "util/random.hh"

#include <cmath>

#include "util/logging.hh"

namespace usfq
{

namespace
{

inline std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

inline std::uint64_t
splitmix64(std::uint64_t &x)
{
    std::uint64_t z = (x += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

} // namespace

Rng::Rng(std::uint64_t seed_value)
{
    seed(seed_value);
}

void
Rng::seed(std::uint64_t seed_value)
{
    std::uint64_t sm = seed_value;
    for (auto &s : state)
        s = splitmix64(sm);
    haveSpareGaussian = false;
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(state[1] * 5, 7) * 9;
    const std::uint64_t t = state[1] << 17;

    state[2] ^= state[0];
    state[3] ^= state[1];
    state[1] ^= state[2];
    state[0] ^= state[3];
    state[2] ^= t;
    state[3] = rotl(state[3], 45);

    return result;
}

double
Rng::uniform()
{
    // 53 high bits -> double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::int64_t
Rng::uniformInt(std::int64_t lo, std::int64_t hi)
{
    if (lo > hi)
        panic("Rng::uniformInt: empty range [%lld, %lld]",
              static_cast<long long>(lo), static_cast<long long>(hi));
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) // full 64-bit range
        return static_cast<std::int64_t>(next());
    // Rejection sampling for an unbiased draw.
    const std::uint64_t limit = (~0ULL / span) * span;
    std::uint64_t v;
    do {
        v = next();
    } while (v >= limit);
    return lo + static_cast<std::int64_t>(v % span);
}

bool
Rng::bernoulli(double p)
{
    return uniform() < p;
}

double
Rng::gaussian()
{
    if (haveSpareGaussian) {
        haveSpareGaussian = false;
        return spareGaussian;
    }
    double u1 = 0.0;
    while (u1 == 0.0)
        u1 = uniform();
    const double u2 = uniform();
    const double mag = std::sqrt(-2.0 * std::log(u1));
    spareGaussian = mag * std::sin(2.0 * M_PI * u2);
    haveSpareGaussian = true;
    return mag * std::cos(2.0 * M_PI * u2);
}

double
Rng::gaussian(double mean, double sigma)
{
    return mean + sigma * gaussian();
}

} // namespace usfq
