/**
 * @file
 * Minimal command-line flag handling shared by the bench harnesses.
 *
 * Two primitives, both loud about mistakes (util/logging fatal()):
 *
 *  - extractFlag() pulls "--name <value>" / "--name=<value>" out of
 *    argv, compacting the remainder in place.  A flag followed by
 *    another "--flag" instead of a value is an error, not a value --
 *    the silent-argv-mangling bug this replaces treated the next flag
 *    as the value and dropped it from argv.
 *
 *  - rejectUnknownFlags() fails on any remaining "--flag" argument
 *    that does not match an allowed prefix, so a typo like
 *    "--jsn out.json" aborts the run instead of being ignored.
 *
 * Positional (non "--") arguments always pass through untouched.
 */

#ifndef USFQ_UTIL_ARGS_HH
#define USFQ_UTIL_ARGS_HH

#include <string>
#include <vector>

namespace usfq::args
{

/** True for "--something" arguments (the only syntax we treat as flags). */
bool isFlag(const char *arg);

/**
 * Remove every occurrence of "--<name> <value>" or "--<name>=<value>"
 * from argv (updating *argc and null-terminating the compacted array)
 * and return the last value given, or "" when the flag is absent.
 *
 * fatal()s when the flag is present without a value, or when the
 * would-be value is itself another "--flag".
 */
std::string extractFlag(int *argc, char **argv, const std::string &name);

/**
 * fatal() on the first remaining "--flag" in argv that does not start
 * with one of @p allowed_prefixes (e.g. "--benchmark_" for binaries
 * that forward to google-benchmark).
 */
void rejectUnknownFlags(int argc, char *const *argv,
                        const std::vector<std::string> &allowed_prefixes
                        = {});

} // namespace usfq::args

#endif // USFQ_UTIL_ARGS_HH
