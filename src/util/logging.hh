/**
 * @file
 * gem5-style status/error reporting: panic, fatal, warn, inform.
 *
 * panic() is for internal invariant violations (simulator bugs) and
 * aborts; fatal() is for user-caused conditions (bad configuration) and
 * exits cleanly; warn()/inform() report without stopping.
 */

#ifndef USFQ_UTIL_LOGGING_HH
#define USFQ_UTIL_LOGGING_HH

#include <cstdarg>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace usfq
{

/**
 * The exception fatal() raises in FatalMode::Throw: what() carries the
 * formatted message.  Embedding hosts (the C ABI in src/api/, the
 * request broker in src/svc/) catch this at their boundary and turn it
 * into an error code instead of losing the process.
 */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &message)
        : std::runtime_error(message)
    {
    }
};

/** What fatal() does after formatting its message. */
enum class FatalMode
{
    /** Print to stderr and exit(1) -- the CLI bench default. */
    Exit,
    /** Throw FatalError (nothing is printed; the host reports). */
    Throw,
};

/** Printf-style formatting into a std::string. */
std::string strprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Internal invariant violated: print and abort(). */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Unrecoverable user error.  In FatalMode::Exit (the default): print
 * and exit(1).  In FatalMode::Throw: raise FatalError instead, so an
 * embedding host survives bad requests.  Either way the registered
 * fatal callback (if any) sees the message first, and the call never
 * returns.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Current process-wide fatal() disposition. */
FatalMode fatalMode();

/** Set the fatal() disposition; returns the previous mode. */
FatalMode setFatalMode(FatalMode mode);

/**
 * Observer invoked with the formatted message before fatal() exits or
 * throws -- lets a host log/forward diagnostics regardless of mode.
 * One callback process-wide; null (the default) disables it.  The
 * callback must not itself call fatal().
 */
using FatalCallback = void (*)(const char *message, void *ctx);
void setFatalCallback(FatalCallback cb, void *ctx = nullptr);

/**
 * RAII guard switching fatal() to FatalMode::Throw for its lifetime
 * (restoring the previous mode on destruction).  The mode is
 * process-wide, not thread-local, so sweep worker threads spawned
 * inside the guarded region inherit it and their FatalError propagates
 * back through runSweep's rethrow; overlapping guards on different
 * threads restore in destruction order.
 */
class ScopedFatalThrow
{
  public:
    ScopedFatalThrow() : prev(setFatalMode(FatalMode::Throw)) {}
    ~ScopedFatalThrow() { setFatalMode(prev); }
    ScopedFatalThrow(const ScopedFatalThrow &) = delete;
    ScopedFatalThrow &operator=(const ScopedFatalThrow &) = delete;

  private:
    FatalMode prev;
};

/** Non-fatal warning to stderr. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Informational message to stderr. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Silence warn()/inform() (used by tests and benches).  Atomic:
 * sweep shards may toggle or log concurrently. */
void setQuiet(bool quiet);

/**
 * Total warn() / inform() calls since process start (or the last
 * resetLogCounts()).  Counted even while quiet, so "0 warnings" is a
 * machine-checkable property of a run: bench artifacts embed these and
 * obs::captureLogStats() mirrors them into the stats registry.
 */
std::uint64_t warnCount();
std::uint64_t informCount();

/** Zero the warn/inform counters (tests, bench harness setup). */
void resetLogCounts();

} // namespace usfq

#endif // USFQ_UTIL_LOGGING_HH
