/**
 * @file
 * gem5-style status/error reporting: panic, fatal, warn, inform.
 *
 * panic() is for internal invariant violations (simulator bugs) and
 * aborts; fatal() is for user-caused conditions (bad configuration) and
 * exits cleanly; warn()/inform() report without stopping.
 */

#ifndef USFQ_UTIL_LOGGING_HH
#define USFQ_UTIL_LOGGING_HH

#include <cstdarg>
#include <string>

namespace usfq
{

/** Printf-style formatting into a std::string. */
std::string strprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Internal invariant violated: print and abort(). */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Unrecoverable user error: print and exit(1). */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Non-fatal warning to stderr. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Informational message to stderr. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Silence warn()/inform() (used by tests and benches). */
void setQuiet(bool quiet);

} // namespace usfq

#endif // USFQ_UTIL_LOGGING_HH
