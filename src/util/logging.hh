/**
 * @file
 * gem5-style status/error reporting: panic, fatal, warn, inform.
 *
 * panic() is for internal invariant violations (simulator bugs) and
 * aborts; fatal() is for user-caused conditions (bad configuration) and
 * exits cleanly; warn()/inform() report without stopping.
 */

#ifndef USFQ_UTIL_LOGGING_HH
#define USFQ_UTIL_LOGGING_HH

#include <cstdarg>
#include <cstdint>
#include <string>

namespace usfq
{

/** Printf-style formatting into a std::string. */
std::string strprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Internal invariant violated: print and abort(). */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Unrecoverable user error: print and exit(1). */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Non-fatal warning to stderr. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Informational message to stderr. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Silence warn()/inform() (used by tests and benches).  Atomic:
 * sweep shards may toggle or log concurrently. */
void setQuiet(bool quiet);

/**
 * Total warn() / inform() calls since process start (or the last
 * resetLogCounts()).  Counted even while quiet, so "0 warnings" is a
 * machine-checkable property of a run: bench artifacts embed these and
 * obs::captureLogStats() mirrors them into the stats registry.
 */
std::uint64_t warnCount();
std::uint64_t informCount();

/** Zero the warn/inform counters (tests, bench harness setup). */
void resetLogCounts();

} // namespace usfq

#endif // USFQ_UTIL_LOGGING_HH
