/**
 * @file
 * Small statistics helpers: running moments, percentiles, and the
 * least-squares linear fits used for the paper's dashed baseline lines.
 */

#ifndef USFQ_UTIL_STATS_HH
#define USFQ_UTIL_STATS_HH

#include <cstddef>
#include <vector>

namespace usfq
{

/** Accumulates count/mean/variance/min/max in a single pass (Welford). */
class RunningStats
{
  public:
    /** Add one sample. */
    void add(double x);

    std::size_t count() const { return n; }
    double mean() const;
    /** Sample variance (n-1 denominator). */
    double variance() const;
    double stddev() const;
    double min() const;
    double max() const;

  private:
    std::size_t n = 0;
    double m = 0.0;
    double m2 = 0.0;
    double lo = 0.0;
    double hi = 0.0;
};

/** Result of a least-squares line fit y = slope * x + intercept. */
struct LinearFit
{
    double slope = 0.0;
    double intercept = 0.0;
    /** Coefficient of determination. */
    double r2 = 0.0;

    double operator()(double x) const { return slope * x + intercept; }
};

/** Least-squares fit over paired samples; needs at least two points. */
LinearFit fitLine(const std::vector<double> &xs,
                  const std::vector<double> &ys);

/** p-th percentile (0..100) by linear interpolation of sorted data. */
double percentile(std::vector<double> values, double p);

/** Arithmetic mean; 0 for empty input. */
double mean(const std::vector<double> &values);

} // namespace usfq

#endif // USFQ_UTIL_STATS_HH
