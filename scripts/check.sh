#!/usr/bin/env bash
# Tier-1 gate: build + full ctest in the default configuration, then
# again under AddressSanitizer (-DUSFQ_SANITIZE=address).  Run from the
# repo root; pass extra ctest args after `--` (e.g. `-- -L sta`).
#
#   ./scripts/check.sh                 # both configurations, full suite
#   ./scripts/check.sh -- -L unit      # both configurations, unit tier
#   ./scripts/check.sh diff            # functional-backend gate: unit,
#                                      # golden, diff and sta tiers under
#                                      # default and ASan builds
#   ./scripts/check.sh batch           # batched-engine gate: the batch
#                                      # tier (span kernels + lane-level
#                                      # differential) under default,
#                                      # ASan and UBSan builds
#   ./scripts/check.sh svc             # service gate: the svc tier
#                                      # (C API, structural hash, result
#                                      # cache, broker + the usfq_serve
#                                      # 1000-request smoke) under
#                                      # default and ASan builds
#   ./scripts/check.sh gen             # design-space compiler gate: the
#                                      # gen tier (spec round-trips,
#                                      # balancer convergence, the 500-spec
#                                      # generator differential, generated
#                                      # goldens) under default, ASan and
#                                      # UBSan builds
#   ./scripts/check.sh noc             # temporal-NoC gate: the noc tier
#                                      # (plan/router/grid units, the
#                                      # fabric differential up to 8x8,
#                                      # the fig_noc_* benches and the
#                                      # noc_mesh smoke) under default
#                                      # and ASan builds
#   ./scripts/check.sh bench-artifacts # run benches with artifact
#                                      # output into ./artifacts/ and
#                                      # validate every BENCH_*.json
#   ./scripts/check.sh regress         # regression gate: regenerate
#                                      # artifacts into a temp dir and
#                                      # diff them against the committed
#                                      # ./artifacts baseline
#                                      # (bench/bench_diff.cpp), after
#                                      # proving the gate can fire via
#                                      # its --self-test
#   ./scripts/check.sh obs             # observability gate: the obs
#                                      # tier (trace round-trips, broker
#                                      # tracing, metrics ABI), golden
#                                      # tiers rerun with tracing forced
#                                      # on (USFQ_TRACE_OUT), then the
#                                      # regress stage
#
# docs/observability.md describes the artifact format; docs/functional.md
# describes the diff tier (differential fuzzer + functional goldens).

set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

mode="default"
if [[ "${1:-}" == "bench-artifacts" || "${1:-}" == "diff" ||
      "${1:-}" == "batch" || "${1:-}" == "svc" ||
      "${1:-}" == "gen" || "${1:-}" == "noc" ||
      "${1:-}" == "regress" || "${1:-}" == "obs" ]]; then
    mode="$1"
    shift
fi

ctest_args=()
if [[ "${1:-}" == "--" ]]; then
    shift
    ctest_args=("$@")
fi

if [[ "$mode" == "diff" ]]; then
    # The tiers that lock the functional backend to the pulse-level
    # simulator: unit (properties + models), golden (incl. functional
    # goldens), diff (the differential fuzzer) and sta.
    ctest_args=(-L 'unit|golden|diff|sta' "${ctest_args[@]}")
elif [[ "$mode" == "batch" ]]; then
    # The batched-engine gate: the span-kernel fuzzer and the
    # lane-level differential tier (docs/functional.md, "Batched
    # evaluation").  Runs under UBSan as well -- the SIMD kernels and
    # the arena are exactly the code where silent UB would hide.
    ctest_args=(-L 'batch' "${ctest_args[@]}")
elif [[ "$mode" == "svc" ]]; then
    # The simulation-service gate (docs/service.md): the stable C API
    # round-trips, structural-hash determinism, cache hit-vs-recompute
    # bit-identity, broker behavior, and the usfq_serve smoke that
    # pushes >=1000 mixed requests through the worker pool and checks
    # every response against a direct engine run.
    ctest_args=(-L 'svc' "${ctest_args[@]}")
elif [[ "$mode" == "gen" ]]; then
    # The design-space compiler gate (docs/synthesis.md): spec JSON
    # round-trips and hash determinism, balancer convergence/budget
    # accounting, the 500-spec generator differential (lint-clean,
    # STA-gated, pulse vs functional at 1 and 4 threads) and the
    # generated-netlist goldens.  Runs under UBSan as well -- the slot
    # algebra and the padding arithmetic are integer-heavy code where
    # silent UB would hide.
    ctest_args=(-L 'gen' "${ctest_args[@]}")
elif [[ "$mode" == "noc" ]]; then
    # The temporal-NoC gate (docs/noc.md): plan placement and router
    # units, the flit-for-flit fabric differential (sink counts AND
    # per-router collision ledgers, pulse vs functional, up to 8x8),
    # the facade thread/batch bit-identity contracts, the fig_noc_*
    # bench binaries and the noc_mesh example smoke.
    ctest_args=(-L 'noc' "${ctest_args[@]}")
fi

run_config() {
    local name="$1" build_dir="$2"
    shift 2
    echo "==> [$name] configure ($*)"
    cmake -B "$build_dir" -S "$repo" "$@"
    echo "==> [$name] build"
    cmake --build "$build_dir" -j "$jobs"
    echo "==> [$name] ctest"
    ctest --test-dir "$build_dir" --output-on-failure -j "$jobs" \
        "${ctest_args[@]}"
}

if [[ "$mode" == "bench-artifacts" ]]; then
    # Build, then run the bench tiers with USFQ_BENCH_JSON pointed at
    # ./artifacts so every bench drops its BENCH_<name>.json, and fail
    # if any artifact is missing or malformed (bench/json_lint.cpp).
    artifacts="$repo/artifacts"
    rm -rf "$artifacts"
    mkdir -p "$artifacts"
    cmake -B "$repo/build" -S "$repo"
    cmake --build "$repo/build" -j "$jobs"
    echo "==> [bench-artifacts] running lint + bench-smoke tiers"
    USFQ_BENCH_JSON="$artifacts" ctest --test-dir "$repo/build" \
        --output-on-failure -j "$jobs" -L 'lint|bench-smoke' \
        "${ctest_args[@]}"
    shopt -s nullglob
    files=("$artifacts"/BENCH_*.json)
    if [[ ${#files[@]} -eq 0 ]]; then
        echo "==> [bench-artifacts] FAILED: no BENCH_*.json produced" >&2
        exit 1
    fi
    echo "==> [bench-artifacts] validating ${#files[@]} artifacts"
    "$repo/build/bench/json_lint" "${files[@]}"
    echo "==> bench artifacts ok (${#files[@]} files in ./artifacts)"
    exit 0
fi

if [[ "$mode" == "regress" || "$mode" == "obs" ]]; then
    cmake -B "$repo/build" -S "$repo"
    cmake --build "$repo/build" -j "$jobs"
    tmproot="$(mktemp -d)"
    trap 'rm -rf "$tmproot"' EXIT

    if [[ "$mode" == "obs" ]]; then
        # The obs tier: trace round-trips, broker span chains, metrics
        # ABI, telemetry mirroring.
        echo "==> [obs] tracing + metrics tier"
        ctest --test-dir "$repo/build" --output-on-failure -j "$jobs" \
            -L 'obs' "${ctest_args[@]}"
        # Tracing must be invisible to results: rerun the golden tier
        # with a trace sink forced on (serially -- the test processes
        # would race on the shared sink file), then parse what the last
        # writer left behind.
        echo "==> [obs] golden tier with USFQ_TRACE_OUT forced on"
        USFQ_TRACE_OUT="$tmproot/golden_trace.json" ctest \
            --test-dir "$repo/build" --output-on-failure -j 1 -L golden
        if [[ -s "$tmproot/golden_trace.json" ]]; then
            "$repo/build/bench/json_lint" "$tmproot/golden_trace.json"
        fi
    fi

    # Regression gate: the committed ./artifacts baseline vs a fresh
    # regeneration, after proving the gate can fire at all.
    baseline="$repo/artifacts"
    if [[ ! -d "$baseline" ]]; then
        echo "==> [regress] FAILED: no committed ./artifacts baseline" >&2
        echo "    (run ./scripts/check.sh bench-artifacts, commit it)" >&2
        exit 1
    fi
    echo "==> [regress] proving the gate fires (bench_diff --self-test)"
    "$repo/build/bench/bench_diff" --self-test "$baseline"
    echo "==> [regress] regenerating artifacts into a scratch dir"
    mkdir -p "$tmproot/fresh"
    USFQ_BENCH_JSON="$tmproot/fresh" ctest --test-dir "$repo/build" \
        --output-on-failure -j "$jobs" -L 'lint|bench-smoke' >/dev/null
    echo "==> [regress] diffing fresh artifacts against ./artifacts"
    "$repo/build/bench/bench_diff" "$baseline" "$tmproot/fresh"
    echo "==> ${mode} gate passed"
    exit 0
fi

run_config default "$repo/build"
run_config asan "$repo/build-asan" -DUSFQ_SANITIZE=address
if [[ "$mode" == "batch" || "$mode" == "gen" ]]; then
    run_config ubsan "$repo/build-ubsan" -DUSFQ_SANITIZE=undefined
    echo "==> all checks passed (default + asan + ubsan)"
else
    echo "==> all checks passed (default + asan)"
fi
