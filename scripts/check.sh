#!/usr/bin/env bash
# Tier-1 gate: build + full ctest in the default configuration, then
# again under AddressSanitizer (-DUSFQ_SANITIZE=address).  Run from the
# repo root; pass extra ctest args after `--` (e.g. `-- -L sta`).
#
#   ./scripts/check.sh            # both configurations, full suite
#   ./scripts/check.sh -- -L unit # both configurations, unit tier only

set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

ctest_args=()
if [[ "${1:-}" == "--" ]]; then
    shift
    ctest_args=("$@")
fi

run_config() {
    local name="$1" build_dir="$2"
    shift 2
    echo "==> [$name] configure ($*)"
    cmake -B "$build_dir" -S "$repo" "$@"
    echo "==> [$name] build"
    cmake --build "$build_dir" -j "$jobs"
    echo "==> [$name] ctest"
    ctest --test-dir "$build_dir" --output-on-failure -j "$jobs" \
        "${ctest_args[@]}"
}

run_config default "$repo/build"
run_config asan "$repo/build-asan" -DUSFQ_SANITIZE=address

echo "==> all checks passed (default + asan)"
