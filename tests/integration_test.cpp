/**
 * @file
 * Cross-module integration and property tests: composed accelerator
 * datapaths (coefficient bank feeding a DPU, PE-to-PE chaining), reset
 * idempotence across the block library, and determinism of full
 * simulations.
 */

#include <gtest/gtest.h>

#include "core/adder.hh"
#include "core/dpu.hh"
#include "core/fir.hh"
#include "core/memory.hh"
#include "core/multiplier.hh"
#include "core/pe.hh"
#include "core/pnm.hh"
#include "core/shift_register.hh"
#include "sim/trace.hh"
#include "sfq/sources.hh"
#include "util/random.hh"

namespace usfq
{
namespace
{

// --- coefficient bank feeding a DPU (the FIR datapath core) ------------------

TEST(Integration, BankStreamsDriveDpu)
{
    // Coefficients streamed from NDRO memory multiply RL operands: the
    // composition the FIR relies on, checked without the delay line.
    const int bits = 6;
    const int words = 4;
    const UsfqFirConfig fcfg{.taps = words, .bits = bits,
                             .mode = DpuMode::Unipolar};
    const EpochConfig ecfg(bits, fcfg.clockPeriod());

    Netlist nl;
    auto &bank = nl.create<CoefficientBank>("bank", words, bits);
    auto &dpu = nl.create<DotProductUnit>("dpu", words,
                                          DpuMode::Unipolar);
    auto &clk = nl.create<ClockSource>("clk");
    PulseTrace out;
    clk.out.connect(bank.clkIn());
    bank.epochOut().connect(dpu.epochIn());
    for (int w = 0; w < words; ++w)
        bank.out(w).connect(dpu.streamIn(w));
    dpu.out().connect(out.input());

    const std::vector<int> values{10, 32, 50, 63};
    const std::vector<double> rl{0.25, 0.5, 0.75, 1.0};
    for (int w = 0; w < words; ++w) {
        bank.program(w, values[static_cast<std::size_t>(w)]);
        auto &src = nl.create<PulseSource>("x" + std::to_string(w));
        src.out.connect(dpu.rlIn(w));
        // RL pulses referenced to the bank's divider-chain lag.
        const Tick marker_lag = fcfg.clockPeriod() +
                                static_cast<Tick>(bits) *
                                    cell::kTff2Delay;
        src.pulseAt(marker_lag + 20 * kPicosecond +
                    ecfg.rlTime(ecfg.rlIdOfUnipolar(
                        rl[static_cast<std::size_t>(w)])));
    }
    clk.program(fcfg.clockPeriod(), fcfg.clockPeriod(),
                std::uint64_t{1} << bits);
    nl.queue().run();

    double ideal = 0.0;
    for (int w = 0; w < words; ++w)
        ideal += values[static_cast<std::size_t>(w)] /
                 static_cast<double>(ecfg.nmax()) *
                 rl[static_cast<std::size_t>(w)];
    const double got = DotProductUnit::decode(
        ecfg, DpuMode::Unipolar, words, dpu.paddedLength(),
        out.count());
    EXPECT_NEAR(got, ideal, 0.25) << "dot product through real memory";
}

// --- PE chaining: RL output feeds the next PE's RL input ----------------------

TEST(Integration, PeOutputDrivesNextPeRlInput)
{
    // PE1 computes (a*b)/2 and emits it as an RL pulse next epoch;
    // PE2 consumes that pulse directly as its In1.
    const EpochConfig cfg(4, 30 * kPicosecond);
    Netlist nl;
    auto &pe1 = nl.create<ProcessingElement>("pe1", cfg);
    auto &pe2 = nl.create<ProcessingElement>("pe2", cfg);
    auto &src_e = nl.create<PulseSource>("e");
    auto &src1 = nl.create<PulseSource>("in1");
    auto &src2 = nl.create<PulseSource>("in2");
    auto &src2b = nl.create<PulseSource>("in2b");
    PulseTrace out;

    src_e.out.connect(pe1.epoch());
    src_e.out.connect(pe2.epoch());
    src1.out.connect(pe1.in1());
    src2.out.connect(pe1.in2());
    pe1.out().connect(pe2.in1()); // RL chaining
    src2b.out.connect(pe2.in2());
    pe2.out().connect(out.input());

    const Tick T = cfg.duration();
    // Epoch 0: PE1 computes 1.0 * 0.5 / 2 = 0.25 (slot 4 of 16).
    src_e.pulseAt(0);
    src1.pulseAt(5 * kPicosecond + cfg.rlTime(15));
    for (Tick t : cfg.streamTimes(8, 0))
        src2.pulseAt(t);
    // Epoch 1: PE1's RL output (slot ~4) gates PE2's full stream:
    // PE2 out = (0.25 * 1.0)/2 = 0.125 -> slot 2.
    src_e.pulseAt(T);
    for (Tick t : cfg.streamTimes(16, T))
        src2b.pulseAt(t);
    // Epoch 2: conversion marker for PE2.
    src_e.pulseAt(2 * T);
    nl.queue().run();

    // PE2 emits after the marker at 2T.
    int slot = -1;
    for (Tick t : out.times())
        if (t > 2 * T)
            slot = cfg.rlSlotOf(t - 2 * T - 33 * kPicosecond -
                                EpochConfig::kRlPulseOffset);
    EXPECT_NEAR(slot, 2, 1);
}

// --- reset idempotence across the block library --------------------------------

TEST(Integration, ResetRestoresIdenticalBehaviour)
{
    // Run the same DPU epoch twice around resetAll(); results and
    // switch counts must match exactly.
    const EpochConfig cfg(5, 40 * kPicosecond);
    Netlist nl;
    auto &dpu = nl.create<DotProductUnit>("dpu", 4, DpuMode::Unipolar);
    auto &src_e = nl.create<PulseSource>("e");
    PulseTrace out;
    src_e.out.connect(dpu.epochIn());
    dpu.out().connect(out.input());
    std::vector<PulseSource *> rl, st;
    for (int i = 0; i < 4; ++i) {
        auto &r = nl.create<PulseSource>("a" + std::to_string(i));
        auto &s = nl.create<PulseSource>("b" + std::to_string(i));
        r.out.connect(dpu.rlIn(i));
        s.out.connect(dpu.streamIn(i));
        rl.push_back(&r);
        st.push_back(&s);
    }

    auto drive = [&] {
        src_e.pulseAt(0);
        for (int i = 0; i < 4; ++i) {
            rl[static_cast<std::size_t>(i)]->pulseAt(
                10 * kPicosecond + cfg.rlTime(8 * (i + 1) % 33));
            st[static_cast<std::size_t>(i)]->pulsesAt(
                cfg.streamTimes(5 * (i + 1)));
        }
        nl.queue().run();
    };

    drive();
    const auto count1 = out.count();
    const auto switches1 = nl.totalSwitches();
    nl.resetAll();
    out.clear();
    drive();
    EXPECT_EQ(out.count(), count1);
    EXPECT_EQ(nl.totalSwitches(), switches1);
}

TEST(Integration, SimulationIsDeterministic)
{
    // Two fresh netlists with the same stimulus give bit-identical
    // pulse times.
    auto run = [] {
        const EpochConfig cfg(5, 40 * kPicosecond);
        Netlist nl;
        auto &net = nl.create<TreeCountingNetwork>("net", 8);
        PulseTrace out;
        net.out().connect(out.input());
        Rng rng(99);
        for (int i = 0; i < 8; ++i) {
            auto &src = nl.create<PulseSource>("s" + std::to_string(i));
            src.out.connect(net.in(i));
            src.pulsesAt(cfg.streamTimes(
                static_cast<int>(rng.uniformInt(0, cfg.nmax()))));
        }
        nl.queue().run();
        return out.times();
    };
    EXPECT_EQ(run(), run());
}

// --- netlist-level area accounting ----------------------------------------------

TEST(Integration, NetlistAreaEqualsComponentSum)
{
    Netlist nl;
    auto &pe = nl.create<ProcessingElement>("pe", EpochConfig(6));
    auto &dpu = nl.create<DotProductUnit>("dpu", 8, DpuMode::Bipolar);
    auto &bank = nl.create<CoefficientBank>("bank", 8, 6);
    EXPECT_EQ(nl.totalJJs(),
              pe.jjCount() + dpu.jjCount() + bank.jjCount());
}

// --- functional FIR against per-tap composition -------------------------------

TEST(Integration, FirModelEqualsManualTapComposition)
{
    const UsfqFirConfig cfg{.taps = 4, .bits = 8,
                            .mode = DpuMode::Bipolar};
    const EpochConfig ecfg(cfg.bits, cfg.clockPeriod());
    // Peak >= 0.95 so the model's coefficient pre-scaling is identity
    // and the manual composition matches term for term.
    const std::vector<double> h{0.95, -0.25, 0.125, -0.0625};
    UsfqFirModel fir(h, cfg);
    ASSERT_DOUBLE_EQ(fir.coefficientScale(), 1.0);

    Rng rng(5);
    for (int trial = 0; trial < 50; ++trial) {
        std::vector<double> window(4);
        for (auto &v : window)
            v = rng.uniform(-1.0, 1.0);

        // Manual composition from the primitive counting models.
        std::vector<int> prods(4);
        for (int k = 0; k < 4; ++k) {
            const int hc = ecfg.streamCountOfBipolar(
                h[static_cast<std::size_t>(k)]);
            const int id = ecfg.rlIdOfBipolar(
                window[static_cast<std::size_t>(k)]);
            prods[static_cast<std::size_t>(k)] =
                bipolarProductCount(ecfg, hc, id);
        }
        const double manual = DotProductUnit::decode(
            ecfg, DpuMode::Bipolar, 4, 4,
            static_cast<std::size_t>(treeNetworkCount(prods)));

        EXPECT_DOUBLE_EQ(fir.step(window), manual) << "trial " << trial;
    }
}

} // namespace
} // namespace usfq
