/**
 * @file
 * Unit tests for the event kernel: ordering, determinism, ports/wires,
 * netlist ownership and accounting, and pulse traces.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"
#include "sim/netlist.hh"
#include "sim/port.hh"
#include "sim/trace.hh"
#include "sfq/cells.hh"
#include "sfq/sources.hh"

namespace usfq
{
namespace
{

TEST(EventQueue, RunsInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30);
}

TEST(EventQueue, FifoWithinSameTick)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        eq.schedule(5, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventQueue, EventsMayScheduleEvents)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&] {
        eq.scheduleAfter(4, [&] { fired = 1; });
    });
    eq.run();
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.now(), 5);
}

TEST(EventQueue, RunUntilStopsEarly)
{
    EventQueue eq;
    int count = 0;
    for (Tick t = 10; t <= 100; t += 10)
        eq.schedule(t, [&] { ++count; });
    eq.run(50);
    EXPECT_EQ(count, 5);
    EXPECT_EQ(eq.pending(), 5u);
    eq.run();
    EXPECT_EQ(count, 10);
}

TEST(EventQueue, RunUntilAdvancesTimeWhenIdle)
{
    EventQueue eq;
    eq.run(1000);
    EXPECT_EQ(eq.now(), 1000);
}

TEST(EventQueue, StepExecutesOne)
{
    EventQueue eq;
    int count = 0;
    eq.schedule(1, [&] { ++count; });
    eq.schedule(2, [&] { ++count; });
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(count, 1);
    EXPECT_TRUE(eq.step());
    EXPECT_FALSE(eq.step());
}

TEST(EventQueue, ResetClearsEverything)
{
    EventQueue eq;
    eq.schedule(10, [] {});
    eq.run();
    eq.schedule(20, [] {});
    eq.reset();
    EXPECT_EQ(eq.now(), 0);
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.executed(), 0u);
}

TEST(EventQueue, SchedulingInPastPanics)
{
    EventQueue eq;
    eq.schedule(100, [] {});
    eq.run();
    EXPECT_DEATH(eq.schedule(50, [] {}), "past");
}

TEST(Ports, WireDelayApplied)
{
    Netlist nl;
    PulseTrace trace;
    OutputPort out("o", &nl.queue());
    out.connect(trace.input(), 7);
    nl.queue().schedule(3, [&] { out.emit(3); });
    nl.queue().run();
    ASSERT_EQ(trace.count(), 1u);
    EXPECT_EQ(trace.times()[0], 10);
}

TEST(Ports, FanOutDeliversToAll)
{
    Netlist nl;
    PulseTrace t1, t2, t3;
    OutputPort out("o", &nl.queue());
    out.connect(t1.input(), 1);
    out.connect(t2.input(), 2);
    out.connect(t3.input(), 3);
    out.emit(0);
    nl.queue().run();
    EXPECT_EQ(t1.count(), 1u);
    EXPECT_EQ(t2.count(), 1u);
    EXPECT_EQ(t3.count(), 1u);
    EXPECT_EQ(out.fanout(), 3u);
    EXPECT_EQ(out.pulseCount(), 1u);
}

TEST(Netlist, OwnsComponentsAndCountsJJs)
{
    Netlist nl;
    nl.create<Jtl>("j1");
    nl.create<Merger>("m1");
    nl.create<Ndro>("n1");
    EXPECT_EQ(nl.numComponents(), 3u);
    EXPECT_EQ(nl.totalJJs(),
              cell::kJtlJJs + cell::kMergerJJs + cell::kNdroJJs);
}

TEST(Netlist, SwitchAccountingAccumulates)
{
    Netlist nl;
    auto &jtl = nl.create<Jtl>("j");
    auto &src = nl.create<PulseSource>("src");
    src.out.connect(jtl.in);
    src.pulsesAt({10, 20, 30});
    nl.queue().run();
    EXPECT_EQ(nl.totalSwitches(),
              3u * cell::switchesPerOp(cell::kJtlJJs));
    nl.resetAll();
    EXPECT_EQ(nl.totalSwitches(), 0u);
}

TEST(Netlist, ResetAllResetsComponentsAndQueue)
{
    Netlist nl;
    auto &ndro = nl.create<Ndro>("n");
    auto &src = nl.create<PulseSource>("src");
    src.out.connect(ndro.s);
    src.pulseAt(5);
    nl.queue().run();
    EXPECT_TRUE(ndro.state());
    nl.resetAll();
    EXPECT_FALSE(ndro.state());
    EXPECT_EQ(nl.queue().now(), 0);
}

TEST(Trace, WindowCountAndSpacing)
{
    PulseTrace tr;
    tr.input().receive(10);
    tr.input().receive(30);
    tr.input().receive(35);
    EXPECT_EQ(tr.count(), 3u);
    EXPECT_EQ(tr.countInWindow(0, 31), 2u);
    EXPECT_EQ(tr.countInWindow(30, 36), 2u);
    EXPECT_EQ(tr.first(), 10);
    EXPECT_EQ(tr.last(), 35);
    EXPECT_EQ(tr.minSpacing(), 5);
    tr.clear();
    EXPECT_EQ(tr.count(), 0u);
    EXPECT_EQ(tr.first(), kTickInvalid);
    EXPECT_EQ(tr.minSpacing(), kTickInvalid);
}

TEST(Sources, ClockSourceEmitsPeriodicTrain)
{
    Netlist nl;
    auto &clk = nl.create<ClockSource>("clk");
    PulseTrace tr;
    clk.out.connect(tr.input());
    clk.program(100, 50, 5);
    nl.queue().run();
    ASSERT_EQ(tr.count(), 5u);
    EXPECT_EQ(tr.times()[0], 100);
    EXPECT_EQ(tr.times()[4], 300);
    EXPECT_EQ(tr.minSpacing(), 50);
}

} // namespace
} // namespace usfq
