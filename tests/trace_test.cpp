/**
 * @file
 * Request-tracing tests (src/obs/trace.*, docs/observability.md):
 * monotonic trace/span ids, parent linkage through TraceContext /
 * ScopedSpan nesting, inertness when tracing is disabled, the broker
 * round trip (every request yields one complete span chain, and
 * tracing changes no response byte), and the Perfetto export parsed
 * back as Trace Event JSON.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <future>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "api/facade.hh"
#include "api/spec.hh"
#include "obs/perfetto.hh"
#include "obs/trace.hh"
#include "svc/broker.hh"
#include "util/json.hh"

namespace usfq
{
namespace
{

/** Force the tracing toggle for one test, restoring "off" after. */
struct TracingGuard
{
    explicit TracingGuard(bool on) { obs::setTracingEnabled(on); }
    ~TracingGuard() { obs::setTracingEnabled(false); }
};

api::NetlistSpec
smallDpuSpec()
{
    api::NetlistSpec spec;
    spec.kind = api::WorkloadKind::Dpu;
    spec.name = "dpu";
    spec.taps = 4;
    spec.bits = 4;
    spec.mode = DpuMode::Bipolar;
    return spec;
}

api::RunParams
smallParams()
{
    api::RunParams params;
    params.backend = Backend::Functional;
    params.epochs = 6;
    params.seed = 0x7aceULL;
    return params;
}

// --- ids and contexts ----------------------------------------------------

TEST(Trace, IdsAreMonotonic)
{
    std::uint64_t lastTrace = obs::newTraceId();
    std::uint64_t lastSpan = obs::newSpanId();
    for (int i = 0; i < 100; ++i) {
        const std::uint64_t t = obs::newTraceId();
        const std::uint64_t s = obs::newSpanId();
        EXPECT_GT(t, lastTrace);
        EXPECT_GT(s, lastSpan);
        lastTrace = t;
        lastSpan = s;
    }
}

TEST(Trace, BeginIsInvalidWhenDisabled)
{
    TracingGuard guard(false);
    const obs::TraceContext ctx = obs::TraceContext::begin();
    EXPECT_FALSE(ctx.valid());
    EXPECT_EQ(ctx.traceId, 0u);
}

TEST(Trace, InertSpansRecordNothing)
{
    TracingGuard guard(false);
    obs::TraceLog log;
    const obs::TraceContext ctx = obs::TraceContext::begin();
    {
        obs::ScopedSpan span(ctx, "should_not_appear", &log);
        EXPECT_FALSE(span.active());
        span.arg("key", "value"); // must be a no-op, not a crash
        span.startAt(123);
    }
    EXPECT_EQ(log.size(), 0u);
}

TEST(Trace, NestedSpansLinkParentChain)
{
    TracingGuard guard(true);
    obs::TraceLog log;
    const obs::TraceContext ctx = obs::TraceContext::begin();
    ASSERT_TRUE(ctx.valid());
    {
        obs::ScopedSpan root(ctx, "request", &log);
        ASSERT_TRUE(root.active());
        root.arg("id", "1");
        {
            obs::ScopedSpan child(root.context(), "cache_probe",
                                  &log);
            obs::ScopedSpan grandchild(child.context(), "run", &log);
        }
    }
    const std::vector<obs::TraceSpan> spans = log.snapshot();
    ASSERT_EQ(spans.size(), 3u);
    // Inner scopes finish (and record) first.
    const obs::TraceSpan &run = spans[0];
    const obs::TraceSpan &probe = spans[1];
    const obs::TraceSpan &root = spans[2];
    EXPECT_EQ(root.name, "request");
    EXPECT_EQ(probe.name, "cache_probe");
    EXPECT_EQ(run.name, "run");
    EXPECT_EQ(root.traceId, ctx.traceId);
    EXPECT_EQ(probe.traceId, ctx.traceId);
    EXPECT_EQ(run.traceId, ctx.traceId);
    EXPECT_EQ(root.parentSpanId, 0u);
    EXPECT_EQ(probe.parentSpanId, root.spanId);
    EXPECT_EQ(run.parentSpanId, probe.spanId);
    ASSERT_EQ(root.args.size(), 1u);
    EXPECT_EQ(root.args[0].first, "id");
    EXPECT_EQ(root.args[0].second, "1");
}

TEST(Trace, StartAtOverridesTheRecordedStart)
{
    TracingGuard guard(true);
    obs::TraceLog log;
    const obs::TraceContext ctx = obs::TraceContext::begin();
    {
        obs::ScopedSpan span(ctx, "queue_wait", &log);
        span.startAt(42);
    }
    const std::vector<obs::TraceSpan> spans = log.snapshot();
    ASSERT_EQ(spans.size(), 1u);
    EXPECT_EQ(spans[0].startUs, 42u);
}

TEST(Trace, ThreadNamesRegister)
{
    obs::setCurrentThreadName("trace-test-main");
    bool found = false;
    for (const auto &[tid, name] : obs::threadNames())
        if (name == "trace-test-main")
            found = true;
    EXPECT_TRUE(found);
}

// --- broker round trip ---------------------------------------------------

/** Run @p n identical requests through a fresh broker; return jsons. */
std::vector<std::string>
serveRequests(int n)
{
    svc::BrokerOptions opts;
    opts.workers = 2;
    opts.queueCapacity = 64;
    svc::Broker broker(opts);
    std::vector<std::future<svc::Response>> futures;
    for (int i = 0; i < n; ++i) {
        auto f = broker.submit(svc::Request{
            smallDpuSpec(), smallParams(),
            svc::RequestIntent::Default});
        EXPECT_TRUE(f.has_value());
        futures.push_back(std::move(*f));
    }
    broker.drain();
    std::vector<std::string> jsons;
    for (auto &f : futures) {
        svc::Response r = f.get();
        EXPECT_EQ(r.status, api::Status::Ok) << r.error;
        jsons.push_back(std::move(r.json));
    }
    return jsons;
}

TEST(Trace, BrokerRoundTripYieldsCompleteSpanChains)
{
    TracingGuard guard(true);
    obs::TraceLog::global().clear();
    const int n = 8;
    serveRequests(n);

    struct Chain
    {
        std::uint64_t rootSpan = 0;
        bool queueWait = false;
        bool cacheProbe = false;
    };
    std::map<std::uint64_t, Chain> chains;
    const std::vector<obs::TraceSpan> spans =
        obs::TraceLog::global().snapshot();
    for (const obs::TraceSpan &s : spans)
        if (s.parentSpanId == 0 && s.name == "request")
            chains[s.traceId].rootSpan = s.spanId;
    for (const obs::TraceSpan &s : spans) {
        if (s.parentSpanId == 0)
            continue;
        const auto it = chains.find(s.traceId);
        ASSERT_NE(it, chains.end()) << s.name;
        EXPECT_EQ(s.parentSpanId, it->second.rootSpan) << s.name;
        if (s.name == "queue_wait")
            it->second.queueWait = true;
        else if (s.name == "cache_probe")
            it->second.cacheProbe = true;
    }
    EXPECT_EQ(chains.size(), static_cast<std::size_t>(n));
    for (const auto &[traceId, chain] : chains) {
        EXPECT_TRUE(chain.queueWait) << "trace " << traceId;
        EXPECT_TRUE(chain.cacheProbe) << "trace " << traceId;
    }
    obs::TraceLog::global().clear();
}

TEST(Trace, TracingDoesNotChangeResponseBytes)
{
    std::vector<std::string> off;
    std::vector<std::string> on;
    {
        TracingGuard guard(false);
        off = serveRequests(6);
    }
    {
        TracingGuard guard(true);
        obs::TraceLog::global().clear();
        on = serveRequests(6);
        obs::TraceLog::global().clear();
    }
    ASSERT_EQ(off.size(), on.size());
    for (std::size_t i = 0; i < off.size(); ++i)
        EXPECT_EQ(off[i], on[i]) << "request " << i;
}

// --- Perfetto export -----------------------------------------------------

TEST(Trace, ExportParsesBackAsTraceEventJson)
{
    TracingGuard guard(true);
    obs::TraceLog log;
    const obs::TraceContext ctx = obs::TraceContext::begin();
    {
        obs::ScopedSpan root(ctx, "request", &log);
        root.arg("id", "7");
        obs::ScopedSpan child(root.context(), "run", &log);
    }

    std::ostringstream os;
    obs::writeChromeTrace(os, {}, log.snapshot());

    JsonValue doc;
    std::string error;
    ASSERT_TRUE(parseJson(os.str(), doc, &error)) << error;
    const JsonValue *events = doc.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_EQ(events->type, JsonValue::Type::Array);

    // Both spans must be there as duration events carrying their ids.
    int requestEvents = 0;
    int runEvents = 0;
    for (const JsonValue &event : events->array) {
        const JsonValue *name = event.find("name");
        if (name == nullptr ||
            name->type != JsonValue::Type::String)
            continue;
        const JsonValue *args = event.find("args");
        if (name->str == "request" && args != nullptr &&
            args->find("trace") != nullptr)
            ++requestEvents;
        if (name->str == "run" && args != nullptr &&
            args->find("parent") != nullptr)
            ++runEvents;
    }
    EXPECT_EQ(requestEvents, 1);
    EXPECT_EQ(runEvents, 1);
}

} // namespace
} // namespace usfq
