/**
 * @file
 * Device-level sanity: the RCSJ junction emits flux-quantized ps
 * pulses, the JTL propagates fluxons, the SQUID stores one, and the
 * integrator buffer's ramp matches the paper's Fig. 11 story.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "analog/circuits.hh"
#include "analog/rsj.hh"
#include "analog/waveform.hh"

namespace usfq::analog
{
namespace
{

TEST(JunctionParams, DefaultsAreCriticallyDamped)
{
    const JunctionParams jp;
    EXPECT_NEAR(jp.betaC(), 1.0, 0.2);
    // Plasma frequency in the THz range: ps-scale switching.
    EXPECT_GT(jp.plasmaOmega(), 5e11);
    EXPECT_LT(jp.plasmaOmega(), 5e12);
}

TEST(Junction, SubcriticalBiasDoesNotSwitch)
{
    Junction jj;
    // Soft-started sub-critical bias: no switching, negligible voltage
    // once settled.
    jj.run(100e-12, 1e-14, [](double t) {
        return 0.8 * 100e-6 * std::min(1.0, t / 10e-12);
    });
    EXPECT_EQ(jj.fluxons(), 0);
    const auto &w = jj.trace();
    double late_peak = 0.0;
    for (std::size_t i = 0; i < w.t.size(); ++i)
        if (w.t[i] > 50e-12)
            late_peak = std::max(late_peak, std::fabs(w.v[i]));
    EXPECT_LT(late_peak, 5e-5);
}

TEST(Junction, OvercriticalBiasEmitsPulses)
{
    Junction jj;
    jj.run(100e-12, 1e-14,
           [](double) { return 1.5 * 100e-6; });
    EXPECT_GT(jj.fluxons(), 3);
    // mV-scale pulse amplitude (paper Fig. 1b).
    EXPECT_GT(jj.trace().peakAbs(), 1e-4);
}

TEST(Junction, PulseAreaIsOneFluxQuantum)
{
    // Drive a single 2*pi slip with a short pulse over sub-critical
    // bias; the voltage-time area must be Phi0.
    Junction jj;
    jj.run(60e-12, 1e-14, [](double t) {
        double i = 0.7 * 100e-6 * std::min(1.0, t / 10e-12);
        if (t > 20e-12 && t < 26e-12)
            i += 0.6 * 100e-6;
        return i;
    });
    EXPECT_EQ(jj.fluxons(), 1);
    // Integrate after the bias has settled: the single 2*pi slip
    // carries exactly one flux quantum.
    EXPECT_NEAR(jj.trace().integral(15e-12, 60e-12), kPhi0,
                0.05 * kPhi0);
}

TEST(Junction, PulseWidthIsPicoseconds)
{
    Junction jj;
    jj.run(60e-12, 1e-14, [](double t) {
        double i = 0.7 * 100e-6 * std::min(1.0, t / 10e-12);
        if (t > 20e-12 && t < 26e-12)
            i += 0.6 * 100e-6;
        return i;
    });
    // FWHM: count samples above half peak.
    const auto &w = jj.trace();
    const double half = w.peakAbs() / 2;
    std::size_t above = 0;
    for (double v : w.v)
        above += v > half;
    const double fwhm = static_cast<double>(above) * 1e-14;
    EXPECT_GT(fwhm, 0.3e-12);
    EXPECT_LT(fwhm, 6e-12);
}

TEST(Junction, ResetRestoresGroundState)
{
    Junction jj;
    jj.run(50e-12, 1e-14, [](double) { return 2e-4; });
    ASSERT_GT(jj.fluxons(), 0);
    jj.reset();
    EXPECT_EQ(jj.fluxons(), 0);
    EXPECT_DOUBLE_EQ(jj.voltage(), 0.0);
    EXPECT_TRUE(jj.trace().t.empty());
}

// --- JTL -----------------------------------------------------------------------

TEST(JtlChain, FluxonPropagatesDownTheLine)
{
    JtlChain jtl(5);
    jtl.runWithInputPulse(1.5 * 100e-6, 5e-12, 20e-12, 200e-12);
    for (int i = 0; i < jtl.size(); ++i)
        EXPECT_EQ(jtl.fluxons(i), 1) << "junction " << i;
    // Arrival times strictly increase along the chain.
    for (int i = 1; i < jtl.size(); ++i)
        EXPECT_GT(jtl.arrivalTime(i), jtl.arrivalTime(i - 1));
}

TEST(JtlChain, PerStageDelayIsPicoseconds)
{
    JtlChain jtl(6);
    jtl.runWithInputPulse(1.5 * 100e-6, 5e-12, 20e-12, 300e-12);
    const double hop =
        (jtl.arrivalTime(5) - jtl.arrivalTime(1)) / 4.0;
    EXPECT_GT(hop, 0.5e-12);
    EXPECT_LT(hop, 15e-12);
}

TEST(JtlChain, NoInputNoSwitching)
{
    JtlChain jtl(4);
    jtl.runWithInputPulse(0.0, 5e-12, 20e-12, 100e-12);
    for (int i = 0; i < jtl.size(); ++i)
        EXPECT_EQ(jtl.fluxons(i), 0);
}

// --- SQUID -----------------------------------------------------------------------

TEST(SquidLoop, SetStoresOneFluxon)
{
    SquidLoop squid;
    squid.run(100e-12, {30e-12}, {});
    EXPECT_EQ(squid.storedFluxons(), 1);
    EXPECT_GT(squid.loopCurrent(), 0.0);
}

TEST(SquidLoop, SetThenResetRestoresState)
{
    SquidLoop squid;
    squid.run(200e-12, {30e-12}, {120e-12});
    EXPECT_EQ(squid.storedFluxons(), 0);
    // The reset kicks J2: an output pulse appears (paper Fig. 1c).
    EXPECT_GT(squid.outputTrace().peakAbs(), 1e-4);
}

TEST(SquidLoop, IdleLoopStaysQuiet)
{
    SquidLoop squid;
    squid.run(100e-12, {}, {});
    EXPECT_EQ(squid.storedFluxons(), 0);
    EXPECT_LT(squid.outputTrace().peakAbs(), 5e-5);
}

// --- PulseIntegrator -----------------------------------------------------------

TEST(PulseIntegrator, DelaysByExactlyOneEpoch)
{
    const int bits = 6;
    const double slot = 20e-12;
    PulseIntegrator integ(bits, slot);
    const double t_in = 7 * slot;
    integ.run(t_in);
    EXPECT_NEAR(integ.outputTime(), t_in + integ.epoch(),
                slot * 0.51);
}

TEST(PulseIntegrator, PeakCurrentIsComparatorIc)
{
    PulseIntegrator integ(8, 20e-12, 100e-6);
    integ.run(0.0);
    EXPECT_NEAR(integ.peakCurrent(), 100e-6, 1e-6);
}

TEST(PulseIntegrator, InductanceScalesWithResolution)
{
    // L = 2^(B-1) Phi0 / Ic: doubles per extra bit (paper: inductance
    // grows with bits while the JJ count stays constant).
    PulseIntegrator i8(8, 20e-12), i9(9, 20e-12);
    EXPECT_NEAR(i9.inductance() / i8.inductance(), 2.0, 1e-9);
}

TEST(PulseIntegrator, RampIsMonotoneUpThenDown)
{
    PulseIntegrator integ(4, 20e-12);
    integ.run(3 * 20e-12);
    const auto &w = integ.inductorCurrent();
    const auto peak_it =
        std::max_element(w.v.begin(), w.v.end());
    for (auto it = w.v.begin(); it + 1 < peak_it; ++it)
        EXPECT_LE(*it, *(it + 1));
    for (auto it = peak_it; it + 1 < w.v.end(); ++it)
        EXPECT_GE(*it, *(it + 1));
}

// --- waveform rendering -------------------------------------------------------

TEST(WaveformRender, PulseAreaIsPhi0)
{
    const auto w = renderPulseTrain({100 * usfq::kPicosecond},
                                    200 * usfq::kPicosecond, 20);
    EXPECT_NEAR(w.integral(), kPhi0, 0.02 * kPhi0);
}

TEST(WaveformRender, TwoPulsesTwoPeaks)
{
    const auto w = renderPulseTrain(
        {50 * usfq::kPicosecond, 150 * usfq::kPicosecond},
        250 * usfq::kPicosecond, 20);
    EXPECT_NEAR(w.integral(), 2 * kPhi0, 0.04 * kPhi0);
    // Valley between the pulses returns to ~0.
    double mid = 0.0;
    for (std::size_t i = 0; i < w.t.size(); ++i)
        if (std::fabs(w.t[i] - 100e-12) < 2e-12)
            mid = std::max(mid, w.v[i]);
    EXPECT_LT(mid, w.peakAbs() * 0.01);
}

TEST(WaveformRender, AsciiPlotProducesOutput)
{
    std::ostringstream os;
    const auto w = renderPulseTrain({10 * usfq::kPicosecond},
                                    50 * usfq::kPicosecond, 20);
    printAscii(os, {{"test", w}}, 60, 4);
    EXPECT_NE(os.str().find("test"), std::string::npos);
    EXPECT_NE(os.str().find('#'), std::string::npos);
}

} // namespace
} // namespace usfq::analog
