/**
 * @file
 * Determinism tests: the properties that make simulations bit-exact.
 *
 *  (a) Re-running the same netlist (including its stochastic fault
 *      injectors) reproduces the pulse trace tick for tick.
 *  (b) A sweep gives bit-identical results at 1 thread and at many
 *      threads: parallelism changes wall-clock time, nothing else.
 *  (c) Same-tick events execute in scheduling order, including events
 *      scheduled from within callbacks and across run(until) windows.
 */

#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "core/encoding.hh"
#include "func/batch.hh"
#include "func/components.hh"
#include "sim/event_queue.hh"
#include "sim/netlist.hh"
#include "sim/sweep.hh"
#include "sim/trace.hh"
#include "sfq/faults.hh"
#include "sfq/sources.hh"
#include "util/random.hh"

namespace usfq
{
namespace
{

/**
 * A small stochastic netlist: a dense stream through a lossy, jittery
 * wire.  Returns the exact output pulse times.
 */
std::vector<Tick>
runFaultyWire(std::uint64_t seed)
{
    const EpochConfig cfg(8);
    Netlist nl;
    auto &src = nl.create<PulseSource>("src");
    auto &fi = nl.create<FaultInjector>(
        "fi", FaultConfig{.dropProbability = 0.2,
                          .jitterSigmaPs = 1.5,
                          .seed = seed});
    PulseTrace out;
    src.out.connect(fi.in);
    fi.out.connect(out.input());
    src.pulsesAt(cfg.streamTimes(200));
    nl.queue().run();
    return out.times();
}

TEST(Determinism, SameNetlistSameTrace)
{
    const auto first = runFaultyWire(1234);
    const auto second = runFaultyWire(1234);
    EXPECT_FALSE(first.empty());
    EXPECT_EQ(first, second);
}

TEST(Determinism, DifferentSeedsDiffer)
{
    // Sanity: the injector really is stochastic, so (a) is not passing
    // vacuously.
    EXPECT_NE(runFaultyWire(1), runFaultyWire(2));
}

TEST(Determinism, SweepIdenticalAcrossThreadCounts)
{
    const std::size_t shards = 16;
    auto shard = [](const ShardContext &ctx) {
        return runFaultyWire(ctx.seed);
    };
    const auto serial =
        runSweep(shards, shard, SweepOptions{.threads = 1});
    const auto parallel =
        runSweep(shards, shard, SweepOptions{.threads = 8});
    ASSERT_EQ(serial.size(), shards);
    EXPECT_EQ(serial, parallel);
}

/**
 * The batched-sweep leg of contract (b): the same functional sweep is
 * bit-identical whether batching is off (plain runSweep), coalesced at
 * B=8, or at B=64 -- at 1 thread and at many.  Lane seeds derive only
 * from the item index, so the grouping must be invisible.
 */
TEST(Determinism, SweepIdenticalAcrossBatchWidths)
{
    const std::size_t items = 200;
    const EpochConfig cfg(6);
    constexpr int kElems = 6;
    auto drawOperands = [&](std::uint64_t seed) {
        Rng rng(seed);
        std::array<int, 2 * kElems> ops;
        for (auto &v : ops)
            v = static_cast<int>(rng.uniformInt(0, cfg.nmax()));
        return ops;
    };
    // Batching off: one item per shard through the scalar model.
    const auto off = runSweep(
        items,
        [&](const ShardContext &ctx) {
            const auto ops = drawOperands(ctx.seed);
            Netlist nl;
            auto &dpu = nl.create<func::DotProductUnit>(
                "dpu", kElems, DpuMode::Bipolar);
            return dpu.evaluate(
                cfg,
                std::vector<int>(ops.begin(), ops.begin() + kElems),
                std::vector<int>(ops.begin() + kElems, ops.end()));
        },
        SweepOptions{.threads = 1});
    ASSERT_EQ(off.size(), items);
    for (int width : {8, 64}) {
        for (int threads : {1, 4}) {
            SweepOptions opt;
            opt.threads = threads;
            opt.batch.width = width;
            const auto batched = runBatchedSweep(
                items,
                [&](const LaneGroupContext &ctx) {
                    const std::size_t lanes =
                        static_cast<std::size_t>(ctx.lanes);
                    std::vector<int> counts(kElems * lanes);
                    std::vector<int> ids(kElems * lanes);
                    for (std::size_t b = 0; b < lanes; ++b) {
                        const auto ops = drawOperands(ctx.seeds[b]);
                        for (int k = 0; k < kElems; ++k) {
                            counts[static_cast<std::size_t>(k) * lanes +
                                   b] = ops[static_cast<std::size_t>(k)];
                            ids[static_cast<std::size_t>(k) * lanes +
                                b] =
                                ops[static_cast<std::size_t>(k) +
                                    kElems];
                        }
                    }
                    Netlist nl;
                    auto &dpu = nl.create<func::DotProductUnit>(
                        "dpu", kElems, DpuMode::Bipolar);
                    WordArena arena;
                    std::vector<int> out(lanes);
                    dpu.evaluateBatch(cfg, counts, ids, out, arena);
                    return out;
                },
                opt);
            EXPECT_EQ(batched, off)
                << "width=" << width << " threads=" << threads;
        }
    }
}

TEST(Determinism, ShardSeedsAreStableAndDistinct)
{
    const auto s0 = shardSeed(42, 0);
    EXPECT_EQ(s0, shardSeed(42, 0)) << "seed must be a pure function";
    EXPECT_NE(s0, shardSeed(42, 1));
    EXPECT_NE(s0, shardSeed(43, 0));
}

TEST(Determinism, SameTickFifoAcrossManyTicks)
{
    EventQueue eq;
    std::vector<int> order;
    // Interleave scheduling across two ticks; within each tick the
    // execution order must equal the scheduling order.
    for (int i = 0; i < 50; ++i) {
        eq.schedule(100, [&order, i] { order.push_back(i); });
        eq.schedule(200, [&order, i] { order.push_back(100 + i); });
    }
    eq.run();
    ASSERT_EQ(order.size(), 100u);
    for (int i = 0; i < 50; ++i) {
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
        EXPECT_EQ(order[static_cast<std::size_t>(50 + i)], 100 + i);
    }
}

TEST(Determinism, CallbackScheduledSameTickRunsAfterPending)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(10, [&] {
        order.push_back(0);
        // Lands at the current tick, after the already-pending 1.
        eq.schedule(10, [&] { order.push_back(2); });
    });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(Determinism, OrderingSurvivesRunUntilWindows)
{
    // Exercises scheduling "behind" a far-future pending event after a
    // partial run — the rebase path of a bucketed queue.
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(1'000'000, [&] { order.push_back(4); });
    eq.run(500'000);
    EXPECT_EQ(order, (std::vector<int>{1}));
    eq.schedule(600'000, [&] { order.push_back(3); });
    eq.schedule(500'000, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
    EXPECT_EQ(eq.now(), 1'000'000);
}

TEST(Determinism, StepMatchesRunOrdering)
{
    auto record = [](bool use_step) {
        EventQueue eq;
        std::vector<int> order;
        for (int i = 0; i < 10; ++i)
            eq.schedule(i % 3, [&order, i] { order.push_back(i); });
        if (use_step) {
            while (eq.step()) {
            }
        } else {
            eq.run();
        }
        return order;
    };
    EXPECT_EQ(record(true), record(false));
}

} // namespace
} // namespace usfq
