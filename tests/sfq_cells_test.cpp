/**
 * @file
 * Behavioral contracts of every RSFQ cell (paper Table 1): the pulse
 * semantics each gate must obey for the U-SFQ blocks to work.
 */

#include <gtest/gtest.h>

#include "sim/netlist.hh"
#include "sim/trace.hh"
#include "sfq/cells.hh"
#include "sfq/sources.hh"

namespace usfq
{
namespace
{

/** Fixture providing a netlist, a source, and a trace. */
class CellTest : public ::testing::Test
{
  protected:
    Netlist nl;
    PulseTrace trace;

    void
    run()
    {
        nl.queue().run();
    }
};

// --- JTL -------------------------------------------------------------------

TEST_F(CellTest, JtlRepeatsEveryPulseWithDelay)
{
    auto &jtl = nl.create<Jtl>("jtl");
    auto &src = nl.create<PulseSource>("src");
    src.out.connect(jtl.in);
    jtl.out.connect(trace.input());
    src.pulsesAt({10 * kPicosecond, 20 * kPicosecond, 40 * kPicosecond});
    run();
    ASSERT_EQ(trace.count(), 3u);
    EXPECT_EQ(trace.times()[0], 10 * kPicosecond + cell::kJtlDelay);
}

// --- Splitter -----------------------------------------------------------------

TEST_F(CellTest, SplitterDuplicatesPulse)
{
    auto &sp = nl.create<Splitter>("sp");
    auto &src = nl.create<PulseSource>("src");
    PulseTrace t2;
    src.out.connect(sp.in);
    sp.out1.connect(trace.input());
    sp.out2.connect(t2.input());
    src.pulseAt(5 * kPicosecond);
    run();
    EXPECT_EQ(trace.count(), 1u);
    EXPECT_EQ(t2.count(), 1u);
    EXPECT_EQ(trace.times()[0], t2.times()[0]);
}

// --- Merger ---------------------------------------------------------------------

TEST_F(CellTest, MergerForwardsFromEitherInput)
{
    auto &m = nl.create<Merger>("m");
    auto &sa = nl.create<PulseSource>("sa");
    auto &sb = nl.create<PulseSource>("sb");
    sa.out.connect(m.inA);
    sb.out.connect(m.inB);
    m.out.connect(trace.input());
    sa.pulseAt(10 * kPicosecond);
    sb.pulseAt(50 * kPicosecond);
    run();
    EXPECT_EQ(trace.count(), 2u);
    EXPECT_EQ(m.collisions(), 0u);
}

TEST_F(CellTest, MergerLosesSimultaneousPulse)
{
    // Paper Fig. 5b: two pulses arriving together produce only one output.
    auto &m = nl.create<Merger>("m");
    auto &sa = nl.create<PulseSource>("sa");
    auto &sb = nl.create<PulseSource>("sb");
    sa.out.connect(m.inA);
    sb.out.connect(m.inB);
    m.out.connect(trace.input());
    sa.pulseAt(10 * kPicosecond);
    sb.pulseAt(10 * kPicosecond);
    run();
    EXPECT_EQ(trace.count(), 1u);
    EXPECT_EQ(m.collisions(), 1u);
}

TEST_F(CellTest, MergerLosesPulseInsideCollisionWindow)
{
    auto &m = nl.create<Merger>("m");
    auto &sa = nl.create<PulseSource>("sa");
    auto &sb = nl.create<PulseSource>("sb");
    sa.out.connect(m.inA);
    sb.out.connect(m.inB);
    m.out.connect(trace.input());
    sa.pulseAt(10 * kPicosecond);
    sb.pulseAt(10 * kPicosecond + cell::kMergerCollisionWindow);
    run();
    EXPECT_EQ(trace.count(), 1u);
}

TEST_F(CellTest, MergerAcceptsPulseJustOutsideWindow)
{
    auto &m = nl.create<Merger>("m");
    auto &sa = nl.create<PulseSource>("sa");
    auto &sb = nl.create<PulseSource>("sb");
    sa.out.connect(m.inA);
    sb.out.connect(m.inB);
    m.out.connect(trace.input());
    sa.pulseAt(10 * kPicosecond);
    sb.pulseAt(10 * kPicosecond + cell::kMergerCollisionWindow + 1);
    run();
    EXPECT_EQ(trace.count(), 2u);
}

TEST_F(CellTest, MergerResetClearsCollisionState)
{
    auto &m = nl.create<Merger>("m");
    auto &sa = nl.create<PulseSource>("sa");
    sa.out.connect(m.inA);
    m.out.connect(trace.input());
    sa.pulseAt(10 * kPicosecond);
    run();
    nl.resetAll();
    EXPECT_EQ(m.collisions(), 0u);
}

// --- DFF ---------------------------------------------------------------------

TEST_F(CellTest, DffStoresAndReadsDestructively)
{
    auto &dff = nl.create<Dff>("dff");
    auto &sd = nl.create<PulseSource>("sd");
    auto &sc = nl.create<PulseSource>("sc");
    sd.out.connect(dff.d);
    sc.out.connect(dff.clk);
    dff.q.connect(trace.input());
    sd.pulseAt(10 * kPicosecond);
    sc.pulseAt(20 * kPicosecond); // reads the stored 1
    sc.pulseAt(30 * kPicosecond); // loop now empty: no output
    run();
    EXPECT_EQ(trace.count(), 1u);
    EXPECT_FALSE(dff.state());
}

TEST_F(CellTest, DffClockWithoutDataIsSilent)
{
    auto &dff = nl.create<Dff>("dff");
    auto &sc = nl.create<PulseSource>("sc");
    sc.out.connect(dff.clk);
    dff.q.connect(trace.input());
    sc.pulsesAt({10 * kPicosecond, 20 * kPicosecond});
    run();
    EXPECT_EQ(trace.count(), 0u);
}

// --- DFF2 --------------------------------------------------------------------

TEST_F(CellTest, Dff2ReadsThroughEitherPort)
{
    auto &dff2 = nl.create<Dff2>("dff2");
    auto &sa = nl.create<PulseSource>("sa");
    auto &sc1 = nl.create<PulseSource>("sc1");
    auto &sc2 = nl.create<PulseSource>("sc2");
    PulseTrace t2;
    sa.out.connect(dff2.a);
    sc1.out.connect(dff2.c1);
    sc2.out.connect(dff2.c2);
    dff2.y1.connect(trace.input());
    dff2.y2.connect(t2.input());

    sa.pulseAt(10 * kPicosecond);
    sc1.pulseAt(20 * kPicosecond); // -> y1, resets
    sa.pulseAt(30 * kPicosecond);
    sc2.pulseAt(40 * kPicosecond); // -> y2, resets
    sc1.pulseAt(50 * kPicosecond); // empty: silent
    run();
    EXPECT_EQ(trace.count(), 1u);
    EXPECT_EQ(t2.count(), 1u);
}

// --- TFF ---------------------------------------------------------------------

TEST_F(CellTest, TffDividesByTwo)
{
    auto &tff = nl.create<Tff>("tff");
    auto &src = nl.create<PulseSource>("src");
    src.out.connect(tff.in);
    tff.out.connect(trace.input());
    for (int i = 1; i <= 8; ++i)
        src.pulseAt(i * 10 * kPicosecond);
    run();
    EXPECT_EQ(trace.count(), 4u);
}

TEST_F(CellTest, TffOddPulseCountRoundsDown)
{
    auto &tff = nl.create<Tff>("tff");
    auto &src = nl.create<PulseSource>("src");
    src.out.connect(tff.in);
    tff.out.connect(trace.input());
    for (int i = 1; i <= 7; ++i)
        src.pulseAt(i * 10 * kPicosecond);
    run();
    EXPECT_EQ(trace.count(), 3u);
    EXPECT_TRUE(tff.state()); // half a toggle left inside
}

// --- TFF2 ----------------------------------------------------------------------

TEST_F(CellTest, Tff2AlternatesOutputs)
{
    auto &tff2 = nl.create<Tff2>("tff2");
    auto &src = nl.create<PulseSource>("src");
    PulseTrace t2;
    src.out.connect(tff2.in);
    tff2.q1.connect(trace.input());
    tff2.q2.connect(t2.input());
    for (int i = 1; i <= 6; ++i)
        src.pulseAt(i * 30 * kPicosecond);
    run();
    EXPECT_EQ(trace.count(), 3u); // pulses 1, 3, 5
    EXPECT_EQ(t2.count(), 3u);    // pulses 2, 4, 6
    // q1 sees the odd pulses.
    EXPECT_EQ(trace.times()[0], 30 * kPicosecond + cell::kTff2Delay);
    EXPECT_EQ(t2.times()[0], 60 * kPicosecond + cell::kTff2Delay);
}

TEST_F(CellTest, Tff2ConservesPulses)
{
    auto &tff2 = nl.create<Tff2>("tff2");
    auto &src = nl.create<PulseSource>("src");
    PulseTrace t2;
    src.out.connect(tff2.in);
    tff2.q1.connect(trace.input());
    tff2.q2.connect(t2.input());
    for (int i = 1; i <= 11; ++i)
        src.pulseAt(i * 25 * kPicosecond);
    run();
    EXPECT_EQ(trace.count() + t2.count(), 11u);
    EXPECT_EQ(trace.count(), 6u);
}

// --- NDRO -----------------------------------------------------------------------

TEST_F(CellTest, NdroNonDestructiveRead)
{
    auto &ndro = nl.create<Ndro>("ndro");
    auto &ss = nl.create<PulseSource>("ss");
    auto &sc = nl.create<PulseSource>("sc");
    ss.out.connect(ndro.s);
    sc.out.connect(ndro.clk);
    ndro.q.connect(trace.input());
    ss.pulseAt(10 * kPicosecond);
    sc.pulsesAt({20 * kPicosecond, 30 * kPicosecond, 40 * kPicosecond});
    run();
    EXPECT_EQ(trace.count(), 3u); // read does not clear the loop
    EXPECT_TRUE(ndro.state());
}

TEST_F(CellTest, NdroResetStopsOutput)
{
    auto &ndro = nl.create<Ndro>("ndro");
    auto &ss = nl.create<PulseSource>("ss");
    auto &sr = nl.create<PulseSource>("sr");
    auto &sc = nl.create<PulseSource>("sc");
    ss.out.connect(ndro.s);
    sr.out.connect(ndro.r);
    sc.out.connect(ndro.clk);
    ndro.q.connect(trace.input());
    ss.pulseAt(10 * kPicosecond);
    sc.pulseAt(20 * kPicosecond);  // passes
    sr.pulseAt(25 * kPicosecond);  // reset
    sc.pulseAt(30 * kPicosecond);  // blocked
    run();
    EXPECT_EQ(trace.count(), 1u);
    EXPECT_FALSE(ndro.state());
}

TEST_F(CellTest, NdroPresetActsAsMemoryBit)
{
    auto &ndro = nl.create<Ndro>("ndro");
    auto &sc = nl.create<PulseSource>("sc");
    sc.out.connect(ndro.clk);
    ndro.q.connect(trace.input());
    ndro.preset(true);
    sc.pulseAt(10 * kPicosecond);
    run();
    EXPECT_EQ(trace.count(), 1u);
}

// --- Inverter -------------------------------------------------------------------

TEST_F(CellTest, InverterEmitsWhenNoData)
{
    auto &inv = nl.create<Inverter>("inv");
    auto &sc = nl.create<PulseSource>("sc");
    sc.out.connect(inv.clk);
    inv.q.connect(trace.input());
    sc.pulsesAt({10 * kPicosecond, 20 * kPicosecond});
    run();
    EXPECT_EQ(trace.count(), 2u);
    EXPECT_EQ(trace.times()[0], 10 * kPicosecond + cell::kInverterDelay);
}

TEST_F(CellTest, InverterSuppressedByData)
{
    auto &inv = nl.create<Inverter>("inv");
    auto &sd = nl.create<PulseSource>("sd");
    auto &sc = nl.create<PulseSource>("sc");
    sd.out.connect(inv.d);
    sc.out.connect(inv.clk);
    inv.q.connect(trace.input());
    sd.pulseAt(5 * kPicosecond);
    sc.pulseAt(10 * kPicosecond);  // suppressed
    sc.pulseAt(20 * kPicosecond);  // emits (no new data)
    sd.pulseAt(25 * kPicosecond);
    sc.pulseAt(30 * kPicosecond);  // suppressed
    run();
    EXPECT_EQ(trace.count(), 1u);
    EXPECT_EQ(trace.times()[0], 20 * kPicosecond + cell::kInverterDelay);
}

// --- BFF -----------------------------------------------------------------------

TEST_F(CellTest, BffTransitionEmitsOnQ)
{
    auto &bff = nl.create<Bff>("bff");
    auto &s = nl.create<PulseSource>("s");
    PulseTrace tq1, tnq1;
    s.out.connect(bff.s1);
    bff.q1.connect(tq1.input());
    bff.nq1.connect(tnq1.input());
    s.pulseAt(10 * kPicosecond); // 0 -> 1: q1
    s.pulseAt(40 * kPicosecond); // already 1: escapes at nq1
    run();
    EXPECT_EQ(tq1.count(), 1u);
    EXPECT_EQ(tnq1.count(), 1u);
    EXPECT_TRUE(bff.state());
}

TEST_F(CellTest, BffSecondSideResets)
{
    auto &bff = nl.create<Bff>("bff");
    auto &s = nl.create<PulseSource>("s");
    auto &r = nl.create<PulseSource>("r");
    PulseTrace tq2;
    s.out.connect(bff.s1);
    r.out.connect(bff.r2);
    bff.q2.connect(tq2.input());
    s.pulseAt(10 * kPicosecond);  // 0 -> 1
    r.pulseAt(40 * kPicosecond);  // 1 -> 0: q2 fires
    run();
    EXPECT_EQ(tq2.count(), 1u);
    EXPECT_FALSE(bff.state());
}

TEST_F(CellTest, BffIgnoresInputDuringDeadTime)
{
    // Paper case (iii): a pulse arriving while the quantizing loop is
    // transitioning is not registered.
    auto &bff = nl.create<Bff>("bff");
    auto &s = nl.create<PulseSource>("s");
    auto &r = nl.create<PulseSource>("r");
    s.out.connect(bff.s1);
    r.out.connect(bff.r2);
    s.pulseAt(10 * kPicosecond);
    r.pulseAt(10 * kPicosecond + cell::kBffDeadTime / 2); // inside dead time
    run();
    EXPECT_TRUE(bff.state()); // reset was ignored
    EXPECT_EQ(bff.ignoredInputs(), 1u);
}

TEST_F(CellTest, BffAcceptsInputAfterDeadTime)
{
    auto &bff = nl.create<Bff>("bff");
    auto &s = nl.create<PulseSource>("s");
    auto &r = nl.create<PulseSource>("r");
    s.out.connect(bff.s1);
    r.out.connect(bff.r2);
    s.pulseAt(10 * kPicosecond);
    r.pulseAt(10 * kPicosecond + cell::kBffDeadTime);
    run();
    EXPECT_FALSE(bff.state());
    EXPECT_EQ(bff.ignoredInputs(), 0u);
}

// --- FirstArrival / LastArrival ---------------------------------------------------

TEST_F(CellTest, FirstArrivalComputesRaceLogicMin)
{
    // Paper Fig. 2a: min(A=2, B=3) -> output at slot 2.
    auto &fa = nl.create<FirstArrival>("fa");
    auto &sa = nl.create<PulseSource>("sa");
    auto &sb = nl.create<PulseSource>("sb");
    sa.out.connect(fa.inA);
    sb.out.connect(fa.inB);
    fa.out.connect(trace.input());
    sa.pulseAt(2 * 100 * kPicosecond);
    sb.pulseAt(3 * 100 * kPicosecond);
    run();
    ASSERT_EQ(trace.count(), 1u);
    EXPECT_EQ(trace.times()[0],
              2 * 100 * kPicosecond + cell::kFirstArrivalDelay);
}

TEST_F(CellTest, LastArrivalComputesRaceLogicMax)
{
    auto &la = nl.create<LastArrival>("la");
    auto &sa = nl.create<PulseSource>("sa");
    auto &sb = nl.create<PulseSource>("sb");
    sa.out.connect(la.inA);
    sb.out.connect(la.inB);
    la.out.connect(trace.input());
    sa.pulseAt(200 * kPicosecond);
    sb.pulseAt(500 * kPicosecond);
    run();
    ASSERT_EQ(trace.count(), 1u);
    EXPECT_EQ(trace.times()[0],
              500 * kPicosecond + cell::kLastArrivalDelay);
}

TEST_F(CellTest, LastArrivalSilentWithOneInput)
{
    auto &la = nl.create<LastArrival>("la");
    auto &sa = nl.create<PulseSource>("sa");
    sa.out.connect(la.inA);
    la.out.connect(trace.input());
    sa.pulseAt(100 * kPicosecond);
    run();
    EXPECT_EQ(trace.count(), 0u);
}

// --- Mux / Demux --------------------------------------------------------------------

TEST_F(CellTest, DemuxRoutesBySelection)
{
    auto &dm = nl.create<Demux>("dm");
    auto &sd = nl.create<PulseSource>("sd");
    auto &ssel = nl.create<PulseSource>("ssel");
    PulseTrace t1;
    sd.out.connect(dm.in);
    ssel.out.connect(dm.sel1);
    dm.out0.connect(trace.input());
    dm.out1.connect(t1.input());
    sd.pulseAt(10 * kPicosecond);   // sel=0 -> out0
    ssel.pulseAt(20 * kPicosecond); // switch to out1
    sd.pulseAt(30 * kPicosecond);   // -> out1
    run();
    EXPECT_EQ(trace.count(), 1u);
    EXPECT_EQ(t1.count(), 1u);
}

TEST_F(CellTest, MuxPassesSelectedInputOnly)
{
    auto &mux = nl.create<Mux>("mux");
    auto &s0 = nl.create<PulseSource>("s0");
    auto &s1 = nl.create<PulseSource>("s1");
    auto &ssel = nl.create<PulseSource>("ssel");
    s0.out.connect(mux.in0);
    s1.out.connect(mux.in1);
    ssel.out.connect(mux.sel1);
    mux.out.connect(trace.input());
    s0.pulseAt(10 * kPicosecond);   // selected (sel=0): passes
    s1.pulseAt(15 * kPicosecond);   // deselected: blocked
    ssel.pulseAt(20 * kPicosecond);
    s1.pulseAt(30 * kPicosecond);   // now selected: passes
    s0.pulseAt(35 * kPicosecond);   // blocked
    run();
    EXPECT_EQ(trace.count(), 2u);
}

// --- Cell areas (paper Table 1 context) -------------------------------------------

TEST(CellArea, PaperQuotedCounts)
{
    EXPECT_EQ(cell::kMergerJJs, 5);        // Fig. 5 caption
    EXPECT_EQ(cell::kFirstArrivalJJs, 8);  // Section 2.2.1
}

TEST(CellArea, SwitchesPerOpIsSaneFraction)
{
    for (int jj = 2; jj <= 16; ++jj) {
        const int s = cell::switchesPerOp(jj);
        EXPECT_GE(s, 2);
        EXPECT_LE(s, jj);
    }
}

} // namespace
} // namespace usfq
