/**
 * @file
 * Engine facade + C ABI tests (src/api/, docs/service.md): the spec
 * vocabulary round-trips through JSON, the Session pipeline surfaces
 * lint/STA/run failures as Status values, results are bit-identical
 * across batch widths and sweep thread counts, and the whole
 * build -> elaborate -> STA -> run flow is drivable purely through
 * the exception-free C ABI (usfq.h) -- including its error paths,
 * which must come back as error codes, never as an abort.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "api/facade.hh"
#include "api/spec.hh"
#include "api/usfq.h"
#include "core/encoding.hh"
#include "util/logging.hh"

namespace usfq
{
namespace
{

api::NetlistSpec
dpuSpec()
{
    api::NetlistSpec spec;
    spec.kind = api::WorkloadKind::Dpu;
    spec.name = "dpu";
    spec.taps = 8;
    spec.bits = 5;
    spec.mode = DpuMode::Bipolar;
    return spec;
}

api::RunParams
functionalParams(int epochs = 12)
{
    api::RunParams params;
    params.backend = Backend::Functional;
    params.epochs = epochs;
    params.seed = 0xabcdULL;
    return params;
}

// --- spec / params vocabulary --------------------------------------------

TEST(ApiSpec, WorkloadKindNamesRoundTrip)
{
    for (const api::WorkloadKind kind :
         {api::WorkloadKind::Dpu, api::WorkloadKind::Pe,
          api::WorkloadKind::Fir, api::WorkloadKind::Inverter,
          api::WorkloadKind::Gen}) {
        api::WorkloadKind parsed;
        ASSERT_TRUE(
            api::parseWorkloadKind(api::workloadKindName(kind),
                                   parsed));
        EXPECT_EQ(parsed, kind);
    }
    api::WorkloadKind parsed;
    EXPECT_FALSE(api::parseWorkloadKind("nonsense", parsed));
}

TEST(ApiSpec, SpecJsonRoundTrip)
{
    api::NetlistSpec spec;
    spec.kind = api::WorkloadKind::Fir;
    spec.name = "lowpass";
    spec.taps = 3;
    spec.bits = 7;
    spec.mode = DpuMode::Unipolar;
    spec.coefficients = {0.25, 0.5, 0.25};
    spec.waiveUnwired = false;

    api::NetlistSpec back;
    std::string err;
    ASSERT_TRUE(api::specFromJson(api::specToJson(spec), back, &err))
        << err;
    EXPECT_EQ(back, spec);
}

TEST(ApiSpec, RunParamsJsonRoundTrip)
{
    api::RunParams params;
    params.backend = Backend::PulseLevel;
    params.epochs = 7;
    params.seed = 0x123456789abcdef0ULL;

    api::RunParams back;
    std::string err;
    ASSERT_TRUE(api::runParamsFromJson(api::runParamsToJson(params),
                                       back, &err))
        << err;
    EXPECT_EQ(back, params);
}

TEST(ApiSpec, ValidateRejectsOutOfRange)
{
    api::NetlistSpec spec = dpuSpec();
    spec.taps = 0;
    std::string err;
    EXPECT_FALSE(spec.validate(&err));
    EXPECT_NE(err.find("taps"), std::string::npos);

    api::RunParams params;
    params.batch = 8;
    params.backend = Backend::PulseLevel;
    EXPECT_FALSE(params.validate(&err));
    EXPECT_NE(err.find("batch"), std::string::npos);
}

TEST(ApiSpec, SpecHashSeparatesParameters)
{
    const api::NetlistSpec a = dpuSpec();
    api::NetlistSpec b = a;
    EXPECT_EQ(api::specHash(a), api::specHash(b));
    b.taps = a.taps + 1;
    EXPECT_NE(api::specHash(a), api::specHash(b));
}

TEST(ApiSpec, GenSpecJsonRoundTrip)
{
    api::NetlistSpec spec;
    spec.kind = api::WorkloadKind::Gen;
    spec.name = "gen";
    spec.gen.lanes = 16;
    spec.gen.bits = 6;
    spec.gen.clockPeriodPs = 20;
    spec.gen.tree = gen::TreeKind::Merger;
    spec.gen.shape = gen::LaneShape::Random;
    spec.gen.balance = gen::BalanceStyle::Register;
    spec.gen.shapeSeed = 42;

    api::NetlistSpec back;
    std::string err;
    ASSERT_TRUE(api::specFromJson(api::specToJson(spec), back, &err))
        << err;
    EXPECT_EQ(back, spec);

    // The generator parameters are part of the cache identity.
    api::NetlistSpec moved = spec;
    moved.gen.shapeSeed = 43;
    EXPECT_NE(api::specHash(spec), api::specHash(moved));
}

// --- session pipeline ----------------------------------------------------

TEST(ApiSession, DpuPipelineRuns)
{
    api::Session session(dpuSpec());
    ASSERT_EQ(session.build(), api::Status::Ok);
    ASSERT_EQ(session.elaborate(), api::Status::Ok);
    ASSERT_EQ(session.analyzeTiming(), api::Status::Ok)
        << session.lastError();
    ASSERT_NE(session.staReport(), nullptr);

    api::RunResult result;
    ASSERT_EQ(session.run(functionalParams(), result), api::Status::Ok)
        << session.lastError();
    EXPECT_EQ(result.counts.size(), 12u);
    EXPECT_GT(result.totalJJ, 0);
    EXPECT_FALSE(result.stats.empty());
}

TEST(ApiSession, RunIsDeterministic)
{
    const api::NetlistSpec spec = dpuSpec();
    const api::RunParams params = functionalParams();
    const api::RunResult a = api::runWorkload(spec, params);
    const api::RunResult b = api::runWorkload(spec, params);
    EXPECT_EQ(a.counts, b.counts);
    EXPECT_EQ(a.checksum, b.checksum);
    EXPECT_EQ(api::resultToJson(spec, params, a),
              api::resultToJson(spec, params, b));
}

TEST(ApiSession, ResultBitIdenticalAcrossBatchAndThreads)
{
    const api::NetlistSpec spec = dpuSpec();
    const api::RunParams base = functionalParams(16);
    const api::RunResult reference = api::runWorkload(spec, base);
    const std::string referenceJson =
        api::resultToJson(spec, base, reference);

    for (const int batch : {1, 3, 8}) {
        for (const int threads : {1, 4}) {
            api::RunParams params = base;
            params.batch = batch;
            params.threads = threads;
            const api::RunResult got = api::runWorkload(spec, params);
            EXPECT_EQ(got.counts, reference.counts)
                << "batch " << batch << " threads " << threads;
            EXPECT_EQ(got.checksum, reference.checksum);
            // The wire format deliberately omits batch/threads, so the
            // document is the same bytes too (cache transparency).
            EXPECT_EQ(api::resultToJson(spec, params, got),
                      referenceJson);
        }
    }
}

TEST(ApiSession, PulseAndFunctionalEnginesAgree)
{
    api::NetlistSpec spec = dpuSpec();
    spec.taps = 4;
    spec.bits = 4;
    api::RunParams params = functionalParams(4);
    const api::RunResult functional = api::runWorkload(spec, params);
    params.backend = Backend::PulseLevel;
    const api::RunResult pulse = api::runWorkload(spec, params);
    EXPECT_EQ(functional.counts, pulse.counts);
    EXPECT_EQ(functional.totalJJ, pulse.totalJJ);
}

TEST(ApiSession, UnwaivedLintSurfacesAsLintError)
{
    api::NetlistSpec spec = dpuSpec();
    spec.waiveUnwired = false;
    api::Session session(spec);
    EXPECT_EQ(session.elaborate(), api::Status::LintError);
    EXPECT_FALSE(session.findings().empty());
    EXPECT_FALSE(session.lastError().empty());
}

TEST(ApiSession, OverclockedInverterSurfacesAsStaError)
{
    api::NetlistSpec spec;
    spec.kind = api::WorkloadKind::Inverter;
    spec.name = "inv";
    spec.clockPeriodPs = 5.0; // below the 9 ps inverter recovery
    spec.clockCount = 16;
    api::Session session(spec);
    ASSERT_EQ(session.elaborate(), api::Status::Ok)
        << session.lastError();
    EXPECT_EQ(session.analyzeTiming(), api::Status::StaError);
    ASSERT_NE(session.staReport(), nullptr);
    EXPECT_FALSE(session.lastError().empty());
}

TEST(ApiSession, GenWorkloadRunsOnBothEngines)
{
    api::NetlistSpec spec;
    spec.kind = api::WorkloadKind::Gen;
    spec.name = "gen";
    spec.gen.lanes = 8;
    spec.gen.bits = 4;
    spec.gen.clockPeriodPs = 20;
    spec.gen.tree = gen::TreeKind::Balancer;
    spec.gen.shape = gen::LaneShape::Skewed;

    api::Session session(spec);
    ASSERT_EQ(session.build(), api::Status::Ok)
        << session.lastError();
    ASSERT_EQ(session.elaborate(), api::Status::Ok)
        << session.lastError();
    // The balancing pass already aligned the lanes, so the checked
    // STA gate (with the by-design waivers) must hold.
    ASSERT_EQ(session.analyzeTiming(), api::Status::Ok)
        << session.lastError();

    api::RunParams params = functionalParams(6);
    const api::RunResult functional = api::runWorkload(spec, params);
    params.backend = Backend::PulseLevel;
    const api::RunResult pulse = api::runWorkload(spec, params);
    EXPECT_EQ(functional.counts, pulse.counts);
    EXPECT_EQ(functional.checksum, pulse.checksum);
    EXPECT_EQ(functional.totalJJ, pulse.totalJJ);
}

TEST(ApiSession, GenInfeasibleSpecIsInvalidArg)
{
    api::NetlistSpec spec;
    spec.kind = api::WorkloadKind::Gen;
    spec.name = "gen";
    spec.gen.lanes = 4;
    spec.gen.bits = 4;
    spec.gen.tree = gen::TreeKind::Balancer;
    spec.gen.clockPeriodPs = 10; // below the 12 ps balancer dead time

    api::Session session(spec);
    EXPECT_EQ(session.build(), api::Status::InvalidArg);
    EXPECT_NE(session.lastError().find("balancing"),
              std::string::npos)
        << session.lastError();
}

TEST(ApiSession, ContentHashSeparatesTopologies)
{
    api::Session a(dpuSpec());
    api::Session b(dpuSpec());
    std::uint64_t ha = 0;
    std::uint64_t hb = 0;
    ASSERT_EQ(a.contentHash(ha), api::Status::Ok);
    ASSERT_EQ(b.contentHash(hb), api::Status::Ok);
    EXPECT_EQ(ha, hb);

    api::NetlistSpec wider = dpuSpec();
    wider.taps = 9;
    api::Session c(wider);
    std::uint64_t hc = 0;
    ASSERT_EQ(c.contentHash(hc), api::Status::Ok);
    EXPECT_NE(hc, ha);
}

// --- the C ABI -----------------------------------------------------------

TEST(ApiAbi, VersionAndStatusNames)
{
    EXPECT_EQ(usfq_abi_version(), USFQ_ABI_VERSION);
    EXPECT_STREQ(usfq_status_name(USFQ_OK), "ok");
    EXPECT_STREQ(usfq_status_name(USFQ_ERR_LINT), "lint_error");
    EXPECT_STREQ(usfq_status_name(12345), "?");
}

TEST(ApiAbi, RoundTripMatchesFacade)
{
    const api::NetlistSpec spec = dpuSpec();
    const api::RunParams params = functionalParams();

    usfq_engine *engine = nullptr;
    ASSERT_EQ(usfq_engine_create(api::specToJson(spec).c_str(),
                                 &engine),
              USFQ_OK);
    ASSERT_NE(engine, nullptr);
    EXPECT_EQ(usfq_engine_elaborate(engine), USFQ_OK)
        << usfq_engine_last_error(engine);
    EXPECT_EQ(usfq_engine_analyze_timing(engine), USFQ_OK)
        << usfq_engine_last_error(engine);

    uint64_t hash = 0;
    EXPECT_EQ(usfq_engine_hash(engine, &hash), USFQ_OK);
    EXPECT_NE(hash, 0u);

    char *json = nullptr;
    ASSERT_EQ(usfq_engine_run(engine,
                              api::runParamsToJson(params).c_str(),
                              &json),
              USFQ_OK)
        << usfq_engine_last_error(engine);
    ASSERT_NE(json, nullptr);

    // The ABI's result document is the same bytes the facade emits.
    const api::RunResult direct = api::runWorkload(spec, params);
    EXPECT_EQ(std::string(json),
              api::resultToJson(spec, params, direct));
    usfq_string_free(json);
    usfq_engine_destroy(engine);
}

TEST(ApiAbi, LintFailureIsAnErrorCodeNotAnAbort)
{
    api::NetlistSpec spec = dpuSpec();
    spec.waiveUnwired = false;

    usfq_engine *engine = nullptr;
    ASSERT_EQ(usfq_engine_create(api::specToJson(spec).c_str(),
                                 &engine),
              USFQ_OK);
    EXPECT_EQ(usfq_engine_elaborate(engine), USFQ_ERR_LINT);
    EXPECT_STRNE(usfq_engine_last_error(engine), "");

    char *findings = nullptr;
    ASSERT_EQ(usfq_engine_findings(engine, &findings), USFQ_OK);
    ASSERT_NE(findings, nullptr);
    EXPECT_NE(std::string(findings).find("dangling-input"),
              std::string::npos);
    usfq_string_free(findings);
    usfq_engine_destroy(engine);
}

TEST(ApiAbi, StaFailureIsAnErrorCodeNotAnAbort)
{
    api::NetlistSpec spec;
    spec.kind = api::WorkloadKind::Inverter;
    spec.name = "inv";
    spec.clockPeriodPs = 5.0;
    spec.clockCount = 16;

    usfq_engine *engine = nullptr;
    ASSERT_EQ(usfq_engine_create(api::specToJson(spec).c_str(),
                                 &engine),
              USFQ_OK);
    ASSERT_EQ(usfq_engine_elaborate(engine), USFQ_OK)
        << usfq_engine_last_error(engine);
    EXPECT_EQ(usfq_engine_analyze_timing(engine), USFQ_ERR_STA);
    EXPECT_STRNE(usfq_engine_last_error(engine), "");
    usfq_engine_destroy(engine);
}

TEST(ApiAbi, MalformedJsonIsParseError)
{
    usfq_engine *engine = nullptr;
    EXPECT_EQ(usfq_engine_create("this is not json", &engine),
              USFQ_ERR_PARSE);
    EXPECT_EQ(engine, nullptr);
}

TEST(ApiAbi, OutOfRangeSpecIsInvalidArg)
{
    usfq_engine *engine = nullptr;
    EXPECT_EQ(usfq_engine_create(
                  R"({"kind": "dpu", "name": "d", "taps": 0})",
                  &engine),
              USFQ_ERR_INVALID_ARG);
    EXPECT_EQ(engine, nullptr);
}

TEST(ApiAbi, NullArgumentsAreInvalidArg)
{
    EXPECT_EQ(usfq_engine_create(nullptr, nullptr),
              USFQ_ERR_INVALID_ARG);
    EXPECT_EQ(usfq_engine_elaborate(nullptr), USFQ_ERR_INVALID_ARG);
    EXPECT_EQ(usfq_engine_hash(nullptr, nullptr),
              USFQ_ERR_INVALID_ARG);
    EXPECT_EQ(usfq_engine_run(nullptr, nullptr, nullptr),
              USFQ_ERR_INVALID_ARG);
    usfq_engine_destroy(nullptr); // must be a safe no-op
    usfq_string_free(nullptr);    // likewise
}

TEST(ApiAbi, UnsupportedPulseVariantIsUnsupported)
{
    // The pulse-level FIR harness is unipolar-only; asking for a
    // bipolar FIR on the pulse engine must come back Unsupported.
    api::NetlistSpec spec;
    spec.kind = api::WorkloadKind::Fir;
    spec.name = "fir";
    spec.taps = 3;
    spec.bits = 5;
    spec.mode = DpuMode::Bipolar;

    usfq_engine *engine = nullptr;
    ASSERT_EQ(usfq_engine_create(api::specToJson(spec).c_str(),
                                 &engine),
              USFQ_OK);
    api::RunParams params = functionalParams(4);
    params.backend = Backend::PulseLevel;
    char *json = nullptr;
    EXPECT_EQ(usfq_engine_run(engine,
                              api::runParamsToJson(params).c_str(),
                              &json),
              USFQ_ERR_UNSUPPORTED);
    EXPECT_EQ(json, nullptr);
    usfq_engine_destroy(engine);
}

} // namespace
} // namespace usfq
