/**
 * @file
 * Pulse-level tests of the dot-product unit (paper §5.3): unipolar and
 * bipolar dot products against the counting model, area scaling
 * (Fig. 16), and robustness of the counting tree under full activity.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/dpu.hh"
#include "sim/trace.hh"
#include "sfq/sources.hh"
#include "util/random.hh"

namespace usfq
{
namespace
{

/** Slot width satisfying slot >= 2*(3*log2(L)+1) for L up to 64. */
constexpr Tick kSlot = 40 * kPicosecond;

Tick
setLag(int length)
{
    int depth = 0, n = 1;
    while (n < length) {
        n <<= 1;
        ++depth;
    }
    return static_cast<Tick>(depth) * 3 * kPicosecond;
}

/** Run one epoch on a DPU netlist; return the output pulse count. */
int
runDpu(const EpochConfig &cfg, DpuMode mode,
       const std::vector<int> &streams, const std::vector<int> &ids)
{
    const int length = static_cast<int>(streams.size());
    Netlist nl;
    auto &dpu = nl.create<DotProductUnit>("dpu", length, mode);
    auto &src_e = nl.create<PulseSource>("e");
    auto &src_clk = nl.create<PulseSource>("clk");
    PulseTrace out;
    src_e.out.connect(dpu.epochIn());
    if (mode == DpuMode::Bipolar)
        src_clk.out.connect(dpu.clkIn());
    dpu.out().connect(out.input());

    std::vector<PulseSource *> rl_srcs, st_srcs;
    for (int i = 0; i < length; ++i) {
        auto &r = nl.create<PulseSource>("a" + std::to_string(i));
        auto &s = nl.create<PulseSource>("b" + std::to_string(i));
        r.out.connect(dpu.rlIn(i));
        s.out.connect(dpu.streamIn(i));
        rl_srcs.push_back(&r);
        st_srcs.push_back(&s);
    }

    const Tick t0 = 0;
    const Tick rl_off = setLag(length) + 1 * kPicosecond;
    src_e.pulseAt(t0);
    if (mode == DpuMode::Bipolar)
        src_clk.pulsesAt(BipolarMultiplier::gridClockTimes(cfg, t0));
    for (int i = 0; i < length; ++i) {
        rl_srcs[static_cast<std::size_t>(i)]->pulseAt(
            t0 + rl_off +
            cfg.rlTime(ids[static_cast<std::size_t>(i)]));
        st_srcs[static_cast<std::size_t>(i)]->pulsesAt(
            cfg.streamTimes(streams[static_cast<std::size_t>(i)], t0));
    }
    nl.queue().run();
    return static_cast<int>(out.count());
}

// --- functional correctness ---------------------------------------------------

TEST(DotProductUnit, UnipolarTwoElementExact)
{
    const EpochConfig cfg(4, kSlot);
    // a = (0.5, 1.0), b = (1.0, 0.5): dot = 1.0 -> tree out = 16/2 = 8.
    const int count = runDpu(cfg, DpuMode::Unipolar, {16, 8}, {8, 16});
    EXPECT_EQ(count,
              DotProductUnit::expectedCount(cfg, DpuMode::Unipolar,
                                            {16, 8}, {8, 16}));
    EXPECT_NEAR(DotProductUnit::decode(cfg, DpuMode::Unipolar, 2, 2,
                                       static_cast<std::size_t>(count)),
                1.0, 2.0 / cfg.nmax() * 2);
}

TEST(DotProductUnit, UnipolarZeroInputs)
{
    const EpochConfig cfg(4, kSlot);
    EXPECT_EQ(runDpu(cfg, DpuMode::Unipolar, {0, 0, 0, 0},
                     {16, 16, 16, 16}),
              0);
    EXPECT_EQ(runDpu(cfg, DpuMode::Unipolar, {16, 16, 16, 16},
                     {0, 0, 0, 0}),
              0);
}

class DpuSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(DpuSweep, UnipolarMatchesCountingModel)
{
    const int length = GetParam();
    const EpochConfig cfg(5, kSlot);
    Rng rng(600 + length);
    for (int trial = 0; trial < 6; ++trial) {
        std::vector<int> streams, ids;
        for (int i = 0; i < length; ++i) {
            streams.push_back(
                static_cast<int>(rng.uniformInt(0, cfg.nmax())));
            ids.push_back(
                static_cast<int>(rng.uniformInt(0, cfg.nmax())));
        }
        const int expect = DotProductUnit::expectedCount(
            cfg, DpuMode::Unipolar, streams, ids);
        const int got = runDpu(cfg, DpuMode::Unipolar, streams, ids);
        EXPECT_EQ(got, expect)
            << "length=" << length << " trial=" << trial;
    }
}

INSTANTIATE_TEST_SUITE_P(Lengths, DpuSweep,
                         ::testing::Values(2, 4, 8, 16));

TEST(DotProductUnit, BipolarSignRules)
{
    const EpochConfig cfg(4, kSlot);
    const int n = cfg.nmax();
    // (+1).(+1) over two elements: dot = 2.
    int c = runDpu(cfg, DpuMode::Bipolar, {n, n}, {n, n});
    EXPECT_NEAR(DotProductUnit::decode(cfg, DpuMode::Bipolar, 2, 2,
                                       static_cast<std::size_t>(c)),
                2.0, 0.4);
    // (+1).(-1): dot = -2.
    c = runDpu(cfg, DpuMode::Bipolar, {n, n}, {0, 0});
    EXPECT_NEAR(DotProductUnit::decode(cfg, DpuMode::Bipolar, 2, 2,
                                       static_cast<std::size_t>(c)),
                -2.0, 0.4);
}

TEST(DotProductUnit, BipolarRandomDotProducts)
{
    const EpochConfig cfg(6, kSlot);
    Rng rng(77);
    for (int trial = 0; trial < 5; ++trial) {
        const int length = 4;
        std::vector<int> streams, ids;
        double dot = 0.0;
        for (int i = 0; i < length; ++i) {
            const double b = rng.uniform(-1.0, 1.0);
            const double a = rng.uniform(-1.0, 1.0);
            streams.push_back(cfg.streamCountOfBipolar(b));
            ids.push_back(cfg.rlIdOfBipolar(a));
            dot += cfg.decodeBipolar(static_cast<std::size_t>(
                       streams.back())) *
                   cfg.rlBipolar(ids.back());
        }
        const int c = runDpu(cfg, DpuMode::Bipolar, streams, ids);
        EXPECT_NEAR(DotProductUnit::decode(cfg, DpuMode::Bipolar,
                                           length, 4,
                                           static_cast<std::size_t>(c)),
                    dot, 16.0 / cfg.nmax() * 2)
            << "trial " << trial;
    }
}

TEST(DotProductUnit, NonPowerOfTwoLengthPads)
{
    const EpochConfig cfg(4, kSlot);
    Netlist nl;
    auto &dpu = nl.create<DotProductUnit>("dpu", 3, DpuMode::Unipolar);
    EXPECT_EQ(dpu.length(), 3);
    EXPECT_EQ(dpu.paddedLength(), 4);
    // Functional model agrees.
    const int c = DotProductUnit::expectedCount(
        cfg, DpuMode::Unipolar, {16, 16, 16}, {16, 16, 16});
    EXPECT_NEAR(DotProductUnit::decode(cfg, DpuMode::Unipolar, 3, 4,
                                       static_cast<std::size_t>(c)),
                3.0, 0.3);
}

// --- area (Fig. 16) ---------------------------------------------------------

TEST(DotProductUnit, AreaIndependentOfBits)
{
    Netlist nl;
    auto &dpu = nl.create<DotProductUnit>("d", 32, DpuMode::Bipolar);
    const int jj = dpu.jjCount();
    // Nothing in the netlist depends on the resolution.
    EXPECT_GT(jj, 0);
    auto &dpu2 = nl.create<DotProductUnit>("d2", 32, DpuMode::Bipolar);
    EXPECT_EQ(dpu2.jjCount(), jj);
}

TEST(DotProductUnit, AreaScalesWithLength)
{
    Netlist nl;
    auto &d32 = nl.create<DotProductUnit>("d32", 32, DpuMode::Bipolar);
    auto &d64 = nl.create<DotProductUnit>("d64", 64, DpuMode::Bipolar);
    auto &d256 =
        nl.create<DotProductUnit>("d256", 256, DpuMode::Bipolar);
    EXPECT_LT(d32.jjCount(), d64.jjCount());
    EXPECT_LT(d64.jjCount(), d256.jjCount());
    // Roughly linear: per-element cost ~ multiplier + balancer.
    const double per_elem = static_cast<double>(d256.jjCount()) / 256;
    EXPECT_GT(per_elem, 80.0);
    EXPECT_LT(per_elem, 130.0);
}

TEST(DotProductUnit, UnipolarCheaperThanBipolar)
{
    Netlist nl;
    auto &u = nl.create<DotProductUnit>("u", 16, DpuMode::Unipolar);
    auto &b = nl.create<DotProductUnit>("b", 16, DpuMode::Bipolar);
    EXPECT_LT(u.jjCount(), b.jjCount());
}

// --- stress -------------------------------------------------------------------

TEST(DotProductUnit, FullActivityLosesNoPulsesToCollisions)
{
    // All inputs at full rate: every multiplier passes every pulse and
    // all tree inputs fire coincidentally each slot.  The balancer tree
    // must divide without loss: count = nmax.
    const EpochConfig cfg(5, kSlot);
    const int length = 8;
    std::vector<int> streams(length, cfg.nmax());
    std::vector<int> ids(length, cfg.nmax());
    const int count = runDpu(cfg, DpuMode::Unipolar, streams, ids);
    EXPECT_EQ(count, cfg.nmax());
}

} // namespace
} // namespace usfq
