/**
 * @file
 * Tests of the extension components: the inhibit cell, the pulse
 * counter (stream-to-binary converter), the VCD exporter, and the
 * systolic PE chain.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/converters.hh"
#include "core/encoding.hh"
#include "core/pe.hh"
#include "sim/trace.hh"
#include "sim/vcd.hh"
#include "sfq/cells.hh"
#include "sfq/sources.hh"

namespace usfq
{
namespace
{

// --- Inhibit -----------------------------------------------------------------

TEST(Inhibit, PassesUntilInhibited)
{
    Netlist nl;
    auto &cell = nl.create<Inhibit>("inh");
    auto &sd = nl.create<PulseSource>("d");
    auto &si = nl.create<PulseSource>("i");
    PulseTrace out;
    sd.out.connect(cell.in);
    si.out.connect(cell.inh);
    cell.out.connect(out.input());

    sd.pulseAt(10 * kPicosecond);   // passes
    sd.pulseAt(20 * kPicosecond);   // passes
    si.pulseAt(25 * kPicosecond);   // inhibit
    sd.pulseAt(30 * kPicosecond);   // blocked
    sd.pulseAt(40 * kPicosecond);   // blocked
    nl.queue().run();
    EXPECT_EQ(out.count(), 2u);
    EXPECT_TRUE(cell.inhibited());
}

TEST(Inhibit, ResetRearms)
{
    Netlist nl;
    auto &cell = nl.create<Inhibit>("inh");
    auto &sd = nl.create<PulseSource>("d");
    auto &si = nl.create<PulseSource>("i");
    auto &sr = nl.create<PulseSource>("r");
    PulseTrace out;
    sd.out.connect(cell.in);
    si.out.connect(cell.inh);
    sr.out.connect(cell.rst);
    cell.out.connect(out.input());

    si.pulseAt(5 * kPicosecond);
    sd.pulseAt(10 * kPicosecond);  // blocked
    sr.pulseAt(20 * kPicosecond);  // re-arm
    sd.pulseAt(30 * kPicosecond);  // passes
    nl.queue().run();
    EXPECT_EQ(out.count(), 1u);
}

TEST(Inhibit, ImplementsRaceLogicLessThan)
{
    // inhibit(A by B) fires iff A < B: the temporal comparison
    // primitive of [51].
    auto first_beats = [](Tick a, Tick b) {
        Netlist nl;
        auto &cell = nl.create<Inhibit>("inh");
        auto &sa = nl.create<PulseSource>("a");
        auto &sb = nl.create<PulseSource>("b");
        PulseTrace out;
        sa.out.connect(cell.in);
        sb.out.connect(cell.inh);
        cell.out.connect(out.input());
        sa.pulseAt(a);
        sb.pulseAt(b);
        nl.queue().run();
        return out.count() == 1;
    };
    EXPECT_TRUE(first_beats(100, 200));
    EXPECT_FALSE(first_beats(200, 100));
}

// --- PulseCounter ----------------------------------------------------------------

TEST(PulseCounter, CountsExactly)
{
    Netlist nl;
    auto &ctr = nl.create<PulseCounter>("ctr", 8);
    auto &src = nl.create<PulseSource>("s");
    src.out.connect(ctr.in());
    for (int k = 0; k < 37; ++k)
        src.pulseAt((k + 1) * 20 * kPicosecond);
    nl.queue().run();
    EXPECT_EQ(ctr.value(), 37);
    EXPECT_EQ(ctr.totalPulses(), 37u);
    EXPECT_FALSE(ctr.overflowed());
}

TEST(PulseCounter, WrapsAndFlagsOverflow)
{
    Netlist nl;
    auto &ctr = nl.create<PulseCounter>("ctr", 4);
    auto &src = nl.create<PulseSource>("s");
    src.out.connect(ctr.in());
    for (int k = 0; k < 19; ++k)
        src.pulseAt((k + 1) * 20 * kPicosecond);
    nl.queue().run();
    EXPECT_EQ(ctr.value(), 3); // 19 mod 16
    EXPECT_TRUE(ctr.overflowed());
}

TEST(PulseCounter, ClearRestarts)
{
    Netlist nl;
    auto &ctr = nl.create<PulseCounter>("ctr", 6);
    auto &src = nl.create<PulseSource>("s");
    auto &clr = nl.create<PulseSource>("c");
    src.out.connect(ctr.in());
    clr.out.connect(ctr.clearIn);
    for (int k = 0; k < 9; ++k)
        src.pulseAt((k + 1) * 20 * kPicosecond);
    clr.pulseAt(300 * kPicosecond);
    for (int k = 0; k < 5; ++k)
        src.pulseAt(400 * kPicosecond + k * 20 * kPicosecond);
    nl.queue().run();
    EXPECT_EQ(ctr.value(), 5);
}

TEST(PulseCounter, DecodesAStreamToBinary)
{
    // The paper's FIR output conversion: count an epoch's stream.
    const EpochConfig cfg(6, 20 * kPicosecond);
    Netlist nl;
    auto &ctr = nl.create<PulseCounter>("ctr", 6);
    auto &src = nl.create<PulseSource>("s");
    src.out.connect(ctr.in());
    src.pulsesAt(cfg.streamTimes(cfg.streamCountOfUnipolar(0.625)));
    nl.queue().run();
    EXPECT_NEAR(cfg.decodeUnipolar(
                    static_cast<std::size_t>(ctr.value())),
                0.625, 1.0 / cfg.nmax());
}

// --- VCD export -----------------------------------------------------------------

TEST(Vcd, EmitsHeaderAndEdges)
{
    PulseTrace a("a"), b("b");
    a.input().receive(10 * kPicosecond);
    a.input().receive(50 * kPicosecond);
    b.input().receive(30 * kPicosecond);

    std::ostringstream os;
    writeVcd(os, {{"sig_a", &a}, {"sig_b", &b}});
    const std::string vcd = os.str();
    EXPECT_NE(vcd.find("$timescale 1fs $end"), std::string::npos);
    EXPECT_NE(vcd.find("$var wire 1 ! sig_a $end"), std::string::npos);
    EXPECT_NE(vcd.find("$var wire 1 \" sig_b $end"),
              std::string::npos);
    // Rising edge of sig_a at 10 ps = 10000 fs.
    EXPECT_NE(vcd.find("#10000\n1!"), std::string::npos);
    // Falling edge one pulse width later.
    EXPECT_NE(vcd.find("#11000\n0!"), std::string::npos);
}

TEST(Vcd, EmptyTracesStillValid)
{
    PulseTrace a("a");
    std::ostringstream os;
    writeVcd(os, {{"quiet", &a}});
    EXPECT_NE(os.str().find("$enddefinitions"), std::string::npos);
    EXPECT_NE(os.str().find("$dumpvars"), std::string::npos);
}

// --- PeChain -------------------------------------------------------------------

TEST(PeChain, AreaIsLengthTimes126PlusFanout)
{
    Netlist nl;
    const EpochConfig cfg(4, 30 * kPicosecond);
    auto &chain = nl.create<PeChain>("chain", 4, cfg);
    EXPECT_EQ(chain.length(), 4);
    EXPECT_EQ(chain.jjCount(), 4 * 126 + 3 * cell::kSplitterJJs);
}

TEST(PeChain, TwoStageSystolicMac)
{
    // Stage 0 computes (1.0 * 0.5)/2 = 0.25; stage 1 multiplies that
    // by a full stream: out = (0.25 * 1.0)/2 = 0.125 -> slot 2 of 16.
    const EpochConfig cfg(4, 30 * kPicosecond);
    Netlist nl;
    auto &chain = nl.create<PeChain>("chain", 2, cfg);
    auto &src_e = nl.create<PulseSource>("e");
    auto &src1 = nl.create<PulseSource>("x");
    auto &w0 = nl.create<PulseSource>("w0");
    auto &w1 = nl.create<PulseSource>("w1");
    PulseTrace out;
    src_e.out.connect(chain.epochIn());
    src1.out.connect(chain.rlIn());
    w0.out.connect(chain.streamIn(0));
    w1.out.connect(chain.streamIn(1));
    chain.out().connect(out.input());

    const Tick T = cfg.duration();
    // Epoch 0: PE0's operands.
    src_e.pulseAt(0);
    src1.pulseAt(8 * kPicosecond + cfg.rlTime(15));
    for (Tick t : cfg.streamTimes(8, 0))
        w0.pulseAt(t);
    // Epoch 1: PE1 consumes PE0's RL output with a full stream.
    src_e.pulseAt(T);
    for (Tick t : cfg.streamTimes(16, T))
        w1.pulseAt(t);
    // Epoch 2: conversion marker for PE1.
    src_e.pulseAt(2 * T);
    nl.queue().run();

    int slot = -1;
    for (Tick t : out.times())
        if (t > 2 * T)
            slot = cfg.rlSlotOf(t - 2 * T - 36 * kPicosecond -
                                EpochConfig::kRlPulseOffset);
    EXPECT_NEAR(slot, 2, 1);
}

} // namespace
} // namespace usfq
