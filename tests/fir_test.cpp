/**
 * @file
 * Tests of the U-SFQ FIR accelerator (paper §5.4): the functional
 * model against the double-precision golden filter, the error
 * mechanisms of the accuracy study, the performance/area models, and
 * the end-to-end pulse-level netlist.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "baseline/binary_models.hh"
#include "baseline/fixed_point_fir.hh"
#include "core/fir.hh"
#include "dsp/fir_design.hh"
#include "dsp/signal.hh"
#include "dsp/snr.hh"
#include "sim/trace.hh"
#include "sfq/sources.hh"

namespace usfq
{
namespace
{

constexpr double kFs = 20000.0;

std::vector<double>
paperInput(std::size_t n)
{
    // x(t): superposition of 1, 7, 8, 9 kHz sines (paper §5.4.1),
    // scaled to avoid overflow.
    return dsp::scaleToPeak(
        dsp::sineMixture({{1000.0}, {7000.0}, {8000.0}, {9000.0}}, kFs,
                         n),
        0.45);
}

// --- functional model vs golden reference --------------------------------------

TEST(UsfqFirModel, QuantizedCoefficientsCloseToDesign)
{
    const auto h = dsp::designLowpass(16, 2500.0, kFs);
    UsfqFirConfig cfg{.taps = 16, .bits = 10};
    UsfqFirModel fir(h, cfg);
    const auto q = fir.quantizedCoefficients();
    for (std::size_t k = 0; k < h.size(); ++k)
        EXPECT_NEAR(q[k], h[k], 2.0 / (1 << 10));
}

class FirModelResolution : public ::testing::TestWithParam<int>
{
};

TEST_P(FirModelResolution, TracksGoldenWithinQuantization)
{
    const int bits = GetParam();
    const auto h = dsp::designLowpass(16, 2500.0, kFs);
    const auto x = paperInput(2048);
    const auto golden = dsp::firFilter(h, x);

    UsfqFirConfig cfg{.taps = 16, .bits = bits};
    UsfqFirModel fir(h, cfg);
    const auto y = fir.filter(x);

    // Unary quantization: accuracy improves with resolution.  The
    // grid is coarser than binary fixed point (per-tap floor rounding
    // plus counting-tree rounding), so the vs-reference criterion only
    // bites at moderate resolutions; at low bits the quantization
    // noise is broadband and the tone criterion (the paper's measure)
    // is the meaningful one.
    const double snr = dsp::snrVsReference(y, golden, 16);
    if (bits >= 12) {
        EXPECT_GT(snr, 25.0);
    } else if (bits >= 10) {
        EXPECT_GT(snr, 9.0);
    }
    EXPECT_GT(dsp::snrOfTone(y, kFs, 1000.0), bits >= 8 ? 8.0 : 5.0);
}

INSTANTIATE_TEST_SUITE_P(Bits, FirModelResolution,
                         ::testing::Values(6, 8, 10, 12, 14, 16));

TEST(UsfqFirModel, RecoversTheOneKilohertzTone)
{
    // The headline experiment: recover 1 kHz from the 1/7/8/9 kHz mix.
    const auto h = dsp::designLowpass(16, 2500.0, kFs);
    const auto x = paperInput(4096);
    UsfqFirConfig cfg{.taps = 16, .bits = 16};
    UsfqFirModel fir(h, cfg);
    const auto y = fir.filter(x);
    // Our Hamming design attenuates the stop band more than the
    // paper's filter (their golden SNR is 25.7 dB, ours ~55 dB); the
    // recovered tone must dominate but stay below the golden bound.
    EXPECT_GT(dsp::snrOfTone(y, kFs, 1000.0), 20.0);
    EXPECT_LT(dsp::snrOfTone(y, kFs, 1000.0),
              dsp::snrOfTone(dsp::firFilter(h, x), kFs, 1000.0) + 3.0);
}

TEST(UsfqFirModel, SnrDegradesWithQuantization)
{
    // Paper: ~24 dB at 16 bits vs ~15 dB at 6 bits.
    const auto h = dsp::designLowpass(16, 2500.0, kFs);
    const auto x = paperInput(4096);
    UsfqFirModel hi(h, {.taps = 16, .bits = 16});
    UsfqFirModel lo(h, {.taps = 16, .bits = 6});
    const double snr_hi = dsp::snrOfTone(hi.filter(x), kFs, 1000.0);
    const double snr_lo = dsp::snrOfTone(lo.filter(x), kFs, 1000.0);
    EXPECT_GT(snr_hi, snr_lo + 3.0);
}

// --- the Fig. 19 error study ----------------------------------------------------

TEST(UsfqFirModel, PulseLossIsGraceful)
{
    // Error (i): 30% pulse-loss rate costs only a few dB (paper: 4 dB)
    // because every pulse has LSB weight.
    const auto h = dsp::designLowpass(16, 2500.0, kFs);
    const auto x = paperInput(4096);
    UsfqFirModel clean(h, {.taps = 16, .bits = 16});
    UsfqFirModel faulty(
        h, {.taps = 16, .bits = 16, .pulseLossRate = 0.30, .seed = 3});
    const double snr_clean = dsp::snrOfTone(clean.filter(x), kFs,
                                            1000.0);
    const double snr_faulty = dsp::snrOfTone(faulty.filter(x), kFs,
                                             1000.0);
    // Thinning adds a bounded noise floor: the tone must still
    // dominate by >25 dB even at a 30% loss rate.
    EXPECT_GT(snr_faulty, 25.0);
    EXPECT_LT(snr_faulty, snr_clean);
    // Composed with the paper's 25.7 dB golden filter, that floor
    // costs only a few dB -- the paper's "~4 dB at 30%" claim.
    const double paper_golden = 25.7;
    const double composed =
        -10.0 * std::log10(std::pow(10.0, -paper_golden / 10.0) +
                           std::pow(10.0, -snr_faulty / 10.0));
    EXPECT_GT(composed, paper_golden - 6.0);
}

TEST(UsfqFirModel, RlJitterIsGraceful)
{
    // Error (iii) behaves like (i).
    const auto h = dsp::designLowpass(16, 2500.0, kFs);
    const auto x = paperInput(4096);
    UsfqFirModel clean(h, {.taps = 16, .bits = 16});
    UsfqFirModel faulty(
        h, {.taps = 16, .bits = 16, .rlJitterRate = 0.30, .seed = 5});
    const double drop = dsp::snrOfTone(clean.filter(x), kFs, 1000.0) -
                        dsp::snrOfTone(faulty.filter(x), kFs, 1000.0);
    EXPECT_LT(drop, 8.0);
}

TEST(UsfqFirModel, RlLossIsSevere)
{
    // Error (ii): losing the RL pulse corrupts the whole operand
    // ("all the information is concentrated in a single pulse").
    const auto h = dsp::designLowpass(16, 2500.0, kFs);
    const auto x = paperInput(4096);
    UsfqFirModel clean(h, {.taps = 16, .bits = 16});
    UsfqFirModel faulty(
        h, {.taps = 16, .bits = 16, .rlLossRate = 0.30, .seed = 7});
    const double drop = dsp::snrOfTone(clean.filter(x), kFs, 1000.0) -
                        dsp::snrOfTone(faulty.filter(x), kFs, 1000.0);
    EXPECT_GT(drop, 8.0);
}

TEST(UsfqFirModel, UnaryBeatsBinaryUnderErrors)
{
    // The headline robustness claim: at a 30% error rate the binary
    // filter collapses while U-SFQ loses only a few dB.
    const auto h = dsp::designLowpass(16, 2500.0, kFs);
    const auto x = paperInput(4096);

    UsfqFirModel unary(
        h, {.taps = 16, .bits = 16, .pulseLossRate = 0.30, .seed = 11});
    baseline::FixedPointFir binary(h, 16);
    binary.setErrorRate(0.30, 11);

    const double snr_unary =
        dsp::snrOfTone(unary.filter(x), kFs, 1000.0);
    const double snr_binary =
        dsp::snrOfTone(binary.filter(x), kFs, 1000.0);
    EXPECT_GT(snr_unary, snr_binary + 10.0);
}

TEST(UsfqFirModel, DeterministicForSeed)
{
    const auto h = dsp::designLowpass(8, 2500.0, kFs);
    const auto x = paperInput(256);
    UsfqFirConfig cfg{
        .taps = 8, .bits = 10, .pulseLossRate = 0.2, .seed = 42};
    UsfqFirModel a(h, cfg), b(h, cfg);
    EXPECT_EQ(a.filter(x), b.filter(x));
}

// --- performance & area models (Fig. 18) ------------------------------------------

TEST(UsfqFirModel, LatencyFormulaMatchesPaper)
{
    // T_CLK = B * t_TFF2, latency = 2^B * T_CLK (§5.4.2): 8 bits ->
    // 256 * 160 ps = 41 ns.
    UsfqFirConfig cfg{.taps = 32, .bits = 8};
    EXPECT_EQ(cfg.clockPeriod(), 160 * kPicosecond);
    EXPECT_EQ(cfg.epochLatency(), psToTicks(40960));
    UsfqFirModel fir(std::vector<double>(32, 0.01), cfg);
    EXPECT_NEAR(fir.latencyUs(), 0.041, 0.001);
}

TEST(UsfqFirModel, LatencyIndependentOfTaps)
{
    UsfqFirConfig c32{.taps = 32, .bits = 10};
    UsfqFirConfig c256{.taps = 256, .bits = 10};
    EXPECT_EQ(c32.epochLatency(), c256.epochLatency());
}

TEST(UsfqFirModel, AreaFormulaMatchesNetlist)
{
    for (int taps : {4, 8, 16}) {
        for (int bits : {4, 6, 8}) {
            Netlist nl;
            UsfqFirConfig cfg{.taps = taps, .bits = bits,
                              .mode = DpuMode::Unipolar};
            auto &fir = nl.create<UsfqFir>("fir", cfg);
            EXPECT_EQ(fir.jjCount(),
                      usfqFirAreaJJ(taps, bits, DpuMode::Unipolar))
                << "taps=" << taps << " bits=" << bits;

            Netlist nl2;
            UsfqFirConfig cfgb{.taps = taps, .bits = bits,
                               .mode = DpuMode::Bipolar};
            auto &firb = nl2.create<UsfqFir>("fir", cfgb);
            EXPECT_EQ(firb.jjCount(),
                      usfqFirAreaJJ(taps, bits, DpuMode::Bipolar))
                << "taps=" << taps << " bits=" << bits;
        }
    }
}

TEST(UsfqFirModel, EfficiencyPositiveAndTapScaling)
{
    UsfqFirModel f32(std::vector<double>(32, 0.01),
                     {.taps = 32, .bits = 8});
    UsfqFirModel f256(std::vector<double>(256, 0.002),
                      {.taps = 256, .bits = 8});
    EXPECT_GT(f32.efficiencyOpsPerJJ(), 0.0);
    // Paper Fig. 18d: the unary efficiency *advantage* grows with the
    // number of taps (our unary efficiency itself is nearly flat in
    // taps while the single-MAC binary baseline degrades).
    const baseline::BinaryFir b32{32, 8}, b256{256, 8};
    EXPECT_GT(f256.efficiencyOpsPerJJ() / b256.efficiencyOpsPerJJ(),
              f32.efficiencyOpsPerJJ() / b32.efficiencyOpsPerJJ());
}

// --- pulse-level netlist ------------------------------------------------------------

/**
 * Drive the unipolar pulse-level FIR with a sample sequence; decode
 * one output value per epoch by counting pulses between markers.
 */
std::vector<double>
runPulseFir(UsfqFir &fir, Netlist &nl, const EpochConfig &ecfg,
            const std::vector<double> &x)
{
    auto &clk = nl.create<ClockSource>("clk");
    auto &xin = nl.create<PulseSource>("x");
    PulseTrace out, markers;
    clk.out.connect(fir.clkIn());
    xin.out.connect(fir.sampleIn());
    fir.out().connect(out.input());
    fir.epochOut().connect(markers.input());

    const Tick t_clk0 = 100 * kPicosecond;
    const Tick period = fir.config().clockPeriod();
    const auto epochs = x.size() + 2;
    clk.program(t_clk0, period,
                epochs << static_cast<unsigned>(fir.config().bits));

    const Tick rl_off = 20 * kPicosecond;
    for (std::size_t e = 0; e < x.size(); ++e) {
        const Tick marker = t_clk0 +
                            static_cast<Tick>(e) *
                                fir.config().epochLatency() +
                            fir.markerLag();
        const int id = ecfg.rlIdOfUnipolar(x[e]);
        xin.pulseAt(marker + rl_off + ecfg.rlTime(id));
    }
    nl.queue().run();

    // Decode: count output pulses per epoch window (shifted by the
    // datapath latency ~ one slot).
    std::vector<double> y;
    for (std::size_t e = 0; e < x.size(); ++e) {
        const Tick lo = t_clk0 +
                        static_cast<Tick>(e) *
                            fir.config().epochLatency() +
                        fir.markerLag() + period;
        const Tick hi = lo + fir.config().epochLatency();
        const auto count = out.countInWindow(lo, hi);
        y.push_back(DotProductUnit::decode(
            ecfg, DpuMode::Unipolar, fir.config().taps,
            fir.config().taps, count));
    }
    return y;
}

TEST(UsfqFirPulseLevel, MovingAverageOfConstantInput)
{
    const int taps = 8, bits = 8;
    Netlist nl;
    UsfqFirConfig cfg{.taps = taps, .bits = bits,
                      .mode = DpuMode::Unipolar};
    auto &fir = nl.create<UsfqFir>("fir", cfg);
    const EpochConfig ecfg(bits, cfg.clockPeriod());
    for (int k = 0; k < taps; ++k)
        fir.setCoefficient(k, 1.0 / taps);

    // Constant input 0.5: steady-state output = 0.5 * sum(h) = 0.5.
    const std::vector<double> x(12, 0.5);
    const auto y = runPulseFir(fir, nl, ecfg, x);
    // After the delay line fills (taps epochs), output is steady.
    for (std::size_t e = taps + 1; e < y.size(); ++e)
        EXPECT_NEAR(y[e], 0.5, 0.12) << "epoch " << e;
}

TEST(UsfqFirPulseLevel, StepResponseRamps)
{
    const int taps = 4, bits = 8;
    Netlist nl;
    UsfqFirConfig cfg{.taps = taps, .bits = bits,
                      .mode = DpuMode::Unipolar};
    auto &fir = nl.create<UsfqFir>("fir", cfg);
    const EpochConfig ecfg(bits, cfg.clockPeriod());
    for (int k = 0; k < taps; ++k)
        fir.setCoefficient(k, 0.25);

    // Step from 0 to 0.8 at epoch 4: the moving average ramps over
    // `taps` epochs.
    std::vector<double> x(12, 0.0);
    for (std::size_t e = 4; e < x.size(); ++e)
        x[e] = 0.8;
    const auto y = runPulseFir(fir, nl, ecfg, x);
    EXPECT_NEAR(y[3], 0.0, 0.1);
    EXPECT_GT(y[6], y[4]);
    EXPECT_NEAR(y[10], 0.8 * 4 * 0.25, 0.12);
}

TEST(UsfqFirPulseLevel, MatchesFunctionalModel)
{
    const int taps = 4, bits = 8;
    Netlist nl;
    UsfqFirConfig cfg{.taps = taps, .bits = bits,
                      .mode = DpuMode::Unipolar};
    auto &fir = nl.create<UsfqFir>("fir", cfg);
    const EpochConfig ecfg(bits, cfg.clockPeriod());
    // Peak >= 0.95: the functional model's pre-scaling is identity, so
    // it matches the raw-programmed netlist bank.
    const std::vector<double> h{0.95, 0.3, 0.2, 0.1};
    for (int k = 0; k < taps; ++k)
        fir.setCoefficient(k, h[static_cast<std::size_t>(k)]);

    const std::vector<double> x{0.0, 0.2, 0.8, 0.5, 0.9, 0.1,
                                0.6, 0.3, 0.7, 0.4, 0.5, 0.5};
    const auto y_pulse = runPulseFir(fir, nl, ecfg, x);

    UsfqFirModel model(h, cfg);
    const auto y_model = model.filter(x);

    for (std::size_t e = taps; e < x.size(); ++e)
        EXPECT_NEAR(y_pulse[e], y_model[e], 0.15) << "epoch " << e;
}

} // namespace
} // namespace usfq
