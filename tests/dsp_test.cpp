/**
 * @file
 * Tests of the DSP substrate: signal generation, FIR design, FFT, and
 * SNR measurement -- the reproduction's stand-in for the paper's
 * Octave golden models.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "dsp/fft.hh"
#include "dsp/fir_design.hh"
#include "dsp/signal.hh"
#include "dsp/snr.hh"

namespace usfq::dsp
{
namespace
{

constexpr double kFs = 20000.0;

TEST(Signal, SineHasUnitAmplitude)
{
    const auto x = sine(1000.0, kFs, 2000);
    double peak = 0.0;
    for (double v : x)
        peak = std::max(peak, std::fabs(v));
    EXPECT_NEAR(peak, 1.0, 0.01);
    EXPECT_NEAR(rms(x), 1.0 / std::sqrt(2.0), 0.01);
}

TEST(Signal, MixtureSumsComponents)
{
    const auto x =
        sineMixture({{1000.0, 1.0}, {7000.0, 1.0}}, kFs, 1000);
    const auto a = sine(1000.0, kFs, 1000);
    const auto b = sine(7000.0, kFs, 1000);
    for (std::size_t i = 0; i < x.size(); ++i)
        EXPECT_NEAR(x[i], a[i] + b[i], 1e-12);
}

TEST(Signal, ScaleToPeak)
{
    auto x = sine(500.0, kFs, 500, 4.0);
    x = scaleToPeak(std::move(x), 0.9);
    double peak = 0.0;
    for (double v : x)
        peak = std::max(peak, std::fabs(v));
    EXPECT_NEAR(peak, 0.9, 1e-9);
}

TEST(FirDesign, UnityDcGain)
{
    const auto h = designLowpass(16, 2500.0, kFs);
    double sum = 0.0;
    for (double c : h)
        sum += c;
    EXPECT_NEAR(sum, 1.0, 1e-12);
    EXPECT_NEAR(magnitudeAt(h, 0.0, kFs), 1.0, 1e-9);
}

TEST(FirDesign, LinearPhaseSymmetry)
{
    const auto h = designLowpass(17, 3000.0, kFs);
    for (std::size_t k = 0; k < h.size() / 2; ++k)
        EXPECT_NEAR(h[k], h[h.size() - 1 - k], 1e-12);
}

TEST(FirDesign, PassesLowStopsHigh)
{
    // The paper's filter: recover 1 kHz, reject 7/8/9 kHz.
    const auto h = designLowpass(16, 2500.0, kFs);
    EXPECT_GT(magnitudeAt(h, 1000.0, kFs), 0.8);
    EXPECT_LT(magnitudeAt(h, 7000.0, kFs), 0.15);
    EXPECT_LT(magnitudeAt(h, 9000.0, kFs), 0.15);
}

TEST(FirDesign, FilterRemovesHighTone)
{
    const auto h = designLowpass(16, 2500.0, kFs);
    const auto x =
        sineMixture({{1000.0, 1.0}, {8000.0, 1.0}}, kFs, 4000);
    const auto y = firFilter(h, x);
    // Output should be close to the (delayed) 1 kHz component alone.
    EXPECT_GT(snrOfTone(y, kFs, 1000.0), 15.0);
}

TEST(Fft, RecoversSingleToneBin)
{
    const std::size_t n = 1024;
    const auto x = sine(kFs / 16.0, kFs, n); // exactly bin 64
    const auto mag = magnitudeSpectrum(x);
    std::size_t peak = 0;
    for (std::size_t k = 1; k < mag.size(); ++k)
        if (mag[k] > mag[peak])
            peak = k;
    EXPECT_EQ(peak, 64u);
    // Amplitude-1 sine: |X[k]| / N = 0.5 at the tone bin.
    EXPECT_NEAR(mag[peak], 0.5, 0.01);
}

TEST(Fft, ParsevalHolds)
{
    std::vector<std::complex<double>> data(256);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = {std::sin(0.1 * static_cast<double>(i)), 0.0};
    double time_energy = 0.0;
    for (const auto &c : data)
        time_energy += std::norm(c);
    fft(data);
    double freq_energy = 0.0;
    for (const auto &c : data)
        freq_energy += std::norm(c);
    EXPECT_NEAR(freq_energy / static_cast<double>(data.size()),
                time_energy, 1e-9 * time_energy + 1e-12);
}

TEST(Fft, InverseRoundTrip)
{
    std::vector<std::complex<double>> data(128);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = {static_cast<double>(i % 7), 0.5};
    const auto original = data;
    fft(data);
    ifft(data);
    for (std::size_t i = 0; i < data.size(); ++i)
        EXPECT_NEAR(std::abs(data[i] - original[i]), 0.0, 1e-9);
}

TEST(Fft, RejectsNonPowerOfTwo)
{
    std::vector<std::complex<double>> data(100);
    EXPECT_EXIT(fft(data), ::testing::ExitedWithCode(1),
                "power of two");
}

TEST(Snr, PureToneIsHigh)
{
    const auto x = sine(1000.0, kFs, 4096);
    EXPECT_GT(snrOfTone(x, kFs, 1000.0), 40.0);
}

TEST(Snr, AddedNoiseLowersSnr)
{
    auto x = sine(1000.0, kFs, 4096);
    auto noisy = x;
    for (std::size_t i = 0; i < noisy.size(); ++i)
        noisy[i] += 0.3 * std::sin(0.7 * static_cast<double>(i));
    EXPECT_LT(snrOfTone(noisy, kFs, 1000.0),
              snrOfTone(x, kFs, 1000.0) - 10.0);
}

TEST(Snr, VsReferenceExactMatchIsHuge)
{
    const auto x = sine(1000.0, kFs, 1000);
    EXPECT_GT(snrVsReference(x, x), 100.0);
}

TEST(Snr, VsReferenceKnownRatio)
{
    const auto ref = sine(1000.0, kFs, 4096);
    auto y = ref;
    for (double &v : y)
        v += 0.1; // DC error with power 0.01 vs signal power 0.5
    EXPECT_NEAR(snrVsReference(y, ref), 10.0 * std::log10(0.5 / 0.01),
                0.1);
}

} // namespace
} // namespace usfq::dsp
