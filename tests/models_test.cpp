/**
 * @file
 * Invariant tests of the evaluation models behind Figs. 14/16/18/20:
 * monotonicity, crossover existence, and consistency between the
 * closed-form models and the netlists -- the guard rails that keep the
 * figure benches honest.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "baseline/binary_models.hh"
#include "core/dpu.hh"
#include "core/fir.hh"
#include "metrics/power.hh"
#include "sim/netlist.hh"

namespace usfq
{
namespace
{

double
unaryFirLatencyPs(int bits)
{
    return std::ldexp(1.0, bits) * bits * 20.0;
}

// --- latency model invariants -----------------------------------------------

TEST(Models, UnaryFirLatencyIsExponentialInBits)
{
    for (int bits = 4; bits < 16; ++bits)
        EXPECT_GT(unaryFirLatencyPs(bits + 1),
                  1.9 * unaryFirLatencyPs(bits));
}

TEST(Models, BinaryFirLatencyLinearInTapsAndBits)
{
    using baseline::BinaryFir;
    const double lat32_8 = BinaryFir{32, 8}.latencyPs();
    EXPECT_NEAR((BinaryFir{64, 8}.latencyPs()), 2 * lat32_8, 1e-6);
    EXPECT_NEAR((BinaryFir{32, 16}.latencyPs()), 2 * lat32_8, 1e-6);
}

TEST(Models, LatencyCrossoverExistsAndMovesUpWithTaps)
{
    auto crossover = [](int taps) {
        for (int bits = 2; bits <= 20; ++bits) {
            if (unaryFirLatencyPs(bits) >
                baseline::BinaryFir{taps, bits}.latencyPs())
                return bits;
        }
        return 21;
    };
    const int c32 = crossover(32);
    const int c256 = crossover(256);
    EXPECT_GT(c32, 6);
    EXPECT_LT(c32, 12);
    EXPECT_GT(c256, c32); // more taps -> unary viable to higher bits
}

// --- area model invariants ------------------------------------------------------

TEST(Models, UnaryFirAreaLinearInTaps)
{
    const auto a64 = usfqFirAreaJJ(64, 8);
    const auto a128 = usfqFirAreaJJ(128, 8);
    const auto a256 = usfqFirAreaJJ(256, 8);
    EXPECT_NEAR(static_cast<double>(a256 - a128),
                static_cast<double>(a128 - a64) * 2.0,
                0.1 * static_cast<double>(a128));
}

TEST(Models, UnaryFirAreaNearlyFlatInBits)
{
    // Only the per-word NDRO gates and divider grow with bits: a small
    // fraction of the total.
    const auto a4 = usfqFirAreaJJ(64, 4);
    const auto a16 = usfqFirAreaJJ(64, 16);
    EXPECT_LT(static_cast<double>(a16) / static_cast<double>(a4), 2.0);
}

TEST(Models, BinaryDpuGrowsInBothAxes)
{
    using baseline::BinaryDpu;
    for (int taps : {32, 64, 128}) {
        EXPECT_LT((BinaryDpu{taps, 8}.areaJJ()),
                  (BinaryDpu{taps * 2, 8}.areaJJ()));
        EXPECT_LT((BinaryDpu{taps, 8}.areaJJ()),
                  (BinaryDpu{taps, 16}.areaJJ()));
    }
}

TEST(Models, DpuNetlistAreaLinearInLength)
{
    Netlist nl;
    auto &d32 = nl.create<DotProductUnit>("d32", 32, DpuMode::Bipolar);
    auto &d64 = nl.create<DotProductUnit>("d64", 64, DpuMode::Bipolar);
    const double per32 = static_cast<double>(d32.jjCount()) / 32;
    const double per64 = static_cast<double>(d64.jjCount()) / 64;
    EXPECT_NEAR(per32, per64, 0.1 * per32);
}

// --- efficiency invariants (Fig. 18d / Fig. 20c) ----------------------------------

TEST(Models, UnaryEfficiencyAdvantageGrowsWithTaps)
{
    auto advantage = [](int taps, int bits) {
        const double u_eff =
            taps / (unaryFirLatencyPs(bits) * 1e-12) /
            static_cast<double>(usfqFirAreaJJ(taps, bits));
        return u_eff /
               baseline::BinaryFir{taps, bits}.efficiencyOpsPerJJ();
    };
    for (int bits : {6, 8, 10})
        EXPECT_GT(advantage(256, bits), advantage(32, bits))
            << "bits=" << bits;
}

TEST(Models, UnaryEfficiencyAdvantageShrinksWithBits)
{
    auto advantage = [](int bits) {
        const double u_eff =
            64 / (unaryFirLatencyPs(bits) * 1e-12) /
            static_cast<double>(usfqFirAreaJJ(64, bits));
        return u_eff /
               baseline::BinaryFir{64, bits}.efficiencyOpsPerJJ();
    };
    EXPECT_GT(advantage(6), advantage(10));
    EXPECT_GT(advantage(10), advantage(14));
}

// --- power model invariants ---------------------------------------------------------

TEST(Models, PassiveScalesWithAreaActiveWithRate)
{
    EXPECT_NEAR(metrics::passivePower(200),
                2.0 * metrics::passivePower(100), 1e-12);
    EXPECT_NEAR(metrics::activePower(2000, kMicrosecond),
                2.0 * metrics::activePower(1000, kMicrosecond),
                1e-15);
}

TEST(Models, PaperPowerAnchors)
{
    // Passive anchors from Table 3 (bias-dominated blocks).
    EXPECT_NEAR(metrics::passivePower(46) * 1e3, 0.055, 0.01); // mult
    EXPECT_NEAR(metrics::passivePower(60) * 1e3, 0.072, 0.01); // bal
    Netlist nl;
    auto &dpu = nl.create<DotProductUnit>("d", 32, DpuMode::Bipolar);
    EXPECT_NEAR(metrics::passivePower(dpu.jjCount()) * 1e3, 4.8, 1.0);
}

// --- PE array model (Fig. 14b) -----------------------------------------------------

TEST(Models, PeArraySavingsDeclineWithBits)
{
    auto savings = [](int bits) {
        const baseline::BinaryPe bin{bits};
        const double unary_ns = std::ldexp(1.0, bits) * 9e-3;
        const double pes =
            std::ceil(unary_ns / (bin.latencyPs() * 1e-3));
        return 1.0 - pes * 126.0 / bin.areaJJ();
    };
    EXPECT_GT(savings(6), 0.9);
    EXPECT_GT(savings(8), savings(12));
    EXPECT_GT(savings(12), savings(16));
}

} // namespace
} // namespace usfq
