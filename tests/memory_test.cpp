/**
 * @file
 * Tests of the coefficient memory bank (paper §4.3) and the race-logic
 * shift registers (paper §4.4).
 */

#include <gtest/gtest.h>

#include "core/memory.hh"
#include "core/shift_register.hh"
#include "sim/trace.hh"
#include "sfq/sources.hh"

namespace usfq
{
namespace
{

constexpr Tick kTclk = 200 * kPicosecond;

// --- CoefficientBank ----------------------------------------------------------

struct BankHarness
{
    Netlist nl;
    CoefficientBank *bank;
    ClockSource *clk;
    std::vector<std::unique_ptr<PulseTrace>> outs;
    PulseTrace epochs;

    BankHarness(int words, int bits)
    {
        bank = &nl.create<CoefficientBank>("bank", words, bits);
        clk = &nl.create<ClockSource>("clk");
        clk->out.connect(bank->clkIn());
        for (int w = 0; w < words; ++w) {
            outs.push_back(std::make_unique<PulseTrace>(
                "out" + std::to_string(w)));
            bank->out(w).connect(outs.back()->input());
        }
        bank->epochOut().connect(epochs.input());
    }

    void
    run(int bits, int num_epochs = 1)
    {
        clk->program(kTclk, kTclk,
                     static_cast<std::uint64_t>(num_epochs)
                         << static_cast<unsigned>(bits));
        nl.queue().run();
    }
};

TEST(CoefficientBank, EachWordStreamsItsValue)
{
    BankHarness h(4, 4);
    h.bank->program(0, 3);
    h.bank->program(1, 15);
    h.bank->program(2, 0);
    h.bank->program(3, 8);
    h.run(4);
    EXPECT_EQ(h.outs[0]->count(), 3u);
    EXPECT_EQ(h.outs[1]->count(), 15u);
    EXPECT_EQ(h.outs[2]->count(), 0u);
    EXPECT_EQ(h.outs[3]->count(), 8u);
    EXPECT_EQ(h.epochs.count(), 1u);
}

TEST(CoefficientBank, ProgramReadback)
{
    Netlist nl;
    auto &bank = nl.create<CoefficientBank>("bank", 3, 6);
    bank.program(0, 42);
    bank.program(1, 0);
    bank.program(2, 63);
    EXPECT_EQ(bank.storedValue(0), 42);
    EXPECT_EQ(bank.storedValue(1), 0);
    EXPECT_EQ(bank.storedValue(2), 63);
}

TEST(CoefficientBank, UnipolarAndBipolarProgramming)
{
    Netlist nl;
    auto &bank = nl.create<CoefficientBank>("bank", 2, 8);
    bank.programUnipolar(0, 0.5);
    EXPECT_NEAR(bank.storedValue(0), 128, 1);
    bank.programBipolar(1, 0.0);
    EXPECT_NEAR(bank.storedValue(1), 128, 1);
    bank.programBipolar(1, -1.0);
    EXPECT_EQ(bank.storedValue(1), 0);
}

TEST(CoefficientBank, ValuesSurviveReset)
{
    // Coefficients are loaded once and reused every epoch (paper: they
    // "rarely get updated"), so resetAll() must not erase them.
    BankHarness h(1, 4);
    h.bank->program(0, 9);
    h.run(4);
    EXPECT_EQ(h.outs[0]->count(), 9u);
    h.nl.resetAll();
    h.outs[0]->clear();
    h.run(4);
    EXPECT_EQ(h.outs[0]->count(), 9u);
    EXPECT_EQ(h.bank->storedValue(0), 9);
}

TEST(CoefficientBank, MultiEpochStreamsRepeat)
{
    BankHarness h(2, 3);
    h.bank->program(0, 5);
    h.bank->program(1, 2);
    h.run(3, 4);
    EXPECT_EQ(h.outs[0]->count(), 20u);
    EXPECT_EQ(h.outs[1]->count(), 8u);
    EXPECT_EQ(h.epochs.count(), 4u);
}

TEST(CoefficientBank, OverheadVersusBinaryBankIsModest)
{
    Netlist nl;
    const int words = 32, bits = 8;
    auto &bank = nl.create<CoefficientBank>("bank", words, bits);
    const int binary = CoefficientBank::binaryBankJJs(words, bits);
    const double overhead =
        static_cast<double>(bank.jjCount() - binary) / binary;
    // Shared divider + mergers + fanout: tens of percent, not x2.
    EXPECT_GT(overhead, 0.0);
    EXPECT_LT(overhead, 0.8);
}

// --- BinaryToRlConverter -----------------------------------------------------

TEST(BinaryToRlConverter, EmitsAtProgrammedSlot)
{
    Netlist nl;
    auto &b2rc = nl.create<BinaryToRlConverter>("b2rc", 4);
    auto &clk = nl.create<ClockSource>("clk");
    auto &epoch = nl.create<PulseSource>("e");
    PulseTrace out;
    clk.out.connect(b2rc.clkIn);
    epoch.out.connect(b2rc.epochIn);
    b2rc.out.connect(out.input());

    b2rc.program(5);
    epoch.pulseAt(0);
    clk.program(10 * kPicosecond, 10 * kPicosecond, 16);
    nl.queue().run();
    ASSERT_EQ(out.count(), 1u);
    // Fires on the 5th clock: t = 50 ps (+ cell delay).
    EXPECT_EQ(out.times()[0], 50 * kPicosecond + cell::kDffDelay);
}

TEST(BinaryToRlConverter, ZeroFiresAtEpochStart)
{
    Netlist nl;
    auto &b2rc = nl.create<BinaryToRlConverter>("b2rc", 4);
    auto &epoch = nl.create<PulseSource>("e");
    PulseTrace out;
    epoch.out.connect(b2rc.epochIn);
    b2rc.out.connect(out.input());
    b2rc.program(0);
    epoch.pulseAt(100);
    nl.queue().run();
    ASSERT_EQ(out.count(), 1u);
}

TEST(BinaryToRlConverter, SilentWithoutEpoch)
{
    Netlist nl;
    auto &b2rc = nl.create<BinaryToRlConverter>("b2rc", 4);
    auto &clk = nl.create<ClockSource>("clk");
    PulseTrace out;
    clk.out.connect(b2rc.clkIn);
    b2rc.out.connect(out.input());
    b2rc.program(3);
    clk.program(10 * kPicosecond, 10 * kPicosecond, 16);
    nl.queue().run();
    EXPECT_EQ(out.count(), 0u);
}

// --- DffRlShiftStage ---------------------------------------------------------

TEST(DffRlShiftStage, DelaysByOneEpochOfClocks)
{
    const int bits = 3; // 8 stages
    Netlist nl;
    auto &stage = nl.create<DffRlShiftStage>("sr", bits);
    auto &clk = nl.create<ClockSource>("clk");
    auto &src = nl.create<PulseSource>("in");
    PulseTrace out;
    clk.out.connect(stage.clkIn);
    src.out.connect(stage.in);
    stage.out.connect(out.input());

    src.pulseAt(5 * kPicosecond); // just before the first clock
    clk.program(10 * kPicosecond, 10 * kPicosecond, 24);
    nl.queue().run();
    ASSERT_EQ(out.count(), 1u);
    // Enters on clock 1 (10 ps), exits on clock 8 (80 ps).
    EXPECT_EQ(out.times()[0], 80 * kPicosecond + cell::kDffDelay);
}

TEST(DffRlShiftStage, AreaGrowsExponentially)
{
    Netlist nl;
    auto &s3 = nl.create<DffRlShiftStage>("s3", 3);
    auto &s6 = nl.create<DffRlShiftStage>("s6", 6);
    EXPECT_EQ(s3.jjCount(), 8 * cell::kDffJJs);
    EXPECT_EQ(s6.jjCount(), 64 * cell::kDffJJs);
}

// --- IntegratorBuffer / RlMemoryCell / RlShiftRegister -----------------------------

TEST(IntegratorBuffer, DelaysPulseByExactlyOneEpoch)
{
    const Tick period = 720 * kPicosecond;
    Netlist nl;
    auto &buf = nl.create<IntegratorBuffer>("buf", period);
    auto &src = nl.create<PulseSource>("in");
    PulseTrace out;
    src.out.connect(buf.in);
    buf.out.connect(out.input());
    src.pulseAt(123 * kPicosecond);
    nl.queue().run();
    ASSERT_EQ(out.count(), 1u);
    EXPECT_EQ(out.times()[0], 123 * kPicosecond + period);
}

TEST(IntegratorBuffer, AreaIs48JJsIndependentOfResolution)
{
    Netlist nl;
    auto &b1 = nl.create<IntegratorBuffer>("b1", 100 * kPicosecond);
    auto &b2 = nl.create<IntegratorBuffer>("b2", 100 * kNanosecond);
    EXPECT_EQ(b1.jjCount(), 48);
    EXPECT_EQ(b2.jjCount(), b1.jjCount());
}

TEST(RlMemoryCell, AreaIs120JJs)
{
    Netlist nl;
    auto &cell = nl.create<RlMemoryCell>("c", kTclk);
    EXPECT_EQ(cell.jjCount(), 120);
}

TEST(RlMemoryCell, InterleavesTwoBuffers)
{
    const Tick period = 1000 * kPicosecond;
    Netlist nl;
    auto &cell = nl.create<RlMemoryCell>("c", period);
    auto &src = nl.create<PulseSource>("in");
    auto &sel = nl.create<PulseSource>("sel");
    PulseTrace out;
    src.out.connect(cell.in());
    sel.out.connect(cell.selA);
    cell.out().connect(out.input());

    // Epoch 0: fill A. Epoch 1: fill B while A drains through the mux.
    sel.pulseAt(0);
    src.pulseAt(100 * kPicosecond);
    // Switch to B at the next epoch boundary.
    auto &selb = nl.create<PulseSource>("selb");
    selb.out.connect(cell.selB);
    selb.pulseAt(period);
    src.pulseAt(period + 300 * kPicosecond);
    // And back to A for epoch 2 so B drains.
    auto &sela2 = nl.create<PulseSource>("sela2");
    sela2.out.connect(cell.selA);
    sela2.pulseAt(2 * period);

    nl.queue().run();
    ASSERT_EQ(out.count(), 2u);
    // Demux and mux each add one cell delay around the buffer.
    EXPECT_EQ(out.times()[0], 100 * kPicosecond + period +
                                  2 * cell::kMuxDelay);
    EXPECT_EQ(out.times()[1], period + 300 * kPicosecond + period +
                                  2 * cell::kMuxDelay);
}

TEST(RlShiftRegister, DelaysEachStageByOneEpoch)
{
    const Tick period = 2000 * kPicosecond;
    const int depth = 3;
    Netlist nl;
    auto &sr = nl.create<RlShiftRegister>("sr", depth, period);
    auto &src = nl.create<PulseSource>("in");
    auto &epoch = nl.create<PulseSource>("e");
    src.out.connect(sr.in());
    epoch.out.connect(sr.epochIn());
    std::vector<std::unique_ptr<PulseTrace>> taps;
    for (int k = 0; k < depth; ++k) {
        taps.push_back(std::make_unique<PulseTrace>("t" +
                                                    std::to_string(k)));
        sr.tapOut(k).connect(taps.back()->input());
    }

    const int epochs = 6;
    const Tick offset = 700 * kPicosecond; // RL id within the epoch
    for (int e = 0; e < epochs; ++e) {
        epoch.pulseAt(e * period);
        src.pulseAt(e * period + offset);
    }
    nl.queue().run();

    // Tap k sees the input delayed k+1 epochs; later epochs flush it.
    for (int k = 0; k < depth; ++k) {
        EXPECT_GE(taps[static_cast<std::size_t>(k)]->count(),
                  static_cast<std::size_t>(epochs - k - 1))
            << "tap " << k;
        // Delay of the first pulse through k+1 stages.
        // Each stage adds demux+mux (and a tap splitter) cell delays.
        const Tick expect_min = offset + (k + 1) * period;
        EXPECT_NEAR(
            static_cast<double>(
                taps[static_cast<std::size_t>(k)]->times()[0]),
            static_cast<double>(expect_min),
            static_cast<double>(60 * kPicosecond))
            << "tap " << k;
    }
}

TEST(RlShiftRegister, AreaMatchesModel)
{
    Netlist nl;
    auto &sr = nl.create<RlShiftRegister>("sr", 8, kTclk);
    EXPECT_EQ(sr.jjCount(), integratorShiftRegisterJJs(8, 8));
}

// --- Fig. 12 area model shapes -----------------------------------------------

TEST(ShiftRegisterAreas, PaperOrderingHolds)
{
    const int words = 8;
    for (int bits = 8; bits <= 16; bits += 2) {
        const auto binary = binaryShiftRegisterJJs(words, bits);
        const auto b2rc = b2rcShiftRegisterJJs(words, bits);
        const auto dff_rl = dffRlShiftRegisterJJs(words, bits);
        const auto integ = integratorShiftRegisterJJs(words, bits);
        // B2RC is the cheaper RL option only at low bits; the DFF chain
        // explodes; the integrator buffer beats both RL options.
        EXPECT_GT(b2rc, binary);
        EXPECT_GT(dff_rl, b2rc) << "bits=" << bits;
        EXPECT_LT(integ, b2rc) << "bits=" << bits;
        EXPECT_LT(integ, dff_rl);
    }
}

TEST(ShiftRegisterAreas, B2rcIsAbout3xBinary)
{
    // Paper: "up to 3.2x more area than its binary counterpart".
    const double ratio =
        static_cast<double>(b2rcShiftRegisterJJs(8, 8)) /
        binaryShiftRegisterJJs(8, 8);
    EXPECT_NEAR(ratio, 3.2, 0.3);
}

TEST(ShiftRegisterAreas, IntegratorOverheadMatchesPaper)
{
    // Paper: ~2.5x binary at 8 bits, ~1.3x at 16 bits.
    const double r8 =
        static_cast<double>(integratorShiftRegisterJJs(8, 8)) /
        binaryShiftRegisterJJs(8, 8);
    const double r16 =
        static_cast<double>(integratorShiftRegisterJJs(8, 16)) /
        binaryShiftRegisterJJs(8, 16);
    EXPECT_NEAR(r8, 2.5, 0.3);
    EXPECT_NEAR(r16, 1.3, 0.2);
}

} // namespace
} // namespace usfq
