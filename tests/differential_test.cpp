/**
 * @file
 * Differential fuzzer between the pulse-level netlists and the
 * stream-level functional backend (src/func/): seeded random operands
 * for every component class, sharded over runSweep so the full corpus
 * runs in parallel yet stays bit-identical at any thread count.
 *
 * Exactness contract (docs/functional.md):
 *   - multipliers, counting-network DPUs, PNMs: exact count equality
 *   - merger trees: exact slot-union (plus exact collision accounting)
 *   - standalone counting trees: bounded by one rounded pulse per tree
 *     level (the drive pattern sets each balancer's toggle phase)
 *   - PE: +/-1 RL slot (integrator capture vs the pure model)
 *
 * Any mismatch outside these bounds is a real engine divergence, never
 * "flaky": every case prints its operands so it can be replayed.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "core/adder.hh"
#include "core/dpu.hh"
#include "core/multiplier.hh"
#include "core/pe.hh"
#include "core/pnm.hh"
#include "func/components.hh"
#include "sim/sweep.hh"
#include "sim/trace.hh"
#include "sfq/sources.hh"
#include "util/random.hh"

namespace usfq
{
namespace
{

constexpr std::size_t kShards = 16;
constexpr std::uint64_t kCorpusSeed = 0xd1ffu;

/** One fuzz case: operands plus both engines' answers. */
struct DiffCase
{
    int bits = 0;
    std::vector<int> operands;
    long long pulse = 0;
    long long func = 0;

    bool operator==(const DiffCase &other) const = default;
};

// --- pulse-level harnesses (mirroring the unit-test drives) -----------------

int
runUnipolarMult(const EpochConfig &cfg, int stream_count, int rl_id)
{
    Netlist nl;
    auto &mult = nl.create<UnipolarMultiplier>("mult");
    auto &src_e = nl.create<PulseSource>("e");
    auto &src_a = nl.create<PulseSource>("a");
    auto &src_b = nl.create<PulseSource>("b");
    PulseTrace out;
    src_e.out.connect(mult.epoch());
    src_a.out.connect(mult.streamIn());
    src_b.out.connect(mult.rlIn());
    mult.out().connect(out.input());
    src_e.pulseAt(0);
    src_b.pulseAt(cfg.rlArrival(rl_id));
    src_a.pulsesAt(cfg.streamTimes(stream_count));
    nl.queue().run();
    return static_cast<int>(out.count());
}

int
runBipolarMult(const EpochConfig &cfg, int stream_count, int rl_id)
{
    Netlist nl;
    auto &mult = nl.create<BipolarMultiplier>("mult");
    auto &src_e = nl.create<PulseSource>("e");
    auto &src_a = nl.create<PulseSource>("a");
    auto &src_b = nl.create<PulseSource>("b");
    auto &src_clk = nl.create<PulseSource>("clk");
    PulseTrace out;
    src_e.out.connect(mult.epoch());
    src_a.out.connect(mult.streamIn());
    src_b.out.connect(mult.rlIn());
    src_clk.out.connect(mult.clkIn());
    mult.out().connect(out.input());
    src_e.pulseAt(0);
    src_b.pulseAt(cfg.rlArrival(rl_id));
    src_a.pulsesAt(cfg.streamTimes(stream_count));
    src_clk.pulsesAt(BipolarMultiplier::gridClockTimes(cfg, 0));
    nl.queue().run();
    return static_cast<int>(out.count());
}

/** Merger tree fed same-grid streams; returns {survivors, collisions}. */
std::pair<int, int>
runMergerTree(const EpochConfig &cfg, const std::vector<int> &counts)
{
    Netlist nl;
    auto &add = nl.create<MergerTreeAdder>(
        "add", static_cast<int>(counts.size()));
    PulseTrace out;
    add.out().connect(out.input());
    for (std::size_t i = 0; i < counts.size(); ++i) {
        auto &src = nl.create<PulseSource>("s" + std::to_string(i));
        src.out.connect(add.in(static_cast<int>(i)));
        src.pulsesAt(cfg.streamTimes(counts[i]));
    }
    nl.queue().run();
    return {static_cast<int>(out.count()),
            static_cast<int>(add.collisions())};
}

/** Slot width satisfying slot >= 2*(3*log2(L)+1) for DPU lengths <= 64. */
constexpr Tick kDpuSlot = 40 * kPicosecond;

Tick
dpuSetLag(int length)
{
    int depth = 0, n = 1;
    while (n < length) {
        n <<= 1;
        ++depth;
    }
    return static_cast<Tick>(depth) * 3 * kPicosecond;
}

int
runPulseDpu(const EpochConfig &cfg, DpuMode mode,
            const std::vector<int> &streams, const std::vector<int> &ids)
{
    const int length = static_cast<int>(streams.size());
    Netlist nl;
    auto &dpu = nl.create<DotProductUnit>("dpu", length, mode);
    auto &src_e = nl.create<PulseSource>("e");
    auto &src_clk = nl.create<PulseSource>("clk");
    PulseTrace out;
    src_e.out.connect(dpu.epochIn());
    if (mode == DpuMode::Bipolar)
        src_clk.out.connect(dpu.clkIn());
    dpu.out().connect(out.input());

    std::vector<PulseSource *> rl_srcs, st_srcs;
    for (int i = 0; i < length; ++i) {
        auto &r = nl.create<PulseSource>("a" + std::to_string(i));
        auto &s = nl.create<PulseSource>("b" + std::to_string(i));
        r.out.connect(dpu.rlIn(i));
        s.out.connect(dpu.streamIn(i));
        rl_srcs.push_back(&r);
        st_srcs.push_back(&s);
    }
    const Tick rl_off = dpuSetLag(length) + 1 * kPicosecond;
    src_e.pulseAt(0);
    if (mode == DpuMode::Bipolar)
        src_clk.pulsesAt(BipolarMultiplier::gridClockTimes(cfg, 0));
    for (int i = 0; i < length; ++i) {
        rl_srcs[static_cast<std::size_t>(i)]->pulseAt(
            rl_off + cfg.rlTime(ids[static_cast<std::size_t>(i)]));
        st_srcs[static_cast<std::size_t>(i)]->pulsesAt(
            cfg.streamTimes(streams[static_cast<std::size_t>(i)]));
    }
    nl.queue().run();
    return static_cast<int>(out.count());
}

/** PE pulse harness (pe_test.cpp drive): returns the result RL slot. */
int
runPulsePe(const EpochConfig &cfg, int in1_id, int in2_count,
           int in3_count)
{
    constexpr Tick kRlOff = 5 * kPicosecond;
    Netlist nl;
    auto &pe = nl.create<ProcessingElement>("pe", cfg);
    auto &src_e = nl.create<PulseSource>("e");
    auto &src1 = nl.create<PulseSource>("in1");
    auto &src2 = nl.create<PulseSource>("in2");
    auto &src3 = nl.create<PulseSource>("in3");
    PulseTrace out;
    src_e.out.connect(pe.epoch());
    src1.out.connect(pe.in1());
    src2.out.connect(pe.in2());
    src3.out.connect(pe.in3());
    pe.out().connect(out.input());

    src_e.pulseAt(0);
    src1.pulseAt(kRlOff + cfg.rlTime(in1_id));
    src2.pulsesAt(cfg.streamTimes(in2_count));
    src3.pulsesAt(cfg.streamTimes(in3_count));
    src_e.pulseAt(cfg.duration()); // conversion trigger
    nl.queue().run();
    for (Tick t : out.times()) {
        if (t > cfg.duration())
            return cfg.rlSlotOf(t - cfg.duration() - 30 * kPicosecond -
                                3 * kPicosecond -
                                EpochConfig::kRlPulseOffset);
    }
    return -1;
}

// --- sharded corpora ---------------------------------------------------------

template <typename Fn>
std::vector<DiffCase>
runCorpus(std::size_t cases_per_shard, Fn &&shard_case,
          const SweepOptions &opt = {})
{
    const auto shards = runSweep(
        kShards,
        [&](const ShardContext &ctx) {
            Rng rng(ctx.seed);
            std::vector<DiffCase> cases;
            cases.reserve(cases_per_shard);
            for (std::size_t i = 0; i < cases_per_shard; ++i)
                cases.push_back(shard_case(rng));
            return cases;
        },
        opt);
    std::vector<DiffCase> merged;
    for (const auto &shard : shards)
        merged.insert(merged.end(), shard.begin(), shard.end());
    return merged;
}

std::string
describe(const DiffCase &c)
{
    std::string s = "bits=" + std::to_string(c.bits) + " operands=[";
    for (std::size_t i = 0; i < c.operands.size(); ++i)
        s += (i ? "," : "") + std::to_string(c.operands[i]);
    return s + "]";
}

DiffCase
unipolarMultCase(Rng &rng)
{
    DiffCase c;
    c.bits = static_cast<int>(rng.uniformInt(2, 6));
    const EpochConfig cfg(c.bits);
    const int n = static_cast<int>(rng.uniformInt(0, cfg.nmax()));
    const int id = static_cast<int>(rng.uniformInt(0, cfg.nmax()));
    c.operands = {n, id};
    c.pulse = runUnipolarMult(cfg, n, id);
    Netlist nl;
    c.func = nl.create<func::UnipolarMultiplier>("m").evaluate(cfg, n, id);
    return c;
}

// --- the component-class fuzzers ---------------------------------------------

TEST(Differential, UnipolarMultiplierExact)
{
    const auto cases = runCorpus(72, unipolarMultCase); // 1152 cases
    for (const DiffCase &c : cases)
        EXPECT_EQ(c.pulse, c.func) << describe(c);
}

TEST(Differential, BipolarMultiplierExact)
{
    const auto cases = runCorpus(64, [](Rng &rng) { // 1024 cases
        DiffCase c;
        c.bits = static_cast<int>(rng.uniformInt(2, 5));
        const EpochConfig cfg(c.bits);
        const int n = static_cast<int>(rng.uniformInt(0, cfg.nmax()));
        const int id = static_cast<int>(rng.uniformInt(0, cfg.nmax()));
        c.operands = {n, id};
        c.pulse = runBipolarMult(cfg, n, id);
        Netlist nl;
        c.func =
            nl.create<func::BipolarMultiplier>("m").evaluate(cfg, n, id);
        return c;
    });
    for (const DiffCase &c : cases)
        EXPECT_EQ(c.pulse, c.func) << describe(c);
}

TEST(Differential, MergerTreeAdderExactUnionAndCollisions)
{
    // Same-grid streams coincide slot-exactly, so the union model is
    // exact and the collision ledger must match pulse for pulse.
    const auto cases = runCorpus(64, [](Rng &rng) { // 1024 cases
        DiffCase c;
        c.bits = static_cast<int>(rng.uniformInt(3, 5));
        const EpochConfig cfg(c.bits);
        const int m = rng.bernoulli(0.5) ? 2 : 4;
        std::vector<int> counts;
        for (int i = 0; i < m; ++i)
            counts.push_back(
                static_cast<int>(rng.uniformInt(0, cfg.nmax())));
        c.operands = counts;
        const auto [survivors, collided] = runMergerTree(cfg, counts);
        c.pulse = survivors;
        Netlist nl;
        auto &add = nl.create<func::MergerTreeAdder>("add", m);
        c.func = add.evaluate(cfg, counts);
        // Fold the collision cross-check into the comparison: a
        // survivor match with a collision mismatch must still fail.
        if (collided != static_cast<int>(add.collisions()))
            c.func = -1000 - static_cast<int>(add.collisions());
        return c;
    });
    for (const DiffCase &c : cases)
        EXPECT_EQ(c.pulse, c.func) << describe(c);
}

TEST(Differential, CountingTreeBoundedByDepthRounding)
{
    // Standalone trees are driven with staggered lanes (not the DPU's
    // product streams), so each level's balancer toggle phase can round
    // one pulse the other way versus the pure ceiling model.
    const auto cases = runCorpus(64, [](Rng &rng) { // 1024 cases
        DiffCase c;
        const int m = rng.bernoulli(0.5) ? 4 : 8;
        c.bits = m; // repurposed: fan-in
        std::vector<int> counts;
        for (int i = 0; i < m; ++i)
            counts.push_back(static_cast<int>(rng.uniformInt(0, 8)));
        c.operands = counts;

        Netlist nl;
        auto &net = nl.create<TreeCountingNetwork>("net", m);
        PulseTrace out;
        net.out().connect(out.input());
        const Tick spacing = 2 * cell::kBffDeadTime;
        for (int i = 0; i < m; ++i) {
            auto &src = nl.create<PulseSource>("s" + std::to_string(i));
            src.out.connect(net.in(i));
            for (int k = 0; k < counts[static_cast<std::size_t>(i)]; ++k)
                src.pulseAt(10 * kPicosecond + k * spacing * m +
                            i * spacing);
        }
        nl.queue().run();
        c.pulse = static_cast<int>(out.count());
        Netlist fnl;
        c.func = fnl.create<func::TreeCountingNetwork>("net", m)
                     .evaluate(counts);
        return c;
    });
    for (const DiffCase &c : cases) {
        const double depth = std::log2(static_cast<double>(c.bits));
        EXPECT_LE(std::llabs(c.pulse - c.func),
                  static_cast<long long>(depth))
            << describe(c);
    }
}

TEST(Differential, PnmCountsExact)
{
    constexpr Tick kTclk = 200 * kPicosecond;
    const auto cases = runCorpus(64, [](Rng &rng) { // 1024 cases
        DiffCase c;
        c.bits = static_cast<int>(rng.uniformInt(1, 6));
        const int value =
            static_cast<int>(rng.uniformInt(0, (1 << c.bits) - 1));
        const bool uniform = rng.bernoulli(0.5);
        c.operands = {value, uniform ? 1 : 0};

        Netlist nl;
        PulseTrace stream;
        auto &clk = nl.create<ClockSource>("clk");
        if (uniform) {
            auto &pnm = nl.create<UniformPnm>("pnm", c.bits);
            clk.out.connect(pnm.clkIn());
            pnm.out().connect(stream.input());
            pnm.epochOut().markOpen("diff fuzz: count only");
            pnm.program(value);
        } else {
            auto &pnm = nl.create<ClassicPnm>("pnm", c.bits);
            clk.out.connect(pnm.clkIn());
            pnm.out().connect(stream.input());
            pnm.epochOut().markOpen("diff fuzz: count only");
            pnm.program(value);
        }
        clk.program(kTclk, kTclk, 1ULL << static_cast<unsigned>(c.bits));
        nl.queue().run();
        c.pulse = static_cast<int>(stream.count());

        Netlist fnl;
        if (uniform) {
            auto &fpnm = fnl.create<func::UniformPnm>("pnm", c.bits);
            fpnm.program(value);
            c.func = fpnm.count();
        } else {
            auto &fpnm = fnl.create<func::ClassicPnm>("pnm", c.bits);
            fpnm.program(value);
            c.func = fpnm.count();
        }
        return c;
    });
    for (const DiffCase &c : cases)
        EXPECT_EQ(c.pulse, c.func) << describe(c);
}

TEST(Differential, UniformPnmSlotLayoutExact)
{
    // Beyond the count: the netlist's pulse times land exactly on the
    // divider-chain slot layout the functional model predicts.
    constexpr Tick kTclk = 200 * kPicosecond;
    const auto cases = runCorpus(16, [](Rng &rng) { // 256 layout cases
        DiffCase c;
        c.bits = static_cast<int>(rng.uniformInt(2, 6));
        const int value =
            static_cast<int>(rng.uniformInt(0, (1 << c.bits) - 1));
        c.operands = {value};

        Netlist nl;
        PulseTrace stream;
        auto &clk = nl.create<ClockSource>("clk");
        auto &pnm = nl.create<UniformPnm>("pnm", c.bits);
        clk.out.connect(pnm.clkIn());
        pnm.out().connect(stream.input());
        pnm.epochOut().markOpen("diff fuzz: layout only");
        pnm.program(value);
        clk.program(kTclk, kTclk, 1ULL << static_cast<unsigned>(c.bits));
        nl.queue().run();

        // A pulse for slot s leaves the divider chain after the clock
        // edge at (s + 2) * kTclk, lagging it by the TFF-chain delay of
        // whichever stage fired (69..129 ps at bits=6 -- it grows with
        // stage depth but stays below one period), so floor(t / kTclk),
        // not round-to-nearest, recovers the slot index.
        std::vector<int> slots;
        for (Tick t : stream.times())
            slots.push_back(static_cast<int>(t / kTclk - 2));
        Netlist fnl;
        auto &fpnm = fnl.create<func::UniformPnm>("pnm", c.bits);
        fpnm.program(value);
        c.pulse = slots == fpnm.slots() ? 1 : 0;
        c.func = 1;
        return c;
    });
    for (const DiffCase &c : cases)
        EXPECT_EQ(c.pulse, c.func) << describe(c);
}

TEST(Differential, ProcessingElementWithinOneSlot)
{
    const auto cases = runCorpus(64, [](Rng &rng) { // 1024 cases
        DiffCase c;
        c.bits = static_cast<int>(rng.uniformInt(3, 5));
        const EpochConfig cfg(c.bits, 30 * kPicosecond);
        const int in1 = static_cast<int>(rng.uniformInt(0, cfg.nmax()));
        const int in2 = static_cast<int>(rng.uniformInt(0, cfg.nmax()));
        const int in3 = static_cast<int>(rng.uniformInt(0, cfg.nmax()));
        c.operands = {in1, in2, in3};
        c.pulse = runPulsePe(cfg, in1, in2, in3);
        Netlist nl;
        c.func = nl.create<func::ProcessingElement>("pe", cfg)
                     .evaluate(in1, in2, in3);
        return c;
    });
    for (const DiffCase &c : cases)
        EXPECT_LE(std::llabs(c.pulse - c.func), 1) << describe(c);
}

DiffCase
dpuCase(Rng &rng, DpuMode mode)
{
    DiffCase c;
    c.bits = static_cast<int>(rng.uniformInt(4, 5));
    const EpochConfig cfg(c.bits, kDpuSlot);
    const int length = 1 << rng.uniformInt(1, 3); // 2, 4, 8
    std::vector<int> streams, ids;
    for (int i = 0; i < length; ++i) {
        streams.push_back(static_cast<int>(rng.uniformInt(0, cfg.nmax())));
        ids.push_back(static_cast<int>(rng.uniformInt(0, cfg.nmax())));
    }
    c.operands = streams;
    c.operands.insert(c.operands.end(), ids.begin(), ids.end());
    c.pulse = runPulseDpu(cfg, mode, streams, ids);
    Netlist nl;
    c.func = nl.create<func::DotProductUnit>("dpu", length, mode)
                 .evaluate(cfg, streams, ids);
    return c;
}

TEST(Differential, DpuUnipolarExact)
{
    const auto cases = runCorpus(
        64, [](Rng &rng) { return dpuCase(rng, DpuMode::Unipolar); });
    for (const DiffCase &c : cases)
        EXPECT_EQ(c.pulse, c.func) << describe(c);
}

TEST(Differential, DpuBipolarExact)
{
    const auto cases = runCorpus(
        64, [](Rng &rng) { return dpuCase(rng, DpuMode::Bipolar); });
    for (const DiffCase &c : cases)
        EXPECT_EQ(c.pulse, c.func) << describe(c);
}

// --- determinism --------------------------------------------------------------

TEST(Differential, CorpusBitIdenticalAtOneAndManyThreads)
{
    // The sweep contract (sim/sweep.hh) promises thread-count
    // independence; the fuzzer leans on it, so pin it here end to end.
    SweepOptions serial;
    serial.threads = 1;
    SweepOptions parallel;
    parallel.threads = 4;
    const auto a = runCorpus(8, unipolarMultCase, serial);
    const auto b = runCorpus(8, unipolarMultCase, parallel);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_TRUE(a[i] == b[i]) << "case " << i << ": " << describe(a[i])
                                  << " vs " << describe(b[i]);
}

} // namespace
} // namespace usfq
