/**
 * @file
 * Temporal NoC unit tests (src/noc/, docs/noc.md): plan validation and
 * placement properties, the slot-aligned latency budget, TDM window
 * coloring, closed-form fabric area against the built netlist, router
 * merger/ledger behavior, sink alignment, small-grid pulse-vs-
 * functional differentials, fabric STA route extraction, and the
 * dynamic report-column layout that fabric-scale rollups rely on.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "func/noc.hh"
#include "noc/grid.hh"
#include "noc/plan.hh"
#include "noc/sta.hh"
#include "sim/elaborate.hh"
#include "sim/netlist.hh"
#include "util/logging.hh"

namespace usfq
{
namespace
{

noc::GridSpec
meshSpec(int rows, int cols, bool shared = false,
         DpuMode mode = DpuMode::Bipolar)
{
    noc::GridSpec spec;
    spec.rows = rows;
    spec.cols = cols;
    spec.kind = noc::TileKind::Dpu;
    spec.taps = 2;
    spec.bits = 4;
    spec.mode = mode;
    spec.flows = noc::columnCollectFlows(rows, cols);
    spec.sharedSinkWindows = shared;
    return spec;
}

TEST(NocPlan, ValidateRejectsBadSpecs)
{
    std::string err;

    noc::GridSpec spec = meshSpec(2, 2);
    EXPECT_TRUE(spec.validate(&err)) << err;

    spec.rows = 0;
    EXPECT_FALSE(spec.validate(&err));
    EXPECT_NE(err.find("rows and cols"), std::string::npos);

    spec = meshSpec(2, 2);
    spec.flows = {{1, 1}};
    EXPECT_FALSE(spec.validate(&err));
    EXPECT_NE(err.find("src and dst must differ"), std::string::npos);

    spec = meshSpec(2, 2);
    spec.flows = {{2, 0}, {2, 1}};
    EXPECT_FALSE(spec.validate(&err));
    EXPECT_NE(err.find("one flow per source"), std::string::npos);

    spec = meshSpec(2, 2);
    spec.flows = {{4, 0}};
    EXPECT_FALSE(spec.validate(&err));
    EXPECT_NE(err.find("tile ids"), std::string::npos);
}

TEST(NocPlan, RoutesAreXYAndLatenciesSlotAligned)
{
    const noc::GridPlan plan = noc::planGrid(meshSpec(4, 4));
    const Tick slot = plan.cfg.slotWidth();
    ASSERT_EQ(plan.flows.size(), 12u);

    EXPECT_EQ(plan.routerLatency % slot, 0);
    EXPECT_EQ(plan.linkLatency % slot, 0);
    EXPECT_EQ(plan.windowPitch, plan.cfg.duration() + plan.maxFlowLatency);

    for (const noc::FlowPlan &f : plan.flows) {
        // XY dimension order: column moves (E/W) never follow a row
        // move (N/S).
        bool sawRowMove = false;
        for (std::size_t k = 0; k < f.routers.size(); ++k) {
            const int out = f.outDir[k];
            if (out == noc::kDirN || out == noc::kDirS)
                sawRowMove = true;
            if (out == noc::kDirE || out == noc::kDirW) {
                EXPECT_FALSE(sawRowMove) << "flow " << f.spec.src;
            }
        }
        EXPECT_EQ(f.routers.front(), f.spec.src);
        EXPECT_EQ(f.routers.back(), f.spec.dst);
        EXPECT_EQ(f.inDir.front(), noc::kDirLocal);
        EXPECT_EQ(f.outDir.back(), noc::kDirLocal);

        // Equalized: latency is a slot multiple and remainingAfter
        // walks down to zero at the sink.
        EXPECT_EQ(f.latency % slot, 0);
        EXPECT_LE(f.latency, plan.maxFlowLatency);
        const int flow = static_cast<int>(&f - plan.flows.data());
        EXPECT_EQ(plan.remainingAfter(
                      flow, static_cast<int>(f.routers.size()) - 1),
                  0);
    }
}

TEST(NocPlan, ChannelSharingFlowsGetDisjointWindows)
{
    const noc::GridPlan plan = noc::planGrid(meshSpec(4, 1));

    // All three flows ride the same column, so the TDM coloring must
    // give each its own window: mergers never arbitrate.
    std::set<int> windows;
    for (const noc::FlowPlan &f : plan.flows)
        windows.insert(f.window);
    EXPECT_EQ(windows.size(), plan.flows.size());
    EXPECT_EQ(plan.windows, static_cast<int>(windows.size()));
}

TEST(NocPlan, SharedSinkWindowsGroupBySink)
{
    noc::GridSpec spec = meshSpec(3, 3, /*shared=*/true);
    spec.flows = noc::hotspotFlows(3, 3, /*dst=*/4);
    const noc::GridPlan plan = noc::planGrid(spec);

    // Every flow ends at the hotspot, so they all share one window.
    for (const noc::FlowPlan &f : plan.flows)
        EXPECT_EQ(f.window, 0);
    EXPECT_EQ(plan.windows, 1);
}

TEST(NocPlan, FabricJJsMatchesBuiltNetlist)
{
    const noc::GridPlan plan = noc::planGrid(meshSpec(3, 2));
    Netlist nl("noc");
    noc::TileGrid grid(nl, plan);
    grid.programOperands(noc::drawTileOperands(plan, 1));
    nl.elaborate();

    // Routers own their outgoing links in the rollup (dotted names),
    // so summing the r*_* top-level nodes isolates fabric area from
    // tiles / injectors / sinks.
    const HierReport rollup = nl.report();
    long long fabric = 0;
    for (const auto &node : rollup.root.children)
        if (!node.name.empty() && node.name[0] == 'r')
            fabric += node.jj;
    EXPECT_EQ(fabric, noc::fabricJJs(plan));
    EXPECT_GT(fabric, 0);
    EXPECT_LT(fabric, nl.totalJJs()); // tiles dominate
}

TEST(NocGrid, CollisionFreeScheduleDeliversEveryFlit)
{
    const noc::GridPlan plan = noc::planGrid(meshSpec(2, 2));
    const noc::PulseFabricResult res = noc::runPulseFabric(plan, 7);

    EXPECT_EQ(res.latePulses, 0u);
    EXPECT_EQ(res.misaligned, 0u);
    EXPECT_EQ(res.obs.collisions, 0u);

    // Everything injected arrives: delivered == sum of tile counts.
    std::uint64_t injected = 0;
    for (int c :
         func::nocTileCounts(plan, noc::drawTileOperands(plan, 7)))
        injected += static_cast<std::uint64_t>(c);
    EXPECT_EQ(res.obs.delivered, injected);
}

TEST(NocGrid, SharedWindowLedgerCountsMergerLoss)
{
    noc::GridSpec spec = meshSpec(3, 3, /*shared=*/true,
                                  DpuMode::Unipolar);
    spec.flows = noc::hotspotFlows(3, 3, /*dst=*/4);
    const noc::GridPlan plan = noc::planGrid(spec);
    const noc::PulseFabricResult res = noc::runPulseFabric(plan, 3);

    EXPECT_EQ(res.latePulses, 0u);
    EXPECT_EQ(res.misaligned, 0u);
    EXPECT_GT(res.obs.collisions, 0u); // arbitration engaged

    // Conservation: delivered + ledgered loss == injected.
    std::uint64_t injected = 0;
    for (int c :
         func::nocTileCounts(plan, noc::drawTileOperands(plan, 3)))
        injected += static_cast<std::uint64_t>(c);
    EXPECT_EQ(res.obs.delivered + res.obs.collisions, injected);
}

TEST(NocDifferential, SmallGridsMatchFlitForFlit)
{
    const noc::GridSpec specs[] = {
        meshSpec(2, 2),
        meshSpec(4, 1),
        meshSpec(2, 3, false, DpuMode::Unipolar),
    };
    for (const noc::GridSpec &spec : specs) {
        const noc::GridPlan plan = noc::planGrid(spec);
        for (std::uint64_t seed = 1; seed <= 4; ++seed) {
            const noc::PulseFabricResult pulse =
                noc::runPulseFabric(plan, seed);
            const noc::FabricObservation func =
                func::evaluateFabricSeed(plan, seed);
            EXPECT_EQ(pulse.obs, func)
                << spec.rows << "x" << spec.cols << " seed " << seed;
        }
    }
}

TEST(NocSta, AnalyzeFabricExtractsCriticalRoute)
{
    const noc::GridPlan plan = noc::planGrid(meshSpec(3, 3));
    Netlist nl("noc");
    noc::TileGrid grid(nl, plan);
    grid.programOperands(noc::drawTileOperands(plan, 1));
    nl.elaborate();

    const noc::FabricStaReport rep = noc::analyzeFabric(nl, grid);
    ASSERT_EQ(rep.routes.size(), plan.flows.size());
    ASSERT_GE(rep.criticalFlow, 0);
    EXPECT_EQ(rep.criticalLatency,
              plan.flows[static_cast<std::size_t>(rep.criticalFlow)]
                  .latency);
    EXPECT_EQ(rep.criticalLatency, plan.maxFlowLatency);
    EXPECT_GT(rep.maxRouteRateHz(), 0.0);

    const std::string route =
        noc::describeRoute(plan, rep.criticalFlow);
    EXPECT_NE(route.find("t2_"), std::string::npos) << route;
    EXPECT_NE(route.find("-> t0_"), std::string::npos) << route;
}

/**
 * Satellite regression: the rollup table must keep its columns
 * aligned however wide the cells get -- fabric-scale reports carry
 * hundred-million-JJ totals and deeply indented labels that overflow
 * any fixed-width layout.
 */
TEST(HierReportFormat, ColumnsStayAlignedAtFabricScale)
{
    HierReport rep;
    rep.root.name = "noc";
    rep.root.jj = 123456789;
    rep.root.jjChildren = 123456789;
    rep.root.switches = 987654321012345ull;
    rep.root.inPulses = 55555555555ull;
    rep.root.outPulses = 44444444444ull;
    rep.root.lost = 3;

    HierReport::Node tile;
    tile.name = "a_rather_long_tile_instance_name_t15_15";
    tile.jj = 7;
    tile.switches = 12;
    HierReport::Node leaf;
    leaf.name = "m";
    leaf.jj = 123456789;
    tile.children.push_back(leaf);
    rep.root.children.push_back(tile);

    std::ostringstream os;
    rep.print(os);
    const std::string text = os.str();

    // Parse the table back: every row must have exactly one label plus
    // six numeric columns (no slack column pre-STA), and each column's
    // right edge must line up across every row.
    std::istringstream lines(text);
    std::string line;
    ASSERT_TRUE(std::getline(lines, line));
    EXPECT_NE(line.find("block"), std::string::npos);
    EXPECT_NE(line.find("switches"), std::string::npos);
    EXPECT_EQ(line.find("slack"), std::string::npos);

    std::vector<std::size_t> edges;
    for (std::size_t i = 0; i < line.size(); ++i)
        if (line[i] != ' ' && (i + 1 == line.size() || line[i + 1] == ' '))
            edges.push_back(i);
    ASSERT_EQ(edges.size(), 7u); // label + 6 metric columns

    int rows = 0;
    while (std::getline(lines, line)) {
        ++rows;
        // Right-aligned numeric cells end exactly where the headers do
        // (the label column is left-aligned, so skip edges[0]).
        for (std::size_t c = 1; c < edges.size(); ++c) {
            ASSERT_LT(edges[c], line.size()) << line;
            EXPECT_NE(line[edges[c]], ' ') << line;
            EXPECT_TRUE(edges[c] + 1 == line.size() ||
                        line[edges[c] + 1] == ' ')
                << line;
        }
        // No two columns ever fused: the widest cell still has a
        // separator on its left.
        if (const std::size_t at = line.find("987654321012345");
            at != std::string::npos) {
            EXPECT_EQ(line[at - 1], ' ') << line;
        }
    }
    EXPECT_EQ(rows, 3); // root, tile, leaf
}

} // namespace
} // namespace usfq
