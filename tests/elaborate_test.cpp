/**
 * @file
 * Tests of the phase-2 elaboration pipeline: every structural lint
 * rule firing and being waived, the hard failure modes (unbound emit,
 * connect-after-elaborate, unwaived findings), idempotent elaboration
 * over the packed delivery path, and the hierarchical metrics rollup
 * arithmetic (see docs/elaboration.md).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <utility>

#include "sfq/cells.hh"
#include "sfq/sources.hh"
#include "sim/netlist.hh"
#include "sim/trace.hh"

namespace usfq
{
namespace
{

/**
 * Minimal registered cell: one input, one output, a configurable
 * internal delay (2 "JJs", 2 switches per pulse).
 */
class TestCell : public Component
{
  public:
    TestCell(Netlist &nl, std::string cell_name, Tick internal_delay = 0)
        : Component(nl, std::move(cell_name)),
          in(name() + ".in",
             [this](Tick t) {
                 recordSwitches(2);
                 out.emit(t + delay);
             }),
          out(name() + ".out", &queue()),
          delay(internal_delay)
    {
        addPorts(in, out);
    }

    int jjCount() const override { return 2; }
    Tick minInternalDelay() const override { return delay; }

    InputPort in;
    OutputPort out;

  private:
    Tick delay;
};

/** A registered cell whose output was never bound to an event queue. */
class UnboundCell : public Component
{
  public:
    UnboundCell(Netlist &nl, std::string cell_name)
        : Component(nl, std::move(cell_name))
    {
        addPort(out);
    }

    int jjCount() const override { return 2; }

    OutputPort out;
};

/** Unwaived findings for one rule. */
std::size_t
countErrors(const std::vector<LintFinding> &findings, LintRule rule)
{
    std::size_t n = 0;
    for (const auto &f : findings)
        n += (f.rule == rule && !f.waived) ? 1 : 0;
    return n;
}

/** Waived findings for one rule. */
std::size_t
countWaived(const std::vector<LintFinding> &findings, LintRule rule)
{
    std::size_t n = 0;
    for (const auto &f : findings)
        n += (f.rule == rule && f.waived) ? 1 : 0;
    return n;
}

// --- lint rules ------------------------------------------------------------

TEST(ElaborateLint, DanglingInputAndOpenOutput)
{
    Netlist nl;
    auto &a = nl.create<TestCell>("a");
    auto &b = nl.create<TestCell>("b");
    a.out.connect(b.in);

    const auto findings = nl.lint();
    // a.in has no driver; b.out has nowhere to send pulses.
    EXPECT_EQ(countErrors(findings, LintRule::DanglingInput), 1u);
    EXPECT_EQ(countErrors(findings, LintRule::OpenOutput), 1u);
    EXPECT_EQ(countErrors(findings, LintRule::IllegalFanout), 0u);
    EXPECT_EQ(countErrors(findings, LintRule::ZeroDelayCycle), 0u);
}

TEST(ElaborateLint, UnboundOutput)
{
    Netlist nl;
    nl.create<UnboundCell>("u");
    const auto findings = nl.lint();
    EXPECT_EQ(countErrors(findings, LintRule::UnboundOutput), 1u);
}

TEST(ElaborateLint, IllegalFanoutNeedsASplitter)
{
    Netlist nl;
    auto &a = nl.create<TestCell>("a");
    auto &b = nl.create<TestCell>("b");
    auto &c = nl.create<TestCell>("c");
    a.out.connect(b.in);
    a.out.connect(c.in);

    EXPECT_EQ(countErrors(nl.lint(), LintRule::IllegalFanout), 1u);

    // The same two loads behind a splitter are legal: its outputs are
    // the sanctioned fan-out point.
    Netlist nl2;
    auto &a2 = nl2.create<TestCell>("a");
    auto &s = nl2.create<Splitter>("s");
    auto &b2 = nl2.create<TestCell>("b");
    auto &c2 = nl2.create<TestCell>("c");
    a2.out.connect(s.in);
    s.out1.connect(b2.in);
    s.out2.connect(c2.in);
    EXPECT_EQ(countErrors(nl2.lint(), LintRule::IllegalFanout), 0u);
}

TEST(ElaborateLint, ObserverConnectionsDoNotCountAsLoads)
{
    Netlist nl;
    auto &a = nl.create<TestCell>("a");
    auto &b = nl.create<TestCell>("b");
    PulseTrace probe;
    a.out.connect(b.in);
    a.out.connect(probe.input()); // markObserver()'d by PulseTrace
    EXPECT_EQ(countErrors(nl.lint(), LintRule::IllegalFanout), 0u);
}

TEST(ElaborateLint, ZeroDelayCycle)
{
    Netlist nl;
    auto &a = nl.create<TestCell>("a", 0);
    auto &b = nl.create<TestCell>("b", 0);
    a.out.connect(b.in);
    b.out.connect(a.in);
    EXPECT_EQ(countErrors(nl.lint(), LintRule::ZeroDelayCycle), 1u);

    // One picosecond anywhere in the loop breaks the livelock.
    Netlist nl2;
    auto &a2 = nl2.create<TestCell>("a", kPicosecond);
    auto &b2 = nl2.create<TestCell>("b", 0);
    a2.out.connect(b2.in);
    b2.out.connect(a2.in);
    EXPECT_EQ(countErrors(nl2.lint(), LintRule::ZeroDelayCycle), 0u);
}

// --- waivers ---------------------------------------------------------------

TEST(ElaborateLint, PortWaiversSuppressErrorsWithAReason)
{
    Netlist nl;
    auto &a = nl.create<TestCell>("a");
    auto &b = nl.create<TestCell>("b");
    a.out.connect(b.in);
    a.in.markOptional("driven by the test harness via receive()");
    b.out.markOpen("terminator: pulses are deliberately discarded");

    const auto findings = nl.lint();
    EXPECT_EQ(countErrors(findings, LintRule::DanglingInput), 0u);
    EXPECT_EQ(countErrors(findings, LintRule::OpenOutput), 0u);
    EXPECT_EQ(countWaived(findings, LintRule::DanglingInput), 1u);
    EXPECT_EQ(countWaived(findings, LintRule::OpenOutput), 1u);
    for (const auto &f : findings)
        if (f.waived)
            EXPECT_FALSE(f.waiverReason.empty()) << f.message;
}

TEST(ElaborateLint, BlanketWaiversCoverAreaStudies)
{
    Netlist nl;
    nl.create<TestCell>("a"); // fully unwired
    nl.waive(LintRule::DanglingInput, "area study: unwired on purpose");
    nl.waive(LintRule::OpenOutput, "area study: unwired on purpose");

    const auto &report = nl.elaborate();
    EXPECT_EQ(report.errors(), 0u);
    EXPECT_EQ(countWaived(report.findings, LintRule::DanglingInput), 1u);
    EXPECT_EQ(countWaived(report.findings, LintRule::OpenOutput), 1u);
}

// --- hard failure modes ----------------------------------------------------

TEST(ElaborateDeath, UnboundEmitIsFatal)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    Netlist nl;
    auto &u = nl.create<UnboundCell>("u");
    EXPECT_DEATH(u.out.emitNow(), "unbound");
}

TEST(ElaborateDeath, ElaborationFailsOnUnwaivedFindings)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    Netlist nl;
    nl.create<TestCell>("lonely");
    EXPECT_DEATH(nl.elaborate(), "lint");
}

TEST(ElaborateDeath, ConnectAfterElaborateIsFatal)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    Netlist nl;
    auto &a = nl.create<TestCell>("a", kPicosecond);
    auto &b = nl.create<TestCell>("b", kPicosecond);
    a.out.connect(b.in);
    a.in.markOptional("test stimulus via receive()");
    b.out.markOpen("test terminator");
    nl.elaborate();
    EXPECT_DEATH(b.out.connect(a.in), "elaborat");
}

// --- elaboration and the packed path ---------------------------------------

TEST(Elaborate, IdempotentAndRunsThePackedPath)
{
    Netlist nl;
    auto &src = nl.create<PulseSource>("src");
    auto &a = nl.create<TestCell>("a", kPicosecond);
    auto &b = nl.create<TestCell>("b", kPicosecond);
    PulseTrace out;
    src.out.connect(a.in);
    a.out.connect(b.in, 2 * kPicosecond);
    b.out.connect(out.input());
    src.pulseAt(10 * kPicosecond);
    src.pulseAt(20 * kPicosecond);

    EXPECT_FALSE(nl.elaborated());
    const ElabReport &first = nl.elaborate();
    EXPECT_TRUE(nl.elaborated());
    EXPECT_EQ(first.errors(), 0u);
    EXPECT_EQ(first.numEdges, 3u);

    // Second elaborate is the cached report, not a re-run.
    const ElabReport &second = nl.elaborate();
    EXPECT_EQ(&first, &second);

    nl.run();
    ASSERT_EQ(out.count(), 2u);
    // src -> a (1 ps cell) -> 2 ps wire -> b (1 ps cell).
    EXPECT_EQ(out.times().front(), 14 * kPicosecond);
    EXPECT_EQ(b.out.pulseCount(), 2u);
}

TEST(Elaborate, RunElaboratesAutomatically)
{
    Netlist nl;
    auto &src = nl.create<PulseSource>("src");
    auto &a = nl.create<TestCell>("a", kPicosecond);
    PulseTrace out;
    src.out.connect(a.in);
    a.out.connect(out.input());
    src.pulseAt(kPicosecond);
    nl.run();
    EXPECT_TRUE(nl.elaborated());
    EXPECT_EQ(out.count(), 1u);
}

// --- hierarchical rollup ---------------------------------------------------

/** jjChildren must equal the sum of the children's inclusive counts. */
void
verifyChildSums(const HierReport::Node &node)
{
    int child_jj = 0;
    std::uint64_t child_switches = 0, child_in = 0, child_out = 0,
                  child_lost = 0;
    for (const auto &c : node.children) {
        verifyChildSums(c);
        child_jj += c.jj;
        child_switches += c.switches;
        child_in += c.inPulses;
        child_out += c.outPulses;
        child_lost += c.lost;
    }
    EXPECT_EQ(node.jjChildren, child_jj) << node.name;
    if (!node.children.empty()) {
        // Subtree aggregates contain at least the children's share;
        // the difference is the node's own (glue) contribution.
        EXPECT_GE(node.switches, child_switches) << node.name;
        EXPECT_GE(node.inPulses, child_in) << node.name;
        EXPECT_GE(node.outPulses, child_out) << node.name;
        EXPECT_GE(node.lost, child_lost) << node.name;
    }
}

TEST(HierRollup, ChildSumsMatchParent)
{
    Netlist nl;
    auto &src = nl.create<PulseSource>("src");
    TestCell *a = nullptr;
    TestCell *b = nullptr;
    {
        auto grp = nl.scope("grp");
        a = &nl.create<TestCell>("a", kPicosecond);
        b = &nl.create<TestCell>("b", kPicosecond);
    }
    auto &c = nl.create<TestCell>("c", kPicosecond);
    PulseTrace out;
    src.out.connect(a->in);
    a->out.connect(b->in);
    b->out.connect(c.in);
    c.out.connect(out.input());
    src.pulseAt(10 * kPicosecond);
    src.pulseAt(30 * kPicosecond);
    nl.run();

    const HierReport rollup = nl.report();
    verifyChildSums(rollup.root);

    // Flat totals: root aggregates must match the netlist counters.
    EXPECT_EQ(rollup.root.jj, nl.totalJJs());
    EXPECT_EQ(rollup.root.switches, nl.totalSwitches());

    // The scope node: two 2-JJ cells, 2 pulses through each.
    ASSERT_EQ(rollup.root.children.size(), 3u); // src, grp, c
    const auto &grp = rollup.root.children[1];
    EXPECT_EQ(grp.name, "grp");
    ASSERT_EQ(grp.children.size(), 2u);
    EXPECT_EQ(grp.jj, 4);
    EXPECT_EQ(grp.jjChildren, 4);
    EXPECT_EQ(grp.switches, 8u);  // 2 cells x 2 pulses x 2 switches
    EXPECT_EQ(grp.inPulses, 4u);  // 2 pulses into each of a and b
    EXPECT_EQ(grp.outPulses, 4u);
    EXPECT_EQ(grp.lost, 0u);
}

TEST(HierRollup, MergerCollisionsShowUpAsLostPulses)
{
    Netlist nl;
    auto &sa = nl.create<PulseSource>("sa");
    auto &sb = nl.create<PulseSource>("sb");
    auto &m = nl.create<Merger>("m");
    PulseTrace out;
    sa.out.connect(m.inA);
    sb.out.connect(m.inB);
    m.out.connect(out.input());
    // Coincident arrivals: one pulse is absorbed.
    sa.pulseAt(10 * kPicosecond);
    sb.pulseAt(10 * kPicosecond);
    nl.run();

    const HierReport rollup = nl.report();
    EXPECT_EQ(rollup.root.lost, 1u);
    EXPECT_EQ(out.count(), 1u);
}

} // namespace
} // namespace usfq
