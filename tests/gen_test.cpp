/**
 * @file
 * Generator unit tier (ctest label `gen`): the DesignSpec vocabulary
 * (JSON round trip, hash determinism, validation), the STA-guided
 * balancing pass (convergence, budget exhaustion, infeasibility) and
 * the inserted-JJ accounting contract -- jjCount(), the closed form
 * jjsFor(), Netlist::totalJJs() and the hierarchical report() rollup
 * must all agree, and the balancing overhead must be exactly the
 * plan's insertedJJ().  See docs/synthesis.md.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "gen/balance.hh"
#include "gen/datapath.hh"
#include "gen/functional.hh"
#include "gen/spec.hh"
#include "sfq/params.hh"
#include "sim/netlist.hh"
#include "sim/trace.hh"
#include "util/json.hh"
#include "util/random.hh"

namespace usfq::gen
{
namespace
{

/** Round-trip a spec through its JSON object form. */
DesignSpec
roundTrip(const DesignSpec &spec)
{
    std::ostringstream os;
    JsonWriter w(os);
    designSpecToJson(spec, w);
    JsonValue doc;
    std::string err;
    EXPECT_TRUE(parseJson(os.str(), doc, &err)) << err;
    DesignSpec back;
    EXPECT_TRUE(designSpecFromJson(doc, back, &err)) << err;
    return back;
}

/** A spec with every field off its default. */
DesignSpec
fullyCustomSpec()
{
    DesignSpec s;
    s.lanes = 16;
    s.bits = 4;
    s.clockPeriodPs = 16;
    s.encoding = StreamEncoding::Bipolar;
    s.tree = TreeKind::Merger;
    s.shape = LaneShape::Random;
    s.balance = BalanceStyle::Jtl;
    s.maxDividers = 2;
    s.skewStep = 3;
    s.shapeSeed = 0xfeedbeefULL;
    s.balanceBudgetJJ = 512;
    return s;
}

TEST(GenSpec, JsonRoundTripDefaults)
{
    const DesignSpec s;
    EXPECT_EQ(roundTrip(s), s);
}

TEST(GenSpec, JsonRoundTripCustom)
{
    const DesignSpec s = fullyCustomSpec();
    EXPECT_EQ(roundTrip(s), s);
}

TEST(GenSpec, JsonAbsentFieldsKeepDefaults)
{
    JsonValue doc;
    std::string err;
    ASSERT_TRUE(parseJson("{}", doc, &err)) << err;
    DesignSpec out;
    ASSERT_TRUE(designSpecFromJson(doc, out, &err)) << err;
    EXPECT_EQ(out, DesignSpec{});
}

TEST(GenSpec, JsonRejectsUnknownEnum)
{
    JsonValue doc;
    std::string err;
    ASSERT_TRUE(parseJson("{\"tree\": \"pyramid\"}", doc, &err));
    DesignSpec out;
    EXPECT_FALSE(designSpecFromJson(doc, out, &err));
    EXPECT_NE(err.find("pyramid"), std::string::npos) << err;
}

TEST(GenSpec, ValidateRejectsOutOfRange)
{
    DesignSpec s;
    s.lanes = 6; // not a power of two
    EXPECT_FALSE(s.validate());
    s = DesignSpec{};
    s.lanes = 128;
    EXPECT_FALSE(s.validate());
    s = DesignSpec{};
    s.bits = 0;
    EXPECT_FALSE(s.validate());
    s = DesignSpec{};
    s.clockPeriodPs = 0;
    EXPECT_FALSE(s.validate());
    s = DesignSpec{};
    s.maxDividers = 4;
    EXPECT_FALSE(s.validate());
    // Bipolar complement needs the inverter capture stage; the
    // Register balancing style would claim the same slot.
    s = DesignSpec{};
    s.encoding = StreamEncoding::Bipolar;
    s.balance = BalanceStyle::Register;
    std::string err;
    EXPECT_FALSE(s.validate(&err));
    EXPECT_FALSE(err.empty());
}

TEST(GenSpec, HashDeterministicAndFieldSensitive)
{
    const DesignSpec base = fullyCustomSpec();
    const std::uint64_t h0 = designSpecHash(1469598103934665603ULL, base);
    EXPECT_EQ(designSpecHash(1469598103934665603ULL, base), h0);

    // Every result-affecting field must move the hash.
    std::vector<DesignSpec> mutants;
    for (int i = 0; i < 10; ++i)
        mutants.push_back(base);
    mutants[0].lanes = 8;
    mutants[1].bits = 5;
    mutants[2].clockPeriodPs = 20;
    mutants[3].encoding = StreamEncoding::Unipolar;
    mutants[4].tree = TreeKind::Tff2;
    mutants[5].shape = LaneShape::Skewed;
    mutants[6].balance = BalanceStyle::Register;
    mutants[7].maxDividers = 1;
    mutants[8].skewStep = 2;
    mutants[9].shapeSeed = 2;
    std::set<std::uint64_t> hashes{h0};
    for (const DesignSpec &m : mutants)
        hashes.insert(designSpecHash(1469598103934665603ULL, m));
    EXPECT_EQ(hashes.size(), mutants.size() + 1)
        << "a field mutation collided with the base hash";
}

TEST(GenSpec, RandomSpecsAlwaysValid)
{
    Rng rng(123);
    for (int i = 0; i < 200; ++i) {
        const DesignSpec s = randomDesignSpec(rng);
        std::string err;
        EXPECT_TRUE(s.validate(&err)) << err;
    }
}

TEST(GenSpec, DerivedLaneShapes)
{
    DesignSpec s;
    s.shape = LaneShape::Balanced;
    for (int l = 0; l < s.lanes; ++l) {
        EXPECT_EQ(s.dividersOf(l), s.dividersOf(0));
        EXPECT_EQ(s.skewJtlsOf(l), s.skewJtlsOf(0));
    }
    s.shape = LaneShape::Random;
    s.shapeSeed = 7;
    std::vector<int> divs, skews;
    for (int l = 0; l < s.lanes; ++l) {
        divs.push_back(s.dividersOf(l));
        skews.push_back(s.skewJtlsOf(l));
        EXPECT_GE(divs.back(), 0);
        EXPECT_LE(divs.back(), s.maxDividers);
    }
    // Deterministic in the seed.
    for (int l = 0; l < s.lanes; ++l) {
        EXPECT_EQ(s.dividersOf(l), divs[static_cast<std::size_t>(l)]);
        EXPECT_EQ(s.skewJtlsOf(l), skews[static_cast<std::size_t>(l)]);
    }
}

// --- the balancing pass ----------------------------------------------------

TEST(GenBalance, BalancedShapeConvergesWithoutPadding)
{
    DesignSpec s; // Balanced shape, Unipolar, Jtl: nothing to fix.
    const BalanceOutcome bo = balanceDesign(s);
    ASSERT_TRUE(bo.converged()) << bo.detail;
    EXPECT_TRUE(bo.plan.empty());
    EXPECT_EQ(bo.insertedJJ, 0);
    EXPECT_EQ(bo.residualSkew, 0);
    EXPECT_GT(bo.maxStreamRateHz, 0.0);
    EXPECT_GT(bo.requiredStreamSpacing, 0);
}

TEST(GenBalance, SkewedShapeConvergesWithPadding)
{
    DesignSpec s;
    s.shape = LaneShape::Skewed;
    s.skewStep = 2;
    s.maxDividers = 2;
    const BalanceOutcome bo = balanceDesign(s);
    ASSERT_TRUE(bo.converged()) << bo.detail;
    EXPECT_FALSE(bo.plan.empty());
    EXPECT_GT(bo.insertedJJ, 0);
    EXPECT_EQ(bo.insertedJJ, bo.plan.insertedJJ());
    EXPECT_EQ(bo.residualSkew, 0)
        << "converged plans align the tree leaves exactly";
    EXPECT_LE(bo.insertedJJ, s.balanceBudgetJJ);

    // The pass is a pure function of the spec.
    const BalanceOutcome again = balanceDesign(s);
    EXPECT_EQ(again.plan, bo.plan);
    EXPECT_EQ(again.iterations, bo.iterations);
}

TEST(GenBalance, RegisterStyleAbsorbsSkew)
{
    DesignSpec s;
    s.balance = BalanceStyle::Register;
    s.shape = LaneShape::Skewed;
    s.skewStep = 2;
    s.clockPeriodPs = 20;
    const BalanceOutcome bo = balanceDesign(s);
    ASSERT_TRUE(bo.converged()) << bo.detail;
    EXPECT_EQ(bo.residualSkew, 0);
    EXPECT_GT(bo.insertedJJ, 0)
        << "capture-band steering needs tap padding on a skewed shape";

    // The re-timing stage itself costs one DFF per lane of base area,
    // plus the extra splitter fan-out feeding each lane's clock tap.
    DesignSpec j = s;
    j.balance = BalanceStyle::Jtl;
    EXPECT_EQ(StreamDatapath::jjsFor(s, {}) -
                  StreamDatapath::jjsFor(j, {}),
              s.lanes * (cell::kDffJJs + cell::kSplitterJJs));
    const BalanceOutcome jo = balanceDesign(j);
    ASSERT_TRUE(jo.converged()) << jo.detail;
}

TEST(GenBalance, BudgetExhaustionReported)
{
    DesignSpec s;
    s.shape = LaneShape::Skewed;
    s.skewStep = 4;
    s.balanceBudgetJJ = 2;
    const BalanceOutcome bo = balanceDesign(s);
    EXPECT_EQ(bo.status, BalanceStatus::BudgetExhausted);
    EXPECT_GT(bo.insertedJJ, s.balanceBudgetJJ);
    EXPECT_NE(bo.detail.find("budget"), std::string::npos) << bo.detail;
}

TEST(GenBalance, PeriodGatesAreInfeasible)
{
    // Balancer below the BFF dead time.
    DesignSpec s;
    s.tree = TreeKind::Balancer;
    s.clockPeriodPs =
        static_cast<int>(cell::kBffDeadTime / kPicosecond) - 1;
    BalanceOutcome bo = balanceDesign(s);
    EXPECT_EQ(bo.status, BalanceStatus::Infeasible);
    EXPECT_NE(bo.detail.find("dead time"), std::string::npos)
        << bo.detail;

    // Merger inside the collision window.
    s = DesignSpec{};
    s.tree = TreeKind::Merger;
    s.clockPeriodPs =
        static_cast<int>(cell::kMergerCollisionWindow / kPicosecond);
    bo = balanceDesign(s);
    EXPECT_EQ(bo.status, BalanceStatus::Infeasible);
    EXPECT_NE(bo.detail.find("collision window"), std::string::npos)
        << bo.detail;

    // Tff2 below the TFF2 recovery.
    s = DesignSpec{};
    s.tree = TreeKind::Tff2;
    s.clockPeriodPs =
        static_cast<int>(cell::kTff2Delay / kPicosecond) - 1;
    bo = balanceDesign(s);
    EXPECT_EQ(bo.status, BalanceStatus::Infeasible);
    EXPECT_NE(bo.detail.find("recovery"), std::string::npos)
        << bo.detail;

    // At exactly the gate everything is legal again.
    s = DesignSpec{};
    s.tree = TreeKind::Balancer;
    s.clockPeriodPs =
        static_cast<int>(cell::kBffDeadTime / kPicosecond);
    bo = balanceDesign(s);
    EXPECT_TRUE(bo.converged()) << bo.detail;
}

TEST(GenBalance, ExactBudgetBoundaryConverges)
{
    // A budget of exactly the needed padding must converge: the gate
    // is `inserted > budget`, not `>=`.
    DesignSpec s;
    s.shape = LaneShape::Skewed;
    s.skewStep = 2;
    const BalanceOutcome ref = balanceDesign(s);
    ASSERT_TRUE(ref.converged()) << ref.detail;
    ASSERT_GT(ref.insertedJJ, 0);
    s.balanceBudgetJJ = ref.insertedJJ;
    const BalanceOutcome tight = balanceDesign(s);
    EXPECT_TRUE(tight.converged()) << tight.detail;
    EXPECT_EQ(tight.insertedJJ, ref.insertedJJ);
}

// --- inserted-JJ accounting ------------------------------------------------

TEST(GenArea, PlanOverheadIsExactlyInsertedJJ)
{
    DesignSpec s;
    s.shape = LaneShape::Skewed;
    s.skewStep = 2;
    s.maxDividers = 2;
    const BalanceOutcome bo = balanceDesign(s);
    ASSERT_TRUE(bo.converged()) << bo.detail;
    const int bare = StreamDatapath::jjsFor(s, {});
    const int padded = StreamDatapath::jjsFor(s, bo.plan);
    EXPECT_EQ(padded - bare, bo.insertedJJ);
}

TEST(GenArea, CountRollupAgreesEverywhere)
{
    for (const TreeKind tree :
         {TreeKind::Balancer, TreeKind::Merger, TreeKind::Tff2}) {
        DesignSpec s;
        s.tree = tree;
        s.shape = LaneShape::Skewed;
        s.skewStep = 1;
        s.clockPeriodPs = tree == TreeKind::Tff2 ? 24 : 16;
        const BalanceOutcome bo = balanceDesign(s);
        ASSERT_TRUE(bo.converged())
            << treeKindName(tree) << ": " << bo.detail;

        Netlist nl("acct");
        auto &dp = nl.create<StreamDatapath>("dp", s, bo.plan);
        PulseTrace tr("t");
        tr.input().markObserver();
        dp.out().connect(tr.input());
        dp.programEpoch({s.nmax(), {}});
        nl.run();

        const int closed = StreamDatapath::jjsFor(s, bo.plan);
        EXPECT_EQ(dp.jjCount(), closed) << treeKindName(tree);
        EXPECT_EQ(nl.totalJJs(), closed) << treeKindName(tree);
        const HierReport rep = nl.report();
        EXPECT_EQ(rep.root.jj, closed) << treeKindName(tree);
    }
}

TEST(GenArea, LanePadDelayMatchesJjCost)
{
    LanePad pad;
    pad.addPre(3 * cell::kJtlDelay);
    EXPECT_EQ(pad.pre, 3);
    EXPECT_EQ(pad.preTrim, 0);
    EXPECT_EQ(pad.preDelay(), 3 * cell::kJtlDelay);
    pad.addPost(cell::kJtlDelay + 500);
    EXPECT_EQ(pad.post, 1);
    EXPECT_EQ(pad.postTrim, 500);
    EXPECT_EQ(pad.postDelay(), cell::kJtlDelay + 500);
    // Unit JTLs plus one trim JTL for the sub-unit remainder.
    EXPECT_EQ(pad.jjs(), (3 + 1 + 1) * cell::kJtlJJs);
}

// --- the functional mirror (spot checks; the differential tier does
// --- the heavy lifting) ----------------------------------------------------

TEST(GenFunctional, LaneSlotsAlgebra)
{
    DesignSpec s;
    s.maxDividers = 2;
    s.shape = LaneShape::Skewed;

    // Gate off: nothing (Unipolar).
    EXPECT_TRUE(laneSlots(s, 0, 16, false).empty());

    // k dividers keep every 2^k-th slot, phase 2^k - 1.
    for (int lane = 0; lane < s.lanes; ++lane) {
        const int k = s.dividersOf(lane);
        const std::vector<int> slots = laneSlots(s, lane, 16, true);
        for (const int m : slots)
            EXPECT_EQ(m % (1 << k), (1 << k) - 1);
        EXPECT_EQ(static_cast<int>(slots.size()), 16 >> k);
    }

    // Bipolar complements within [0, n).
    DesignSpec b = s;
    b.encoding = StreamEncoding::Bipolar;
    const std::vector<int> on = laneSlots(s, 1, 16, true);
    const std::vector<int> comp = laneSlots(b, 1, 16, true);
    EXPECT_EQ(on.size() + comp.size(), 16u);
    std::vector<int> merged = on;
    merged.insert(merged.end(), comp.begin(), comp.end());
    std::sort(merged.begin(), merged.end());
    for (int m = 0; m < 16; ++m)
        EXPECT_EQ(merged[static_cast<std::size_t>(m)], m);
    // Gate off under Bipolar: the inverter emits every clock slot.
    EXPECT_EQ(laneSlots(b, 1, 16, false).size(), 16u);
}

TEST(GenFunctional, TreeLossInvariants)
{
    Rng rng(9);
    for (int i = 0; i < 24; ++i) {
        DesignSpec s = randomDesignSpec(rng);
        const EpochInputs in = drawEpochInputs(s, 77 + i);
        const EpochEval ev = evalEpoch(s, in);
        EXPECT_GE(ev.count, 0);
        EXPECT_GE(ev.lost, 0);
        EXPECT_LE(ev.count, ev.laneSum);
        if (s.tree == TreeKind::Balancer) {
            EXPECT_EQ(ev.lost, 0) << "balancer trees are lossless";
        }
        if (s.tree == TreeKind::Merger) {
            EXPECT_EQ(ev.count, ev.laneSum - ev.lost)
                << "merger trees only lose collided pulses";
        }
    }
}

TEST(GenFunctional, DrawEpochInputsDeterministic)
{
    const DesignSpec s;
    const EpochInputs a = drawEpochInputs(s, 42);
    const EpochInputs b = drawEpochInputs(s, 42);
    EXPECT_EQ(a.n, b.n);
    EXPECT_EQ(a.gates, b.gates);
    EXPECT_EQ(static_cast<int>(a.gates.size()), s.lanes);
    EXPECT_GE(a.n, 1);
    EXPECT_LE(a.n, s.nmax());
    const EpochInputs c = drawEpochInputs(s, 43);
    EXPECT_TRUE(c.n != a.n || c.gates != a.gates);
}

TEST(GenFunctional, PulseMatchesMirrorSpotCheck)
{
    // One spec per tree kind at pulse level; the gen differential tier
    // covers the full random space.
    for (const TreeKind tree :
         {TreeKind::Balancer, TreeKind::Merger, TreeKind::Tff2}) {
        DesignSpec s;
        s.tree = tree;
        s.shape = LaneShape::Random;
        s.shapeSeed = 5;
        s.maxDividers = 2;
        s.clockPeriodPs = tree == TreeKind::Tff2 ? 24 : 16;
        const BalanceOutcome bo = balanceDesign(s);
        ASSERT_TRUE(bo.converged())
            << treeKindName(tree) << ": " << bo.detail;
        for (int e = 0; e < 3; ++e) {
            const EpochInputs in = drawEpochInputs(s, 900 + e);
            EXPECT_EQ(runPulseEpoch(s, bo.plan, in),
                      evalEpoch(s, in).count)
                << treeKindName(tree) << " epoch " << e;
        }
    }
}

} // namespace
} // namespace usfq::gen
