/**
 * @file
 * Simulation-service tests (src/svc/, docs/service.md): the
 * content-addressed cache key (structural hash determinism and
 * sensitivity), the LRU result store, hit-vs-recompute bit identity
 * across batch widths and sweep thread counts, and the request broker
 * (completion, backend auto-selection, backpressure, deterministic
 * stats merging, error isolation).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <future>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "api/facade.hh"
#include "api/spec.hh"
#include "api/usfq.h"
#include "sfq/cells.hh"
#include "sfq/sources.hh"
#include "sim/netlist.hh"
#include "svc/broker.hh"
#include "svc/cache.hh"
#include "util/json.hh"

namespace usfq
{
namespace
{

api::NetlistSpec
dpuSpec(int taps = 8, int bits = 5)
{
    api::NetlistSpec spec;
    spec.kind = api::WorkloadKind::Dpu;
    spec.name = "dpu";
    spec.taps = taps;
    spec.bits = bits;
    spec.mode = DpuMode::Bipolar;
    return spec;
}

api::RunParams
functionalParams(int epochs = 10)
{
    api::RunParams params;
    params.backend = Backend::Functional;
    params.epochs = epochs;
    params.seed = 0x5eedULL;
    return params;
}

/**
 * The facade's inverter-probe netlist, with the two cells registered
 * in either order: the structural hash must not care.
 */
void
buildProbe(Netlist &nl, bool clockFirst)
{
    ClockSource *clk = nullptr;
    Inverter *inv = nullptr;
    if (clockFirst) {
        clk = &nl.create<ClockSource>("clk");
        inv = &nl.create<Inverter>("inv");
    } else {
        inv = &nl.create<Inverter>("inv");
        clk = &nl.create<ClockSource>("clk");
    }
    clk->out.connect(inv->clk);
    inv->d.markOptional("probe: clock-only drive");
    inv->q.markOpen("probe: rate study output");
    clk->program(1200, 1200, 16);
}

// --- structural hash -----------------------------------------------------

TEST(SvcHash, IdenticalSpecsHashIdentically)
{
    Netlist a("a");
    Netlist b("b");
    std::string err;
    ASSERT_TRUE(api::buildNetlist(dpuSpec(), a, &err)) << err;
    ASSERT_TRUE(api::buildNetlist(dpuSpec(), b, &err)) << err;
    EXPECT_EQ(api::structuralHash(a), api::structuralHash(b));
}

TEST(SvcHash, RegistrationOrderDoesNotMatter)
{
    Netlist a("a");
    Netlist b("b");
    buildProbe(a, /*clockFirst=*/true);
    buildProbe(b, /*clockFirst=*/false);
    EXPECT_EQ(api::structuralHash(a), api::structuralHash(b));
}

TEST(SvcHash, HashIsStableAcrossRepeatedCalls)
{
    Netlist nl("n");
    std::string err;
    ASSERT_TRUE(api::buildNetlist(dpuSpec(), nl, &err)) << err;
    const std::uint64_t first = api::structuralHash(nl);
    EXPECT_EQ(api::structuralHash(nl), first);
}

TEST(SvcHash, ParameterChangesMoveTheHash)
{
    Netlist base("base");
    Netlist wider("wider");
    Netlist deeper("deeper");
    Netlist unipolar("unipolar");
    std::string err;
    ASSERT_TRUE(api::buildNetlist(dpuSpec(8, 5), base, &err)) << err;
    ASSERT_TRUE(api::buildNetlist(dpuSpec(9, 5), wider, &err)) << err;
    ASSERT_TRUE(api::buildNetlist(dpuSpec(8, 6), deeper, &err)) << err;
    api::NetlistSpec uni = dpuSpec(8, 5);
    uni.mode = DpuMode::Unipolar;
    ASSERT_TRUE(api::buildNetlist(uni, unipolar, &err)) << err;

    const std::uint64_t h = api::structuralHash(base);
    EXPECT_NE(api::structuralHash(wider), h);
    EXPECT_NE(api::structuralHash(unipolar), h);

    // Resolution independence (the paper's headline property): more
    // bits lengthen the epoch, not the netlist, so the structural
    // hash must NOT move -- the spec hash carries the distinction
    // into the cache key instead.
    EXPECT_EQ(api::structuralHash(deeper), h);
    EXPECT_NE(api::specHash(dpuSpec(8, 6)), api::specHash(dpuSpec(8, 5)));
}

TEST(SvcHash, TopologyChangesMoveTheHash)
{
    // Same component set, different wiring/anchoring: probe vs an
    // unclocked pair.
    Netlist wired("wired");
    Netlist unwired("unwired");
    buildProbe(wired, true);
    {
        auto &clk = unwired.create<ClockSource>("clk");
        auto &inv = unwired.create<Inverter>("inv");
        (void)clk;
        inv.d.markOptional("probe variant");
        inv.clk.markOptional("probe variant");
        inv.q.markOpen("probe variant");
        unwired.waive(LintRule::OpenOutput, "probe variant");
    }
    EXPECT_NE(api::structuralHash(wired),
              api::structuralHash(unwired));
}

TEST(SvcHash, CacheKeySeparatesBackendSeedAndEpochs)
{
    const api::NetlistSpec spec = dpuSpec();
    Netlist nl("n");
    std::string err;
    ASSERT_TRUE(api::buildNetlist(spec, nl, &err)) << err;

    const api::RunParams base = functionalParams();
    const svc::CacheKey k0 = svc::cacheKeyFor(spec, nl, base);

    api::RunParams other = base;
    other.backend = Backend::PulseLevel;
    EXPECT_FALSE(svc::cacheKeyFor(spec, nl, other) == k0);

    other = base;
    other.seed = base.seed + 1;
    EXPECT_FALSE(svc::cacheKeyFor(spec, nl, other) == k0);

    other = base;
    other.epochs = base.epochs + 1;
    EXPECT_FALSE(svc::cacheKeyFor(spec, nl, other) == k0);

    // batch/threads are cache-transparent: same key.
    other = base;
    other.batch = 8;
    other.threads = 4;
    EXPECT_TRUE(svc::cacheKeyFor(spec, nl, other) == k0);

    // A bits bump leaves the (resolution-independent) netlist alone
    // but must still address a different cache line via the spec hash.
    const api::NetlistSpec deeper = dpuSpec(8, 6);
    Netlist nl6("n6");
    ASSERT_TRUE(api::buildNetlist(deeper, nl6, &err)) << err;
    EXPECT_FALSE(svc::cacheKeyFor(deeper, nl6, base) == k0);
}

// --- result cache --------------------------------------------------------

TEST(SvcCache, LookupInsertAndStats)
{
    svc::ResultCache cache(4);
    svc::CacheKey key;
    key.structural = 1;

    EXPECT_FALSE(cache.lookup(key).has_value());
    cache.insert(key, "doc");
    const std::optional<std::string> hit = cache.lookup(key);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(*hit, "doc");

    // Duplicate insert is a no-op (documents are deterministic).
    cache.insert(key, "other");
    EXPECT_EQ(*cache.lookup(key), "doc");

    const svc::CacheStats stats = cache.stats();
    EXPECT_EQ(stats.hits, 2u);
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.insertions, 1u);
    EXPECT_DOUBLE_EQ(stats.hitRate(), 2.0 / 3.0);
}

TEST(SvcCache, EvictsLeastRecentlyUsed)
{
    svc::ResultCache cache(2);
    svc::CacheKey a, b, c;
    a.structural = 1;
    b.structural = 2;
    c.structural = 3;
    cache.insert(a, "a");
    cache.insert(b, "b");
    ASSERT_TRUE(cache.lookup(a).has_value()); // refresh a; b is LRU
    cache.insert(c, "c");                     // evicts b
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_TRUE(cache.lookup(a).has_value());
    EXPECT_FALSE(cache.lookup(b).has_value());
    EXPECT_TRUE(cache.lookup(c).has_value());
    EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(SvcCache, HitIsBitIdenticalToRecomputation)
{
    const api::NetlistSpec spec = dpuSpec();
    const api::RunParams params = functionalParams();

    Netlist nl("n");
    std::string err;
    ASSERT_TRUE(api::buildNetlist(spec, nl, &err)) << err;
    const svc::CacheKey key = svc::cacheKeyFor(spec, nl, params);

    svc::ResultCache cache;
    cache.insert(key,
                 api::resultToJson(spec, params,
                                   api::runWorkload(spec, params)));

    // Recompute at a different batch width and thread count: the hit
    // stored above must be the exact bytes this run produces too.
    api::RunParams batched = params;
    batched.batch = 8;
    batched.threads = 4;
    const std::string recomputed = api::resultToJson(
        spec, batched, api::runWorkload(spec, batched));
    const std::optional<std::string> hit = cache.lookup(key);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(*hit, recomputed);
}

// --- broker --------------------------------------------------------------

TEST(SvcBroker, IntentSelectsTheBackend)
{
    svc::Request request;
    request.params.backend = Backend::PulseLevel;
    EXPECT_EQ(svc::Broker::resolveBackend(request),
              Backend::PulseLevel);
    request.intent = svc::RequestIntent::Throughput;
    EXPECT_EQ(svc::Broker::resolveBackend(request),
              Backend::Functional);
    request.intent = svc::RequestIntent::Audit;
    EXPECT_EQ(svc::Broker::resolveBackend(request),
              Backend::PulseLevel);
}

TEST(SvcBroker, CompletesRequestsAndHitsTheCache)
{
    svc::BrokerOptions opts;
    opts.workers = 2;
    opts.queueCapacity = 64;
    svc::Broker broker(opts);

    const api::NetlistSpec spec = dpuSpec();
    const api::RunParams params = functionalParams();
    const std::string expected = api::resultToJson(
        spec, params, api::runWorkload(spec, params));

    std::vector<std::future<svc::Response>> futures;
    for (int i = 0; i < 16; ++i) {
        auto f = broker.submit(svc::Request{spec, params,
                                            svc::RequestIntent::Default});
        ASSERT_TRUE(f.has_value());
        futures.push_back(std::move(*f));
    }
    broker.drain();

    std::uint64_t hits = 0;
    for (auto &f : futures) {
        svc::Response r = f.get();
        ASSERT_EQ(r.status, api::Status::Ok) << r.error;
        EXPECT_EQ(r.backend, Backend::Functional);
        EXPECT_NE(r.structural, 0u);
        EXPECT_EQ(r.json, expected);
        if (r.cacheHit)
            ++hits;
    }
    EXPECT_GT(hits, 0u);
    const svc::BrokerStats stats = broker.stats();
    EXPECT_EQ(stats.submitted, 16u);
    EXPECT_EQ(stats.completed, 16u);
    EXPECT_EQ(stats.failed, 0u);
    EXPECT_GT(broker.cacheStats().hits, 0u);
}

TEST(SvcBroker, AuditIntentRunsPulseLevelWithIdenticalCounts)
{
    svc::Broker broker;
    api::NetlistSpec spec = dpuSpec(4, 4);
    api::RunParams params = functionalParams(4);

    auto audit = broker.submit(
        svc::Request{spec, params, svc::RequestIntent::Audit});
    auto fast = broker.submit(
        svc::Request{spec, params, svc::RequestIntent::Throughput});
    ASSERT_TRUE(audit.has_value());
    ASSERT_TRUE(fast.has_value());
    svc::Response ra = audit->get();
    svc::Response rf = fast->get();
    ASSERT_EQ(ra.status, api::Status::Ok) << ra.error;
    ASSERT_EQ(rf.status, api::Status::Ok) << rf.error;
    EXPECT_EQ(ra.backend, Backend::PulseLevel);
    EXPECT_EQ(rf.backend, Backend::Functional);
    EXPECT_FALSE(ra.json == rf.json); // backend is in the document
    EXPECT_EQ(ra.structural, rf.structural);
}

TEST(SvcBroker, FullQueueRejectsWithBackpressure)
{
    svc::BrokerOptions opts;
    opts.workers = 1;
    opts.queueCapacity = 1;
    svc::Broker broker(opts);

    const api::NetlistSpec spec = dpuSpec();
    const api::RunParams params = functionalParams(64);

    // One request occupies the worker, one the queue; keep submitting
    // until admission control pushes back.  Each run takes far longer
    // than a submit, so this terminates almost immediately.
    std::vector<std::future<svc::Response>> futures;
    bool rejected = false;
    for (int i = 0; i < 100000 && !rejected; ++i) {
        auto f = broker.submit(svc::Request{spec, params,
                                            svc::RequestIntent::Default});
        if (f.has_value())
            futures.push_back(std::move(*f));
        else
            rejected = true;
    }
    EXPECT_TRUE(rejected);
    broker.drain();
    for (auto &f : futures)
        EXPECT_EQ(f.get().status, api::Status::Ok);
    EXPECT_GT(broker.stats().rejected, 0u);
    EXPECT_EQ(broker.stats().completed, futures.size());
}

TEST(SvcBroker, BadRequestsFailWithoutPoisoningTheBroker)
{
    svc::Broker broker;

    api::NetlistSpec bad = dpuSpec();
    bad.waiveUnwired = false; // unwaived lint findings
    auto fbad = broker.submit(
        svc::Request{bad, functionalParams(),
                     svc::RequestIntent::Default});
    ASSERT_TRUE(fbad.has_value());
    svc::Response rbad = fbad->get();
    EXPECT_EQ(rbad.status, api::Status::LintError);
    EXPECT_FALSE(rbad.error.empty());
    EXPECT_TRUE(rbad.json.empty());

    // The broker keeps serving good requests afterwards.
    auto fok = broker.submit(
        svc::Request{dpuSpec(), functionalParams(),
                     svc::RequestIntent::Default});
    ASSERT_TRUE(fok.has_value());
    EXPECT_EQ(fok->get().status, api::Status::Ok);
    EXPECT_EQ(broker.stats().failed, 1u);
}

TEST(SvcBroker, MergedStatsAreSchedulingIndependent)
{
    // Distinct requests (no cache hits), run through brokers with
    // different worker counts: the id-ordered fold must be identical.
    std::vector<svc::Request> requests;
    for (int taps = 2; taps <= 9; ++taps)
        requests.push_back(svc::Request{dpuSpec(taps),
                                        functionalParams(6),
                                        svc::RequestIntent::Default});

    const auto runThrough = [&requests](int workerCount) {
        svc::BrokerOptions opts;
        opts.workers = workerCount;
        opts.queueCapacity = 64;
        svc::Broker broker(opts);
        std::vector<std::future<svc::Response>> futures;
        for (const svc::Request &r : requests) {
            auto f = broker.submit(r);
            EXPECT_TRUE(f.has_value());
            if (f.has_value())
                futures.push_back(std::move(*f));
        }
        broker.drain();
        for (auto &f : futures)
            EXPECT_EQ(f.get().status, api::Status::Ok);
        std::ostringstream os;
        broker.mergedStats().print(os);
        return os.str();
    };

    EXPECT_EQ(runThrough(1), runThrough(4));
}

api::NetlistSpec
nocSpec(int rows = 3, int cols = 3)
{
    api::NetlistSpec spec;
    spec.kind = api::WorkloadKind::NocMesh;
    spec.name = "mesh";
    spec.gridRows = rows;
    spec.gridCols = cols;
    spec.taps = 2;
    spec.bits = 4;
    return spec;
}

TEST(SvcBroker, NocRequestBackpressuresAndDrainsInOrder)
{
    svc::BrokerOptions opts;
    opts.workers = 1;
    opts.queueCapacity = 2;
    svc::Broker broker(opts);

    // A pulse-level NoC fabric run occupies the single worker for far
    // longer than a submit takes, so admission control must start
    // rejecting once the queue fills behind it.
    api::RunParams slow = functionalParams(4);
    slow.backend = Backend::PulseLevel;
    auto first = broker.submit(
        svc::Request{nocSpec(), slow, svc::RequestIntent::Audit});
    ASSERT_TRUE(first.has_value());

    std::vector<std::future<svc::Response>> queued;
    bool rejected = false;
    for (int i = 0; i < 100000 && !rejected; ++i) {
        api::RunParams fast = functionalParams(2);
        fast.seed = 0x9000u + static_cast<std::uint64_t>(i);
        auto f = broker.submit(svc::Request{
            nocSpec(), fast, svc::RequestIntent::Throughput});
        if (f.has_value())
            queued.push_back(std::move(f.value()));
        else
            rejected = true;
    }
    EXPECT_TRUE(rejected);
    EXPECT_GT(broker.stats().rejected, 0u);

    broker.drain();
    svc::Response r0 = first->get();
    EXPECT_EQ(r0.status, api::Status::Ok);
    EXPECT_EQ(r0.backend, Backend::PulseLevel);
    EXPECT_NE(r0.json.find("\"grid_rows\""), std::string::npos);

    // FIFO drain: responses carry the monotonically assigned request
    // ids, and the single worker serves the deque in admission order.
    std::uint64_t lastId = r0.requestId;
    for (auto &f : queued) {
        svc::Response r = f.get();
        EXPECT_EQ(r.status, api::Status::Ok);
        EXPECT_GT(r.requestId, lastId);
        lastId = r.requestId;
    }
    EXPECT_EQ(broker.stats().completed, queued.size() + 1);
}

TEST(SvcBroker, QueueHighWaterAndWorkerUtilization)
{
    svc::BrokerOptions opts;
    opts.workers = 3;
    opts.queueCapacity = 32;
    svc::Broker broker(opts);

    std::vector<std::future<svc::Response>> futures;
    for (int i = 0; i < 24; ++i) {
        api::RunParams params = functionalParams(8);
        params.seed = 0xa000u + static_cast<std::uint64_t>(i);
        auto f = broker.submit(svc::Request{
            dpuSpec(), params, svc::RequestIntent::Default});
        ASSERT_TRUE(f.has_value());
        futures.push_back(std::move(*f));
    }
    broker.drain();
    for (auto &f : futures)
        EXPECT_EQ(f.get().status, api::Status::Ok);

    const svc::BrokerStats stats = broker.stats();
    // The queue held at least one pending request at some point, and
    // the high-water mark can never exceed the configured capacity.
    EXPECT_GE(stats.queueDepthHighWater, 1u);
    EXPECT_LE(stats.queueDepthHighWater, opts.queueCapacity);
    // One utilization slot per worker, each internally consistent.
    ASSERT_EQ(stats.workerUtil.size(),
              static_cast<std::size_t>(opts.workers));
    std::uint64_t busyTotal = 0;
    for (const svc::WorkerUtil &util : stats.workerUtil) {
        const double u = util.utilization();
        EXPECT_GE(u, 0.0);
        EXPECT_LE(u, 1.0);
        busyTotal += util.busyUs;
    }
    // 24 functional runs cannot all complete in zero microseconds.
    EXPECT_GT(busyTotal, 0u);
}

TEST(SvcEngineAbi, EngineMetricsAccumulateAcrossRuns)
{
    usfq_engine *eng = nullptr;
    ASSERT_EQ(usfq_engine_create(
                  "{\"kind\": \"dpu\", \"taps\": 4, \"bits\": 4}",
                  &eng),
              USFQ_OK);

    // A fresh engine reports an empty (but well-formed) registry.
    char *before = nullptr;
    ASSERT_EQ(usfq_engine_metrics(eng, &before), USFQ_OK);
    JsonValue doc;
    std::string error;
    ASSERT_TRUE(parseJson(before, doc, &error)) << error;
    usfq_string_free(before);
    ASSERT_TRUE(doc.isObject());
    ASSERT_NE(doc.find("counters"), nullptr);
    EXPECT_TRUE(doc.find("counters")->object.empty());

    char *json = nullptr;
    ASSERT_EQ(usfq_engine_run(eng, "{\"epochs\": 3}", &json),
              USFQ_OK);
    usfq_string_free(json);

    char *after = nullptr;
    ASSERT_EQ(usfq_engine_metrics(eng, &after), USFQ_OK);
    const std::string metrics(after);
    usfq_string_free(after);
    ASSERT_TRUE(parseJson(metrics, doc, &error)) << error;
    EXPECT_FALSE(doc.find("counters")->object.empty()) << metrics;

    // Identical reads back to back: the export itself is pure.
    char *again = nullptr;
    ASSERT_EQ(usfq_engine_metrics(eng, &again), USFQ_OK);
    EXPECT_EQ(metrics, std::string(again));
    usfq_string_free(again);

    EXPECT_EQ(usfq_engine_metrics(nullptr, &json),
              USFQ_ERR_INVALID_ARG);
    EXPECT_EQ(usfq_engine_metrics(eng, nullptr),
              USFQ_ERR_INVALID_ARG);
    usfq_engine_destroy(eng);
}

TEST(SvcBrokerAbi, RunAndMetricsThroughTheCAbi)
{
    usfq_broker *broker = nullptr;
    ASSERT_EQ(usfq_broker_create(2, 16, 8, &broker), USFQ_OK);

    const char *spec = "{\"kind\": \"dpu\", \"taps\": 4, \"bits\": 4}";
    int32_t hit = -1;
    char *first = nullptr;
    ASSERT_EQ(usfq_broker_run(broker, spec, "{\"epochs\": 3}",
                              "throughput", &hit, &first),
              USFQ_OK);
    ASSERT_NE(first, nullptr);
    EXPECT_EQ(hit, 0);

    // The identical request again: a cache hit with the same bytes.
    char *second = nullptr;
    ASSERT_EQ(usfq_broker_run(broker, spec, "{\"epochs\": 3}",
                              "throughput", &hit, &second),
              USFQ_OK);
    EXPECT_EQ(hit, 1);
    EXPECT_STREQ(first, second);
    usfq_string_free(first);
    usfq_string_free(second);

    // Malformed spec: a parse status, a message, no broker poisoning.
    char *bad = nullptr;
    EXPECT_EQ(usfq_broker_run(broker, "{not json", nullptr, nullptr,
                              &hit, &bad),
              USFQ_ERR_PARSE);
    EXPECT_NE(std::string(usfq_broker_last_error(broker)), "");
    EXPECT_EQ(usfq_broker_run(broker, spec, "{\"epochs\": 3}",
                              "no-such-intent", &hit, &bad),
              USFQ_ERR_INVALID_ARG);

    char *metrics = nullptr;
    ASSERT_EQ(usfq_broker_metrics(broker, &metrics), USFQ_OK);
    JsonValue doc;
    std::string error;
    ASSERT_TRUE(parseJson(metrics, doc, &error)) << error;
    usfq_string_free(metrics);
    const JsonValue *bs = doc.find("broker");
    ASSERT_NE(bs, nullptr);
    EXPECT_EQ(bs->find("submitted")->number, 2.0);
    EXPECT_EQ(bs->find("completed")->number, 2.0);
    EXPECT_GE(bs->find("queue_depth_high_water")->number, 1.0);
    ASSERT_NE(bs->find("workers"), nullptr);
    EXPECT_EQ(bs->find("workers")->array.size(), 2u);
    const JsonValue *cache = doc.find("cache");
    ASSERT_NE(cache, nullptr);
    EXPECT_EQ(cache->find("hits")->number, 1.0);
    EXPECT_EQ(cache->find("misses")->number, 1.0);
    ASSERT_NE(doc.find("stats"), nullptr);
    EXPECT_FALSE(doc.find("stats")->find("counters")->object.empty());

    usfq_broker_destroy(broker);

    // NULL armor.
    EXPECT_EQ(usfq_broker_create(1, 1, 1, nullptr),
              USFQ_ERR_INVALID_ARG);
    EXPECT_EQ(usfq_broker_metrics(nullptr, &metrics),
              USFQ_ERR_INVALID_ARG);
}

TEST(SvcCacheAbi, ConcurrentRunCachedConservesCounters)
{
    // >= 4 threads hammering one shared cache through the C ABI (the
    // tier-1 ASan/TSan-adjacent configurations run this too): the
    // counters must conserve exactly -- every call is a hit or a miss,
    // every insertion came from a miss, and the store never exceeds
    // its capacity.
    constexpr int kThreads = 4;
    constexpr int kCallsPerThread = 64;
    constexpr int kDistinctSpecs = 6;

    usfq_cache *cache = nullptr;
    ASSERT_EQ(usfq_cache_create(4, &cache), USFQ_OK);

    std::vector<usfq_engine *> engines;
    for (int i = 0; i < kDistinctSpecs; ++i) {
        usfq_engine *eng = nullptr;
        const std::string spec = "{\"kind\": \"dpu\", \"taps\": " +
                                 std::to_string(2 + i) +
                                 ", \"bits\": 4}";
        ASSERT_EQ(usfq_engine_create(spec.c_str(), &eng), USFQ_OK);
        engines.push_back(eng);
    }

    std::atomic<int> failures{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([t, &engines, cache, &failures] {
            for (int i = 0; i < kCallsPerThread; ++i) {
                usfq_engine *eng =
                    engines[static_cast<std::size_t>(t + i) %
                            engines.size()];
                int32_t hit = -1;
                char *json = nullptr;
                if (usfq_engine_run_cached(eng, cache,
                                           "{\"epochs\": 3}", &hit,
                                           &json) != USFQ_OK ||
                    json == nullptr || hit < 0 || hit > 1) {
                    ++failures;
                    continue;
                }
                usfq_string_free(json);
                // Concurrent stats reads must stay well-formed too.
                char *stats = nullptr;
                if (usfq_cache_stats(cache, &stats) != USFQ_OK)
                    ++failures;
                else
                    usfq_string_free(stats);
            }
        });
    }
    for (std::thread &t : threads)
        t.join();
    EXPECT_EQ(failures.load(), 0);

    char *statsJson = nullptr;
    ASSERT_EQ(usfq_cache_stats(cache, &statsJson), USFQ_OK);
    JsonValue doc;
    std::string error;
    ASSERT_TRUE(parseJson(statsJson, doc, &error)) << error;
    usfq_string_free(statsJson);
    const auto number = [&doc](const char *key) {
        const JsonValue *v = doc.find(key);
        EXPECT_NE(v, nullptr) << key;
        return v != nullptr ? static_cast<std::uint64_t>(v->number)
                            : 0u;
    };
    const std::uint64_t hits = number("hits");
    const std::uint64_t misses = number("misses");
    const std::uint64_t insertions = number("insertions");
    const std::uint64_t evictions = number("evictions");
    const std::uint64_t size = number("size");
    EXPECT_EQ(hits + misses,
              static_cast<std::uint64_t>(kThreads) * kCallsPerThread);
    // Two threads can miss the same key concurrently; the second
    // insert of a key is a no-op, so insertions can trail misses but
    // never exceed them.
    EXPECT_LE(insertions, misses);
    EXPECT_GT(insertions, 0u);
    EXPECT_EQ(size, insertions - evictions);
    EXPECT_LE(size, 4u);
    EXPECT_GT(hits, 0u);

    for (usfq_engine *eng : engines)
        usfq_engine_destroy(eng);
    usfq_cache_destroy(cache);
}

TEST(SvcCacheAbi, StatsAndEvictionOrderThroughTheCAbi)
{
    usfq_cache *cache = nullptr;
    ASSERT_EQ(usfq_cache_create(2, &cache), USFQ_OK);

    const auto makeEngine = [](int taps) {
        usfq_engine *eng = nullptr;
        const std::string spec = "{\"kind\": \"dpu\", \"taps\": " +
                                 std::to_string(taps) +
                                 ", \"bits\": 4}";
        EXPECT_EQ(usfq_engine_create(spec.c_str(), &eng), USFQ_OK);
        return eng;
    };
    const auto runCached = [&cache](usfq_engine *eng) {
        int32_t hit = -1;
        char *json = nullptr;
        EXPECT_EQ(usfq_engine_run_cached(eng, cache,
                                         "{\"epochs\": 2}", &hit,
                                         &json),
                  USFQ_OK);
        EXPECT_NE(json, nullptr);
        usfq_string_free(json);
        return hit;
    };

    usfq_engine *a = makeEngine(2);
    usfq_engine *b = makeEngine(3);
    usfq_engine *c = makeEngine(4);

    EXPECT_EQ(runCached(a), 0); // miss: cache = [a]
    EXPECT_EQ(runCached(b), 0); // miss: cache = [b, a]
    EXPECT_EQ(runCached(a), 1); // hit refreshes: cache = [a, b]
    EXPECT_EQ(runCached(c), 0); // miss evicts LRU b: cache = [c, a]
    EXPECT_EQ(runCached(a), 1); // a survived the eviction
    EXPECT_EQ(runCached(b), 0); // b did not: the refresh reordered

    char *stats = nullptr;
    ASSERT_EQ(usfq_cache_stats(cache, &stats), USFQ_OK);
    const std::string json(stats);
    usfq_string_free(stats);
    EXPECT_NE(json.find("\"capacity\": 2"), std::string::npos) << json;
    EXPECT_NE(json.find("\"size\": 2"), std::string::npos) << json;
    EXPECT_NE(json.find("\"hits\": 2"), std::string::npos) << json;
    EXPECT_NE(json.find("\"misses\": 4"), std::string::npos) << json;
    EXPECT_NE(json.find("\"evictions\": 2"), std::string::npos)
        << json;

    // Byte identity of a hit against the recomputation it replaced.
    char *fresh = nullptr;
    char *cached = nullptr;
    EXPECT_EQ(usfq_engine_run(b, "{\"epochs\": 2}", &fresh), USFQ_OK);
    int32_t hit = -1;
    EXPECT_EQ(usfq_engine_run_cached(b, cache, "{\"epochs\": 2}",
                                     &hit, &cached),
              USFQ_OK);
    EXPECT_EQ(hit, 1);
    EXPECT_STREQ(fresh, cached);
    usfq_string_free(fresh);
    usfq_string_free(cached);

    usfq_engine_destroy(a);
    usfq_engine_destroy(b);
    usfq_engine_destroy(c);
    usfq_cache_destroy(cache);

    // NULL / zero-capacity argument armor.
    EXPECT_EQ(usfq_cache_create(0, &cache), USFQ_ERR_INVALID_ARG);
    char *out = nullptr;
    EXPECT_EQ(usfq_cache_stats(nullptr, &out), USFQ_ERR_INVALID_ARG);
}

} // namespace
} // namespace usfq
