/**
 * @file
 * Tests of InlineFunction, the event kernel's small-buffer-optimized
 * callback type: storage-class selection around the inline boundary,
 * move/destroy semantics, and scheduling from within a callback.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/inline_function.hh"

namespace usfq
{
namespace
{

using Fn = InlineFunction<int()>;

/** Counts constructions/destructions to audit ownership transfers. */
struct Tracker
{
    static int liveCount;
    static int moveCount;

    Tracker() { ++liveCount; }
    Tracker(const Tracker &) { ++liveCount; }
    Tracker(Tracker &&) noexcept
    {
        ++liveCount;
        ++moveCount;
    }
    ~Tracker() { --liveCount; }
};

int Tracker::liveCount = 0;
int Tracker::moveCount = 0;

TEST(InlineFunction, EmptyAndInvoke)
{
    Fn f;
    EXPECT_FALSE(static_cast<bool>(f));
    f = [] { return 42; };
    ASSERT_TRUE(static_cast<bool>(f));
    EXPECT_EQ(f(), 42);
    f.reset();
    EXPECT_FALSE(static_cast<bool>(f));
}

TEST(InlineFunction, ArgumentsAndReturn)
{
    InlineFunction<std::int64_t(std::int64_t, std::int64_t)> add =
        [](std::int64_t a, std::int64_t b) { return a + b; };
    EXPECT_EQ(add(2, 40), 42);
}

TEST(InlineFunction, TwoPointerCaptureStaysInline)
{
    int a = 1, b = 2;
    Fn f = [pa = &a, pb = &b] { return *pa + *pb; };
    EXPECT_TRUE(f.isInline());
    EXPECT_EQ(f(), 3);
}

TEST(InlineFunction, CaptureJustPastBoundaryGoesToHeap)
{
    // Three pointers: one past the two-pointer inline budget.
    int a = 1, b = 2, c = 3;
    Fn small = [pa = &a, pb = &b] { return *pa + *pb; };
    Fn big = [pa = &a, pb = &b, pc = &c] { return *pa + *pb + *pc; };
    EXPECT_TRUE(small.isInline());
    EXPECT_FALSE(big.isInline());
    EXPECT_EQ(big(), 6);
}

TEST(InlineFunction, ExactBoundaryCaptureIsInline)
{
    struct Exactly16
    {
        std::int64_t x;
        std::int64_t y;
    } v{40, 2};
    static_assert(sizeof(Exactly16) == kInlineCallbackSize);
    Fn f = [v] { return static_cast<int>(v.x + v.y); };
    EXPECT_TRUE(f.isInline());
    EXPECT_EQ(f(), 42);
}

TEST(InlineFunction, MoveTransfersCallableAndEmptiesSource)
{
    int hits = 0;
    InlineFunction<void()> f = [&hits] { ++hits; };
    InlineFunction<void()> g = std::move(f);
    EXPECT_FALSE(static_cast<bool>(f));
    ASSERT_TRUE(static_cast<bool>(g));
    g();
    EXPECT_EQ(hits, 1);
}

TEST(InlineFunction, NonTrivialInlineCaptureIsDestroyedOnce)
{
    Tracker::liveCount = 0;
    {
        InlineFunction<int()> f = [t = Tracker()] {
            (void)t;
            return Tracker::liveCount;
        };
        // A Tracker is 1 byte, so this is inline but non-trivial.
        EXPECT_TRUE(f.isInline());
        EXPECT_EQ(Tracker::liveCount, 1);
        InlineFunction<int()> g = std::move(f);
        EXPECT_EQ(Tracker::liveCount, 1) << "move must not leak a copy";
        EXPECT_EQ(g(), 1);
    }
    EXPECT_EQ(Tracker::liveCount, 0) << "callable not destroyed";
}

TEST(InlineFunction, HeapCaptureIsDestroyedOnce)
{
    auto shared = std::make_shared<int>(7);
    {
        std::string pad = "padding that forces the heap path";
        InlineFunction<int()> f = [shared, pad] {
            (void)pad;
            return *shared;
        };
        EXPECT_FALSE(f.isInline());
        EXPECT_EQ(shared.use_count(), 2);
        InlineFunction<int()> g = std::move(f);
        EXPECT_EQ(shared.use_count(), 2) << "heap move must not copy";
        EXPECT_EQ(g(), 7);
    }
    EXPECT_EQ(shared.use_count(), 1) << "callable not destroyed";
}

TEST(InlineFunction, MoveAssignDestroysPreviousTarget)
{
    auto a = std::make_shared<int>(1);
    auto b = std::make_shared<int>(2);
    std::string pad = "padding that forces the heap path";
    InlineFunction<int()> f = [a, pad] { return *a; };
    InlineFunction<int()> g = [b, pad] { return *b; };
    g = std::move(f);
    EXPECT_EQ(b.use_count(), 1) << "old target leaked";
    EXPECT_EQ(a.use_count(), 2);
    EXPECT_EQ(g(), 1);
}

TEST(InlineFunction, SchedulingFromWithinACallback)
{
    // The kernel-facing contract: a callback may schedule further
    // callbacks (including at the current tick) while it runs, and
    // captures survive the queue's internal moves.
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(10, [&eq, &order] {
        order.push_back(1);
        eq.schedule(10, [&order] { order.push_back(2); });
        eq.scheduleAfter(5, [&eq, &order] {
            order.push_back(3);
            eq.scheduleAfter(0, [&order] { order.push_back(4); });
        });
    });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
    EXPECT_EQ(eq.now(), 15);
}

} // namespace
} // namespace usfq
