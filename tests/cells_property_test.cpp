/**
 * @file
 * Property-based sweeps over the cell library and the device physics:
 * division chains, fanout trees, merger conservation, flux-quantized
 * pulse areas across junction-parameter corners.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "analog/rsj.hh"
#include "core/adder.hh"
#include "core/fanout.hh"
#include "sim/trace.hh"
#include "sfq/cells.hh"
#include "sfq/sources.hh"
#include "util/random.hh"

namespace usfq
{
namespace
{

// --- TFF division chains ------------------------------------------------------

class TffChain : public ::testing::TestWithParam<int>
{
};

TEST_P(TffChain, DividesByPowerOfTwo)
{
    const int depth = GetParam();
    Netlist nl;
    std::vector<Tff *> chain;
    for (int k = 0; k < depth; ++k) {
        auto &t = nl.create<Tff>("t" + std::to_string(k));
        if (k > 0)
            chain.back()->out.connect(t.in);
        chain.push_back(&t);
    }
    auto &src = nl.create<PulseSource>("s");
    src.out.connect(chain.front()->in);
    PulseTrace out;
    chain.back()->out.connect(out.input());

    const int pulses = 3 * (1 << depth) + 5; // not a multiple
    for (int k = 0; k < pulses; ++k)
        src.pulseAt((k + 1) * 20 * kPicosecond);
    nl.queue().run();
    EXPECT_EQ(out.count(),
              static_cast<std::size_t>(pulses / (1 << depth)));
}

INSTANTIATE_TEST_SUITE_P(Depths, TffChain,
                         ::testing::Values(1, 2, 3, 5, 8));

// --- TFF2 demux trees: perfect pulse partition --------------------------------

TEST(Tff2Tree, TwoLevelPartitionConservesPulses)
{
    Netlist nl;
    auto &root = nl.create<Tff2>("root");
    auto &l = nl.create<Tff2>("l");
    auto &r = nl.create<Tff2>("r");
    root.q1.connect(l.in);
    root.q2.connect(r.in);
    auto &src = nl.create<PulseSource>("s");
    src.out.connect(root.in);
    PulseTrace t0, t1, t2, t3;
    l.q1.connect(t0.input());
    l.q2.connect(t1.input());
    r.q1.connect(t2.input());
    r.q2.connect(t3.input());

    const int pulses = 41;
    for (int k = 0; k < pulses; ++k)
        src.pulseAt((k + 1) * 50 * kPicosecond);
    nl.queue().run();
    EXPECT_EQ(t0.count() + t1.count() + t2.count() + t3.count(),
              static_cast<std::size_t>(pulses));
    // Each leaf carries a quarter (round-robin over 4 phases).
    for (const auto *t : {&t0, &t1, &t2, &t3}) {
        EXPECT_GE(t->count(), static_cast<std::size_t>(pulses / 4));
        EXPECT_LE(t->count(), static_cast<std::size_t>(pulses / 4 + 1));
    }
}

// --- balanced fanout: exact simultaneity ---------------------------------------

class FanoutWidth : public ::testing::TestWithParam<int>
{
};

TEST_P(FanoutWidth, AllLeavesReceiveSimultaneously)
{
    const int width = GetParam();
    Netlist nl;
    std::vector<std::unique_ptr<PulseTrace>> traces;
    std::vector<InputPort *> dsts;
    for (int i = 0; i < width; ++i) {
        traces.push_back(
            std::make_unique<PulseTrace>("t" + std::to_string(i)));
        dsts.push_back(&traces.back()->input());
    }
    std::vector<std::unique_ptr<Splitter>> store;
    InputPort *head = buildBalancedFanout(nl, "fan", dsts, store);
    auto &src = nl.create<PulseSource>("s");
    src.out.connect(*head);
    src.pulseAt(100 * kPicosecond);
    nl.queue().run();

    ASSERT_EQ(traces.front()->count(), 1u);
    const Tick t0 = traces.front()->times().front();
    for (const auto &t : traces) {
        ASSERT_EQ(t->count(), 1u);
        EXPECT_EQ(t->times().front(), t0)
            << "width=" << width << " (skew breaks coincidence)";
    }
    EXPECT_EQ(store.size(), static_cast<std::size_t>(width - 1));
}

INSTANTIATE_TEST_SUITE_P(Widths, FanoutWidth,
                         ::testing::Values(2, 3, 5, 8, 13, 16, 33));

// --- merger tree conservation model ----------------------------------------------

TEST(MergerTreeProperty, SafeScheduleAlwaysConserves)
{
    Rng rng(4242);
    for (int trial = 0; trial < 10; ++trial) {
        const int width = 1 << rng.uniformInt(1, 4);
        Netlist nl;
        auto &add = nl.create<MergerTreeAdder>("m", width);
        PulseTrace out;
        add.out().connect(out.input());
        const Tick spacing = MergerTreeAdder::safeSpacing(width);
        std::size_t sent = 0;
        for (int i = 0; i < width; ++i) {
            auto &src = nl.create<PulseSource>("s" + std::to_string(i));
            src.out.connect(add.in(i));
            const int n = static_cast<int>(rng.uniformInt(0, 6));
            for (int k = 0; k < n; ++k) {
                src.pulseAt(10 * kPicosecond + k * spacing +
                            i * (spacing / width));
                ++sent;
            }
        }
        nl.queue().run();
        EXPECT_EQ(out.count(), sent) << "width=" << width;
        EXPECT_EQ(add.collisions(), 0u);
    }
}

// --- device physics corners ---------------------------------------------------------

class JunctionCorners
    : public ::testing::TestWithParam<std::tuple<double, double>>
{
};

TEST_P(JunctionCorners, PulseAreaIsFluxQuantized)
{
    // Phi0 quantization is parameter-independent: the defining physics
    // of SFQ across critical-current and capacitance corners.
    const auto [ic_scale, c_scale] = GetParam();
    analog::JunctionParams jp;
    jp.ic *= ic_scale;
    jp.c *= c_scale;
    // Keep damping near-critical so the junction doesn't free-run.
    jp.r = std::sqrt(analog::kPhi0 /
                     (2.0 * M_PI * jp.ic * jp.c));

    analog::Junction jj(jp);
    const double ic = jp.ic;
    // Overdrive window; different corners complete different slip
    // counts -- the invariant is that the voltage-time area is
    // quantized at n * Phi0 regardless.
    jj.run(120e-12, 5e-15, [ic](double t) {
        double i = 0.7 * ic * std::min(1.0, t / 10e-12);
        if (t > 30e-12 && t < 45e-12)
            i += 0.7 * ic;
        return i;
    });
    const int n = jj.fluxons();
    ASSERT_GE(n, 1) << "ic_scale=" << ic_scale
                    << " c_scale=" << c_scale;
    EXPECT_NEAR(jj.trace().integral(20e-12, 120e-12),
                n * analog::kPhi0, 0.06 * n * analog::kPhi0)
        << "n=" << n << " ic_scale=" << ic_scale
        << " c_scale=" << c_scale;
}

INSTANTIATE_TEST_SUITE_P(
    Corners, JunctionCorners,
    ::testing::Values(std::make_tuple(0.5, 1.0),
                      std::make_tuple(1.0, 1.0),
                      std::make_tuple(2.0, 1.0),
                      std::make_tuple(1.0, 0.5),
                      std::make_tuple(1.0, 2.0),
                      std::make_tuple(1.5, 1.5)));

} // namespace
} // namespace usfq
