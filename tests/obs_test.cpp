/**
 * @file
 * Observability layer tests (docs/observability.md): stats registry
 * arithmetic and rollups, histogram bucket edges, sweep-merge
 * determinism, kernel instrumentation toggling, phase timing, the
 * Perfetto exporter (validated by parsing its output back), the JSON
 * writer/parser, PulseTrace's binary-search queries and ring cap, and
 * the log counters.
 */

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/perfetto.hh"
#include "obs/phase.hh"
#include "obs/stats.hh"
#include "sfq/cells.hh"
#include "sfq/sources.hh"
#include "sim/netlist.hh"
#include "sim/sweep.hh"
#include "sim/trace.hh"
#include "util/json.hh"
#include "util/logging.hh"

namespace usfq
{
namespace
{

// --- histogram buckets -----------------------------------------------------

TEST(Histogram, BucketEdges)
{
    EXPECT_EQ(obs::Histogram::bucketOf(0), 0u);
    EXPECT_EQ(obs::Histogram::bucketOf(-7), 0u); // negatives clamp
    EXPECT_EQ(obs::Histogram::bucketOf(1), 1u);
    EXPECT_EQ(obs::Histogram::bucketOf(2), 2u);
    EXPECT_EQ(obs::Histogram::bucketOf(3), 2u);
    EXPECT_EQ(obs::Histogram::bucketOf(4), 3u);
    EXPECT_EQ(obs::Histogram::bucketOf(7), 3u);
    EXPECT_EQ(obs::Histogram::bucketOf(8), 4u);
    EXPECT_EQ(obs::Histogram::bucketOf((std::int64_t(1) << 62)), 63u);

    EXPECT_EQ(obs::Histogram::bucketLo(0), 0);
    EXPECT_EQ(obs::Histogram::bucketLo(1), 1);
    EXPECT_EQ(obs::Histogram::bucketLo(2), 2);
    EXPECT_EQ(obs::Histogram::bucketLo(3), 4);
    EXPECT_EQ(obs::Histogram::bucketLo(63), std::int64_t(1) << 62);

    // Every bucket's lower bound maps back into that bucket.
    for (std::size_t i = 0; i < obs::Histogram::kBuckets; ++i)
        EXPECT_EQ(obs::Histogram::bucketOf(obs::Histogram::bucketLo(i)),
                  i)
            << "bucket " << i;
}

TEST(Histogram, RecordAndSummaryStats)
{
    obs::Histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.min(), 0);
    EXPECT_EQ(h.max(), 0);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);

    for (std::int64_t s : {0, 1, 3, 1000})
        h.record(s);
    EXPECT_EQ(h.count(), 4u);
    EXPECT_EQ(h.sum(), 1004u);
    EXPECT_EQ(h.min(), 0);
    EXPECT_EQ(h.max(), 1000);
    EXPECT_DOUBLE_EQ(h.mean(), 251.0);
    EXPECT_EQ(h.bucket(0), 1u); // the 0
    EXPECT_EQ(h.bucket(1), 1u); // the 1
    EXPECT_EQ(h.bucket(2), 1u); // the 3
    EXPECT_EQ(h.bucket(10), 1u); // 1000 in [512, 1024)
}

TEST(Histogram, MergeIsBucketWise)
{
    obs::Histogram a, b;
    a.record(1);
    a.record(100);
    b.record(5);
    a.merge(b);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_EQ(a.sum(), 106u);
    EXPECT_EQ(a.min(), 1);
    EXPECT_EQ(a.max(), 100);

    // Merging an empty histogram changes nothing.
    obs::Histogram empty;
    a.merge(empty);
    EXPECT_EQ(a.count(), 3u);

    // Merging into an empty histogram copies the source.
    obs::Histogram c;
    c.merge(a);
    EXPECT_EQ(c.count(), 3u);
    EXPECT_EQ(c.min(), 1);
    EXPECT_EQ(c.max(), 100);
}

// --- registry --------------------------------------------------------------

TEST(StatsRegistry, CounterGaugeHistogramRoundTrip)
{
    obs::StatsRegistry reg;
    obs::Counter &c = reg.counter("a/count", 7);
    ++c;
    c += 4;
    EXPECT_EQ(reg.findCounter("a/count")->value(), 5u);
    EXPECT_EQ(reg.nodeOf("a/count"), 7);
    EXPECT_EQ(reg.nodeOf("missing"), -1);

    reg.gauge("a/depth", obs::Gauge::Merge::Max).high(3.0);
    reg.gauge("a/depth", obs::Gauge::Merge::Max).high(2.0);
    EXPECT_DOUBLE_EQ(reg.findGauge("a/depth")->value(), 3.0);

    reg.histogram("a/lat").record(12);
    EXPECT_EQ(reg.findHistogram("a/lat")->count(), 1u);

    // Wrong-kind lookups return null.
    EXPECT_EQ(reg.findGauge("a/count"), nullptr);
    EXPECT_EQ(reg.findCounter("a/lat"), nullptr);
    EXPECT_EQ(reg.size(), 3u);
}

TEST(StatsRegistry, SumCountersPrefixSemantics)
{
    obs::StatsRegistry reg;
    reg.counter("top/a/jj").set(10);
    reg.counter("top/a/sub/jj").set(5);
    reg.counter("top/b/jj").set(7);
    reg.counter("topx/jj").set(1000); // shares the prefix bytes only
    reg.counter("top/a/in_pulses").set(3);

    EXPECT_EQ(reg.sumCounters("top"), 25u);
    EXPECT_EQ(reg.sumCounters("top/a"), 18u);
    EXPECT_EQ(reg.sumCounters("top", "jj"), 22u);
    EXPECT_EQ(reg.sumCounters("top/a", "jj"), 15u);
    EXPECT_EQ(reg.sumCounters("top", "in_pulses"), 3u);
    EXPECT_EQ(reg.sumCounters("nothere"), 0u);
}

TEST(StatsRegistry, MergeFollowsPolicies)
{
    obs::StatsRegistry a, b;
    a.counter("n").set(2);
    b.counter("n").set(3);
    a.gauge("sum").set(1.0);
    b.gauge("sum").set(2.0);
    a.gauge("hi", obs::Gauge::Merge::Max).set(5.0);
    b.gauge("hi", obs::Gauge::Merge::Max).set(9.0);
    a.gauge("lo", obs::Gauge::Merge::Min).set(5.0);
    b.gauge("lo", obs::Gauge::Merge::Min).set(2.0);
    b.gauge("only_b").set(4.0);
    a.histogram("h").record(1);
    b.histogram("h").record(2);

    a.mergeFrom(b);
    EXPECT_EQ(a.findCounter("n")->value(), 5u);
    EXPECT_DOUBLE_EQ(a.findGauge("sum")->value(), 3.0);
    EXPECT_DOUBLE_EQ(a.findGauge("hi")->value(), 9.0);
    EXPECT_DOUBLE_EQ(a.findGauge("lo")->value(), 2.0);
    EXPECT_DOUBLE_EQ(a.findGauge("only_b")->value(), 4.0);
    EXPECT_EQ(a.findHistogram("h")->count(), 2u);
}

TEST(StatsRegistry, ScopedRegistryOverridesCurrent)
{
    obs::StatsRegistry mine;
    EXPECT_NE(&obs::currentStats(), &mine);
    {
        obs::ScopedStatsRegistry guard(mine);
        EXPECT_EQ(&obs::currentStats(), &mine);
        {
            obs::StatsRegistry inner;
            obs::ScopedStatsRegistry nested(inner);
            EXPECT_EQ(&obs::currentStats(), &inner);
        }
        EXPECT_EQ(&obs::currentStats(), &mine);
    }
    EXPECT_NE(&obs::currentStats(), &mine);
}

// --- netlist export rollups ------------------------------------------------

TEST(NetlistStats, RegistryRollupMatchesReport)
{
    Netlist nl("nl");
    auto &src = nl.create<PulseSource>("src");
    auto &j1 = nl.create<Jtl>("j1");
    auto &j2 = nl.create<Jtl>("j2");
    PulseTrace out("out");
    src.out.connect(j1.in);
    j1.out.connect(j2.in);
    j2.out.connect(out.input());
    src.pulsesAt({100, 200, 300});
    nl.run();

    obs::StatsRegistry reg;
    nl.exportStats(reg);

    EXPECT_EQ(reg.sumCounters("nl", "jj"),
              static_cast<std::uint64_t>(nl.totalJJs()));
    EXPECT_EQ(reg.sumCounters("nl", "switches"), nl.totalSwitches());

    const HierReport rpt = nl.report();
    EXPECT_EQ(reg.sumCounters("nl", "in_pulses"),
              static_cast<std::uint64_t>(rpt.root.inPulses));
    EXPECT_EQ(reg.sumCounters("nl", "out_pulses"),
              static_cast<std::uint64_t>(rpt.root.outPulses));
    EXPECT_EQ(reg.sumCounters("nl", "lost_pulses"),
              static_cast<std::uint64_t>(rpt.root.lost));

    // Per-component entries are keyed by hier-node id and path.
    EXPECT_EQ(reg.findCounter("nl/j1/jj")->value(),
              static_cast<std::uint64_t>(j1.jjCount()));
    EXPECT_GE(reg.nodeOf("nl/j1/jj"), 0);

    // Kernel stats ride under <name>/kernel.
    EXPECT_EQ(reg.findCounter("nl/kernel/executed")->value(),
              nl.queue().executed());

    // Counters overwrite on re-export into the same registry.
    nl.exportStats(reg);
    EXPECT_EQ(reg.sumCounters("nl", "jj"),
              static_cast<std::uint64_t>(nl.totalJJs()));
}

TEST(NetlistStats, PhaseTimesCoverBuildElaborateRun)
{
    Netlist nl("pnl");
    auto &src = nl.create<PulseSource>("src");
    auto &j = nl.create<Jtl>("j");
    PulseTrace out("out");
    src.out.connect(j.in);
    j.out.connect(out.input());
    src.pulseAt(50);
    nl.run();
    const auto &phases = nl.phaseTimes();
    EXPECT_TRUE(phases.count("build"));
    EXPECT_TRUE(phases.count("elaborate"));
    EXPECT_TRUE(phases.count("run"));
    nl.recordPhase("custom", 3.0);
    nl.recordPhase("custom", 4.0);
    EXPECT_DOUBLE_EQ(nl.phaseTimes().at("custom"), 7.0);
}

// --- kernel instrumentation toggle -----------------------------------------

TEST(KernelStats, DisabledCollectsNothing)
{
    obs::setKernelStatsEnabled(false);
    EventQueue eq;
    EXPECT_EQ(eq.kernelStats(), nullptr);
    eq.schedule(10, [] {});
    eq.run();
    obs::StatsRegistry reg;
    eq.exportStats(reg, "k");
    EXPECT_EQ(reg.findCounter("k/executed")->value(), 1u);
    EXPECT_EQ(reg.findCounter("k/scheduled"), nullptr);
    EXPECT_EQ(reg.findHistogram("k/schedule_to_fire_fs"), nullptr);
}

TEST(KernelStats, EnabledCountsSchedulesAndLatencies)
{
    obs::setKernelStatsEnabled(true);
    {
        EventQueue eq;
        ASSERT_NE(eq.kernelStats(), nullptr);
        for (Tick t = 0; t < 100; ++t)
            eq.schedule(t, [] {});
        // One far event exercises the overflow heap.
        eq.schedule(static_cast<Tick>(EventQueue::kNumBuckets) + 50,
                    [] {});
        eq.run();
        const auto *ks = eq.kernelStats();
        EXPECT_EQ(ks->scheduled, 101u);
        EXPECT_EQ(ks->overflowPushes, 1u);
        EXPECT_EQ(ks->scheduleLatency.count(), 101u);
        EXPECT_GE(ks->maxPending, 100u);
        EXPECT_EQ(ks->runCalls, 1u);

        obs::StatsRegistry reg;
        eq.exportStats(reg, "k");
        EXPECT_EQ(reg.findCounter("k/scheduled")->value(), 101u);
        EXPECT_EQ(reg.findHistogram("k/schedule_to_fire_fs")->count(),
                  101u);
        // Wall-clock never enters the registry.
        EXPECT_EQ(reg.findGauge("k/run_wall_us"), nullptr);

        eq.reset();
        EXPECT_EQ(eq.kernelStats()->scheduled, 0u);
    }
    obs::setKernelStatsEnabled(false);
}

TEST(KernelStats, InstrumentationDoesNotPerturbExecution)
{
    // The same schedule executes identically with stats on and off.
    auto runOnce = [] {
        EventQueue eq;
        std::vector<Tick> fired;
        for (Tick t : {5, 1, 9000, 3, 1})
            eq.schedule(t, [&fired, &eq] { fired.push_back(eq.now()); });
        eq.run();
        return fired;
    };
    obs::setKernelStatsEnabled(false);
    const auto off = runOnce();
    obs::setKernelStatsEnabled(true);
    const auto on = runOnce();
    obs::setKernelStatsEnabled(false);
    EXPECT_EQ(off, on);
}

// --- sweep merge determinism -----------------------------------------------

TEST(SweepStats, MergedRegistryIsThreadCountInvariant)
{
    auto sweepInto = [](int threads) {
        obs::StatsRegistry reg;
        obs::ScopedStatsRegistry guard(reg);
        SweepOptions opt;
        opt.threads = threads;
        runSweep(
            16,
            [](const ShardContext &ctx) {
                obs::StatsRegistry &cur = obs::currentStats();
                cur.counter("sweep/shards") += 1;
                cur.counter("sweep/seed_mod") += ctx.seed % 97;
                cur.gauge("sweep/max_seed_mod", obs::Gauge::Merge::Max)
                    .high(static_cast<double>(ctx.seed % 1001));
                cur.histogram("sweep/lat").record(
                    static_cast<std::int64_t>(ctx.seed % 4096));
                return 0;
            },
            opt);
        return reg;
    };

    const obs::StatsRegistry one = sweepInto(1);
    const obs::StatsRegistry four = sweepInto(4);

    EXPECT_EQ(one.findCounter("sweep/shards")->value(), 16u);
    ASSERT_EQ(one.size(), four.size());
    // Bit-identical: every entry agrees exactly.
    one.forEach([&](const std::string &name,
                    const obs::StatsRegistry::Entry &e) {
        switch (e.kind) {
          case obs::StatsRegistry::Entry::Kind::Counter:
            EXPECT_EQ(e.counter.value(),
                      four.findCounter(name)->value())
                << name;
            break;
          case obs::StatsRegistry::Entry::Kind::Gauge:
            EXPECT_EQ(e.gauge.value(), four.findGauge(name)->value())
                << name;
            break;
          case obs::StatsRegistry::Entry::Kind::Histogram: {
            const obs::Histogram *h = four.findHistogram(name);
            EXPECT_EQ(e.histogram.count(), h->count()) << name;
            EXPECT_EQ(e.histogram.sum(), h->sum()) << name;
            for (std::size_t i = 0; i < obs::Histogram::kBuckets; ++i)
                EXPECT_EQ(e.histogram.bucket(i), h->bucket(i))
                    << name << " bucket " << i;
            break;
          }
        }
    });

    // Shard stats stayed out of the global registry.
    EXPECT_EQ(obs::globalStats().findCounter("sweep/shards"), nullptr);
}

TEST(SweepStats, NetlistStatsMergeAcrossShards)
{
    // Each shard simulates its own netlist and exports into the shard
    // registry; the merged totals must equal shard count x per-shard.
    auto sweepInto = [](int threads) {
        obs::StatsRegistry reg;
        obs::ScopedStatsRegistry guard(reg);
        SweepOptions opt;
        opt.threads = threads;
        runSweep(
            4,
            [](const ShardContext &) {
                Netlist nl("shard");
                auto &src = nl.create<PulseSource>("src");
                auto &j = nl.create<Jtl>("j");
                PulseTrace out("out");
                src.out.connect(j.in);
                j.out.connect(out.input());
                src.pulsesAt({10, 20});
                nl.run();
                nl.exportStats();
                return out.count();
            },
            opt);
        return reg;
    };
    const obs::StatsRegistry one = sweepInto(1);
    const obs::StatsRegistry four = sweepInto(4);
    EXPECT_EQ(one.sumCounters("shard", "in_pulses"),
              four.sumCounters("shard", "in_pulses"));
    EXPECT_EQ(one.findCounter("shard/kernel/executed")->value(),
              four.findCounter("shard/kernel/executed")->value());
    // 4 shards x one Jtl each.
    EXPECT_EQ(one.sumCounters("shard", "jj"),
              4u * static_cast<std::uint64_t>(cell::kJtlJJs));
}

// --- phase log + Perfetto export -------------------------------------------

TEST(PhaseLog, ScopedPhaseRecordsSpansAndAccumulates)
{
    obs::PhaseLog log;
    double accum = 0.0;
    {
        obs::ScopedPhase p("phase_a", &accum, &log);
    }
    {
        obs::ScopedPhase p("phase_a", &accum, &log);
        p.finish();
        p.finish(); // idempotent
    }
    const auto spans = log.snapshot();
    ASSERT_EQ(spans.size(), 2u);
    EXPECT_EQ(spans[0].name, "phase_a");
    const auto totals = log.totalsUs();
    EXPECT_DOUBLE_EQ(totals.at("phase_a"), accum);
}

TEST(Perfetto, TraceParsesBackAndCarriesEvents)
{
    std::vector<obs::PhaseSpan> spans{
        {"elaborate", 100, 50, 0},
        {"run", 150, 2000, 0},
    };
    std::vector<obs::PulseTrack> tracks{
        {"fir.out", {1000000, 2000000, 3500000}},
    };
    std::ostringstream os;
    obs::writeChromeTrace(os, spans, tracks);

    JsonValue doc;
    std::string error;
    ASSERT_TRUE(parseJson(os.str(), doc, &error)) << error;
    const JsonValue *events = doc.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());

    std::size_t durations = 0, instants = 0, metadata = 0;
    bool sawRun = false;
    for (const JsonValue &ev : events->array) {
        const JsonValue *ph = ev.find("ph");
        ASSERT_NE(ph, nullptr);
        if (ph->str == "X") {
            ++durations;
            if (ev.find("name")->str == "run") {
                sawRun = true;
                EXPECT_DOUBLE_EQ(ev.find("ts")->number, 150.0);
                EXPECT_DOUBLE_EQ(ev.find("dur")->number, 2000.0);
            }
        } else if (ph->str == "i") {
            ++instants;
        } else if (ph->str == "M") {
            ++metadata;
        }
    }
    EXPECT_EQ(durations, 2u);
    EXPECT_EQ(instants, 3u);
    EXPECT_GE(metadata, 3u); // 2 process names + 1 track thread name
    EXPECT_TRUE(sawRun);
}

// --- JSON writer/parser ----------------------------------------------------

TEST(Json, WriterProducesParseableNestedDocument)
{
    std::ostringstream os;
    JsonWriter w(os);
    w.beginObject();
    w.kv("name", "bench \"x\"\n");
    w.kv("count", std::uint64_t(42));
    w.kv("ratio", 1.5);
    w.kv("bad", std::numeric_limits<double>::infinity());
    w.kv("neg", std::int64_t(-7));
    w.kv("flag", true);
    w.key("list").beginArray();
    w.value(1).value(2).value(3);
    w.endArray();
    w.key("nested").beginObject().kv("k", "v").endObject();
    w.endObject();

    JsonValue doc;
    std::string error;
    ASSERT_TRUE(parseJson(os.str(), doc, &error)) << error;
    EXPECT_EQ(doc.find("name")->str, "bench \"x\"\n");
    EXPECT_DOUBLE_EQ(doc.find("count")->number, 42.0);
    EXPECT_DOUBLE_EQ(doc.find("ratio")->number, 1.5);
    EXPECT_EQ(doc.find("bad")->type, JsonValue::Type::Null);
    EXPECT_DOUBLE_EQ(doc.find("neg")->number, -7.0);
    EXPECT_TRUE(doc.find("flag")->boolean);
    ASSERT_EQ(doc.find("list")->array.size(), 3u);
    EXPECT_EQ(doc.find("nested")->find("k")->str, "v");
}

TEST(Json, ParserRejectsMalformedInput)
{
    JsonValue v;
    std::string error;
    EXPECT_FALSE(parseJson("{", v, &error));
    EXPECT_FALSE(parseJson("", v, &error));
    EXPECT_FALSE(parseJson("{\"a\": 1} trailing", v, &error));
    EXPECT_FALSE(parseJson("{'single': 1}", v, &error));
    EXPECT_FALSE(parseJson("[1, 2,]", v, &error));
    EXPECT_TRUE(parseJson("  {\"u\": \"\\u0041\"} ", v, &error));
    EXPECT_EQ(v.find("u")->str, "A");
}

// --- PulseTrace ------------------------------------------------------------

TEST(PulseTraceObs, WindowQueriesUseOrderAndMatchBruteForce)
{
    PulseTrace tr("t");
    for (Tick t : {10, 20, 20, 35, 90})
        tr.input().receive(t);
    EXPECT_EQ(tr.count(), 5u);
    EXPECT_EQ(tr.totalCount(), 5u);
    EXPECT_EQ(tr.countInWindow(10, 36), 4u);
    EXPECT_EQ(tr.countInWindow(20, 21), 2u);
    EXPECT_EQ(tr.countInWindow(0, 10), 0u);
    EXPECT_EQ(tr.countInWindow(90, 90), 0u); // empty window
    EXPECT_EQ(tr.countInWindow(91, 10), 0u); // inverted window
    EXPECT_EQ(tr.minSpacing(), 0);           // the duplicate 20s
    EXPECT_EQ(tr.first(), 10);
    EXPECT_EQ(tr.last(), 90);
}

TEST(PulseTraceObs, CapacityBoundsMemoryButKeepsSummary)
{
    PulseTrace tr("t");
    tr.setCapacity(4);
    for (Tick t = 0; t < 100; ++t)
        tr.input().receive(t * 10);
    EXPECT_EQ(tr.totalCount(), 100u);
    EXPECT_LE(tr.count(), 8u); // trimmed in blocks, bounded by 2x cap
    EXPECT_EQ(tr.first(), 0);  // summary covers evicted pulses
    EXPECT_EQ(tr.last(), 990);
    EXPECT_EQ(tr.minSpacing(), 10);
    // The retained window is the most recent one.
    EXPECT_GE(tr.times().front(), 920);

    tr.setCapacity(2); // shrinking trims immediately
    EXPECT_LE(tr.count(), 2u);

    tr.clear();
    EXPECT_EQ(tr.totalCount(), 0u);
    EXPECT_EQ(tr.minSpacing(), kTickInvalid);
    EXPECT_EQ(tr.first(), kTickInvalid);
}

// --- log counters ----------------------------------------------------------

TEST(LogCounters, CountEvenWhileQuiet)
{
    resetLogCounts();
    setQuiet(true);
    warn("obs_test: counted but silent %d", 1);
    warn("obs_test: counted but silent %d", 2);
    inform("obs_test: counted but silent");
    setQuiet(false);
    EXPECT_EQ(warnCount(), 2u);
    EXPECT_EQ(informCount(), 1u);

    obs::StatsRegistry reg;
    obs::captureLogStats(reg);
    EXPECT_EQ(reg.findCounter("log/warnings")->value(), 2u);
    EXPECT_EQ(reg.findCounter("log/informs")->value(), 1u);
    resetLogCounts();
    EXPECT_EQ(warnCount(), 0u);
}

} // namespace
} // namespace usfq
