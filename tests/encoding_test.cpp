/**
 * @file
 * Tests of the U-SFQ data representation (paper Section 3): race-logic
 * ids, pulse-stream layout, complements, and the pure counting models of
 * the multiplier and counting network.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "core/encoding.hh"
#include "util/random.hh"

namespace usfq
{
namespace
{

TEST(EpochConfig, BasicGeometry)
{
    const EpochConfig cfg(3);
    EXPECT_EQ(cfg.bits(), 3);
    EXPECT_EQ(cfg.nmax(), 8);
    EXPECT_EQ(cfg.slotWidth(), 9 * kPicosecond);
    EXPECT_EQ(cfg.duration(), 72 * kPicosecond);
}

TEST(EpochConfig, RlTimesAreSlotBoundaries)
{
    const EpochConfig cfg(4);
    EXPECT_EQ(cfg.rlTime(0), 0);
    EXPECT_EQ(cfg.rlTime(3), 27 * kPicosecond);
    EXPECT_EQ(cfg.rlTime(16), cfg.duration());
    EXPECT_EQ(cfg.rlArrival(0, 100), 100 + EpochConfig::kRlPulseOffset);
}

TEST(EpochConfig, RlSlotOfInvertsRlTime)
{
    const EpochConfig cfg(5);
    for (int id = 0; id <= cfg.nmax(); ++id)
        EXPECT_EQ(cfg.rlSlotOf(cfg.rlTime(id)), id);
}

TEST(EpochConfig, RlUnipolarBipolarRoundTrip)
{
    const EpochConfig cfg(6);
    EXPECT_DOUBLE_EQ(cfg.rlUnipolar(0), 0.0);
    EXPECT_DOUBLE_EQ(cfg.rlUnipolar(cfg.nmax()), 1.0);
    EXPECT_DOUBLE_EQ(cfg.rlBipolar(0), -1.0);
    EXPECT_DOUBLE_EQ(cfg.rlBipolar(cfg.nmax()), 1.0);
    EXPECT_DOUBLE_EQ(cfg.rlBipolar(cfg.nmax() / 2), 0.0);

    for (double v : {0.0, 0.25, 0.5, 0.75, 1.0})
        EXPECT_NEAR(cfg.rlUnipolar(cfg.rlIdOfUnipolar(v)), v,
                    0.5 / cfg.nmax());
    for (double v : {-1.0, -0.5, 0.0, 0.5, 1.0})
        EXPECT_NEAR(cfg.rlBipolar(cfg.rlIdOfBipolar(v)), v,
                    1.0 / cfg.nmax());
}

TEST(EpochConfig, RlIdClamps)
{
    const EpochConfig cfg(4);
    EXPECT_EQ(cfg.rlIdOfUnipolar(-0.3), 0);
    EXPECT_EQ(cfg.rlIdOfUnipolar(1.7), 16);
    EXPECT_EQ(cfg.rlIdOfBipolar(-2.0), 0);
    EXPECT_EQ(cfg.rlIdOfBipolar(2.0), 16);
}

TEST(EpochConfig, StreamSlotsCountAndRange)
{
    const EpochConfig cfg(4);
    for (int n = 0; n <= cfg.nmax(); ++n) {
        const auto slots = cfg.streamSlots(n);
        EXPECT_EQ(static_cast<int>(slots.size()), n);
        for (int s : slots) {
            EXPECT_GE(s, 0);
            EXPECT_LT(s, cfg.nmax());
        }
        EXPECT_TRUE(std::is_sorted(slots.begin(), slots.end()));
    }
}

TEST(EpochConfig, StreamSlotsEvenlySpread)
{
    // An evenly spread n-pulse stream has floor/ceil(k*n/N) pulses in
    // any prefix of k slots -- the property the multiplier relies on.
    const EpochConfig cfg(6);
    for (int n = 1; n <= cfg.nmax(); ++n) {
        const auto slots = cfg.streamSlots(n);
        for (int k = 0; k <= cfg.nmax(); ++k) {
            const auto in_prefix = std::count_if(
                slots.begin(), slots.end(),
                [k](int s) { return s < k; });
            const double ideal =
                static_cast<double>(k) * n / cfg.nmax();
            EXPECT_LE(std::abs(in_prefix - ideal), 1.0)
                << "n=" << n << " k=" << k;
        }
    }
}

TEST(EpochConfig, FullStreamOccupiesEverySlot)
{
    const EpochConfig cfg(3);
    const auto slots = cfg.streamSlots(8);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(slots[static_cast<std::size_t>(i)], i);
}

TEST(EpochConfig, ComplementSlotsPartitionGrid)
{
    const EpochConfig cfg(5);
    for (int n = 0; n <= cfg.nmax(); ++n) {
        const auto a = cfg.streamSlots(n);
        const auto b = cfg.complementSlots(n);
        EXPECT_EQ(a.size() + b.size(),
                  static_cast<std::size_t>(cfg.nmax()));
        std::set<int> all(a.begin(), a.end());
        for (int s : b)
            EXPECT_TRUE(all.insert(s).second) << "slot " << s;
        EXPECT_EQ(all.size(), static_cast<std::size_t>(cfg.nmax()));
    }
}

TEST(EpochConfig, StreamTimesAtSlotCenters)
{
    const EpochConfig cfg(3);
    const auto times = cfg.streamTimes(8, 1000);
    ASSERT_EQ(times.size(), 8u);
    EXPECT_EQ(times[0], 1000 + 4500);
    EXPECT_EQ(times[1], 1000 + 9 * kPicosecond + 4500);
}

TEST(EpochConfig, DecodeInvertsEncode)
{
    const EpochConfig cfg(8);
    for (double v : {0.0, 0.1, 0.33, 0.5, 0.99, 1.0}) {
        const int n = cfg.streamCountOfUnipolar(v);
        EXPECT_NEAR(cfg.decodeUnipolar(static_cast<std::size_t>(n)), v,
                    0.5 / cfg.nmax());
    }
    for (double v : {-1.0, -0.4, 0.0, 0.6, 1.0}) {
        const int n = cfg.streamCountOfBipolar(v);
        EXPECT_NEAR(cfg.decodeBipolar(static_cast<std::size_t>(n)), v,
                    1.0 / cfg.nmax());
    }
}

// --- counting models ---------------------------------------------------------

TEST(ProductModel, ClosedFormMatchesSlotEnumeration)
{
    // The O(1) prefix-count formulas must agree with literally
    // counting pulses in the materialized slot pattern.
    for (int bits : {2, 4, 6, 8}) {
        const EpochConfig cfg(bits);
        for (int n = 0; n <= cfg.nmax(); n += std::max(1, cfg.nmax() / 8)) {
            const auto slots = cfg.streamSlots(n);
            const auto comp = cfg.complementSlots(n);
            for (int id = 0; id <= cfg.nmax();
                 id += std::max(1, cfg.nmax() / 8)) {
                const auto o1 = std::count_if(
                    slots.begin(), slots.end(),
                    [id](int s) { return s < id; });
                EXPECT_EQ(unipolarProductCount(cfg, n, id), o1)
                    << "bits=" << bits << " n=" << n << " id=" << id;
                const auto o2 = std::count_if(
                    comp.begin(), comp.end(),
                    [id](int s) { return s >= id; });
                EXPECT_EQ(bipolarProductCount(cfg, n, id), o1 + o2)
                    << "bits=" << bits << " n=" << n << " id=" << id;
            }
        }
    }
}

class ProductModel : public ::testing::TestWithParam<int>
{
};

TEST_P(ProductModel, UnipolarProductWithinOneLsb)
{
    const EpochConfig cfg(GetParam());
    const int nmax = cfg.nmax();
    Rng rng(42);
    for (int trial = 0; trial < 300; ++trial) {
        const int n = static_cast<int>(rng.uniformInt(0, nmax));
        const int id = static_cast<int>(rng.uniformInt(0, nmax));
        const int count = unipolarProductCount(cfg, n, id);
        const double ideal = cfg.decodeUnipolar(0) +
                             (static_cast<double>(n) / nmax) *
                                 (static_cast<double>(id) / nmax);
        EXPECT_LE(std::fabs(cfg.decodeUnipolar(
                      static_cast<std::size_t>(count)) - ideal),
                  1.0 / nmax)
            << "n=" << n << " id=" << id;
    }
}

TEST_P(ProductModel, BipolarProductWithinTwoLsb)
{
    const EpochConfig cfg(GetParam());
    const int nmax = cfg.nmax();
    Rng rng(7);
    for (int trial = 0; trial < 300; ++trial) {
        const int n = static_cast<int>(rng.uniformInt(0, nmax));
        const int id = static_cast<int>(rng.uniformInt(0, nmax));
        const int count = bipolarProductCount(cfg, n, id);
        const double a = 2.0 * n / nmax - 1.0;
        const double b = 2.0 * id / nmax - 1.0;
        EXPECT_LE(std::fabs(cfg.decodeBipolar(
                      static_cast<std::size_t>(count)) - a * b),
                  4.0 / nmax)
            << "n=" << n << " id=" << id;
    }
}

INSTANTIATE_TEST_SUITE_P(Resolutions, ProductModel,
                         ::testing::Values(3, 4, 6, 8, 10));

TEST(ProductModel, UnipolarExtremes)
{
    const EpochConfig cfg(4);
    // 1 * 1 = 1
    EXPECT_EQ(unipolarProductCount(cfg, 16, 16), 16);
    // x * 0 = 0 and 0 * x = 0
    EXPECT_EQ(unipolarProductCount(cfg, 16, 0), 0);
    EXPECT_EQ(unipolarProductCount(cfg, 0, 16), 0);
}

TEST(ProductModel, BipolarExtremes)
{
    const EpochConfig cfg(4);
    const int nmax = cfg.nmax();
    // (+1) * (+1) = +1: all stream pulses pass.
    EXPECT_EQ(bipolarProductCount(cfg, nmax, nmax), nmax);
    // (-1) * (-1) = +1: all complement pulses pass.
    EXPECT_EQ(bipolarProductCount(cfg, 0, 0), nmax);
    // (-1) * (+1) = -1: nothing passes.
    EXPECT_EQ(bipolarProductCount(cfg, 0, nmax), 0);
    EXPECT_EQ(bipolarProductCount(cfg, nmax, 0), 0);
}

TEST(ProductModel, PaperFig3bExamples)
{
    // First example: 3-bit resolution (Nmax = 8), result 1/8.
    const EpochConfig cfg3(3);
    EXPECT_EQ(unipolarProductCount(cfg3, cfg3.streamCountOfUnipolar(0.5),
                                   cfg3.rlIdOfUnipolar(0.25)),
              1);
    // Second example: 4-bit resolution (Nmax = 16), result 6/16 = 0.375.
    const EpochConfig cfg4(4);
    EXPECT_EQ(unipolarProductCount(cfg4, cfg4.streamCountOfUnipolar(0.75),
                                   cfg4.rlIdOfUnipolar(0.5)),
              6);
}

// --- tree counting network model ----------------------------------------------

TEST(TreeModel, TwoInputAverage)
{
    EXPECT_EQ(treeNetworkCount({4, 4}), 4);
    EXPECT_EQ(treeNetworkCount({5, 4}), 5); // ceil(9/2)
    EXPECT_EQ(treeNetworkCount({0, 0}), 0);
}

TEST(TreeModel, FourInputAverageWithinRounding)
{
    Rng rng(3);
    for (int trial = 0; trial < 200; ++trial) {
        std::vector<int> in(4);
        int sum = 0;
        for (auto &v : in) {
            v = static_cast<int>(rng.uniformInt(0, 64));
            sum += v;
        }
        const int out = treeNetworkCount(in);
        EXPECT_LE(std::fabs(out - sum / 4.0), 1.0);
    }
}

TEST(TreeModel, LargeFanInErrorBoundedByDepth)
{
    Rng rng(9);
    for (int m : {8, 16, 32, 64}) {
        std::vector<int> in(static_cast<std::size_t>(m));
        int sum = 0;
        for (auto &v : in) {
            v = static_cast<int>(rng.uniformInt(0, 256));
            sum += v;
        }
        const int out = treeNetworkCount(in);
        const double depth = std::log2(m);
        EXPECT_LE(std::fabs(out - static_cast<double>(sum) / m), depth)
            << "m=" << m;
    }
}

} // namespace
} // namespace usfq
