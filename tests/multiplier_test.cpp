/**
 * @file
 * Pulse-level tests of the U-SFQ multipliers (paper §4.1): the netlists
 * must agree with the pure counting models across resolutions and
 * operand sweeps, and their JJ counts must match the paper's area story.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/encoding.hh"
#include "core/multiplier.hh"
#include "sim/trace.hh"
#include "sfq/sources.hh"
#include "util/random.hh"

namespace usfq
{
namespace
{

/** Run one unipolar multiply on the netlist; return output pulse count. */
int
runUnipolar(const EpochConfig &cfg, int stream_count, int rl_id)
{
    Netlist nl;
    auto &mult = nl.create<UnipolarMultiplier>("mult");
    auto &src_e = nl.create<PulseSource>("e");
    auto &src_a = nl.create<PulseSource>("a");
    auto &src_b = nl.create<PulseSource>("b");
    PulseTrace out;

    src_e.out.connect(mult.epoch());
    src_a.out.connect(mult.streamIn());
    src_b.out.connect(mult.rlIn());
    mult.out().connect(out.input());

    const Tick start = 0;
    src_e.pulseAt(start);
    src_b.pulseAt(cfg.rlArrival(rl_id, start));
    src_a.pulsesAt(cfg.streamTimes(stream_count, start));

    nl.queue().run();
    return static_cast<int>(out.count());
}

/** Run one bipolar multiply on the netlist; return output pulse count. */
int
runBipolar(const EpochConfig &cfg, int stream_count, int rl_id)
{
    Netlist nl;
    auto &mult = nl.create<BipolarMultiplier>("mult");
    auto &src_e = nl.create<PulseSource>("e");
    auto &src_a = nl.create<PulseSource>("a");
    auto &src_b = nl.create<PulseSource>("b");
    auto &src_clk = nl.create<PulseSource>("clk");
    PulseTrace out;

    src_e.out.connect(mult.epoch());
    src_a.out.connect(mult.streamIn());
    src_b.out.connect(mult.rlIn());
    src_clk.out.connect(mult.clkIn());
    mult.out().connect(out.input());

    const Tick start = 0;
    src_e.pulseAt(start);
    src_b.pulseAt(cfg.rlArrival(rl_id, start));
    src_a.pulsesAt(cfg.streamTimes(stream_count, start));
    src_clk.pulsesAt(BipolarMultiplier::gridClockTimes(cfg, start));

    nl.queue().run();
    return static_cast<int>(out.count());
}

// --- unipolar ---------------------------------------------------------------

TEST(UnipolarMultiplier, ZeroTimesAnythingIsZero)
{
    const EpochConfig cfg(4);
    EXPECT_EQ(runUnipolar(cfg, 0, 16), 0);
    EXPECT_EQ(runUnipolar(cfg, 16, 0), 0);
}

TEST(UnipolarMultiplier, OneTimesOneIsOne)
{
    const EpochConfig cfg(4);
    EXPECT_EQ(runUnipolar(cfg, 16, 16), 16);
}

TEST(UnipolarMultiplier, PaperFig3bFirstExample)
{
    // 3-bit resolution, A = 0.5, B = 0.25 -> 1 pulse = 1/8.
    const EpochConfig cfg(3);
    EXPECT_EQ(runUnipolar(cfg, 4, 2), 1);
}

TEST(UnipolarMultiplier, PaperFig3bSecondExample)
{
    // 4-bit resolution, A = 0.75, B = 0.5 -> 6 pulses = 0.375.
    const EpochConfig cfg(4);
    EXPECT_EQ(runUnipolar(cfg, 12, 8), 6);
}

class UnipolarSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(UnipolarSweep, NetlistMatchesCountingModel)
{
    const EpochConfig cfg(GetParam());
    const int nmax = cfg.nmax();
    Rng rng(100 + GetParam());
    for (int trial = 0; trial < 60; ++trial) {
        const int n = static_cast<int>(rng.uniformInt(0, nmax));
        const int id = static_cast<int>(rng.uniformInt(0, nmax));
        EXPECT_EQ(runUnipolar(cfg, n, id),
                  UnipolarMultiplier::expectedCount(cfg, n, id))
            << "n=" << n << " id=" << id;
    }
}

INSTANTIATE_TEST_SUITE_P(Resolutions, UnipolarSweep,
                         ::testing::Values(2, 3, 4, 5, 6, 8));

TEST(UnipolarMultiplier, ProductAccuracyWithinLsb)
{
    const EpochConfig cfg(6);
    Rng rng(5);
    for (int trial = 0; trial < 40; ++trial) {
        const double a = rng.uniform();
        const double b = rng.uniform();
        const int count = runUnipolar(cfg, cfg.streamCountOfUnipolar(a),
                                      cfg.rlIdOfUnipolar(b));
        EXPECT_NEAR(cfg.decodeUnipolar(static_cast<std::size_t>(count)),
                    a * b, 2.0 / cfg.nmax());
    }
}

TEST(UnipolarMultiplier, AreaIsThirteenJJs)
{
    Netlist nl;
    auto &mult = nl.create<UnipolarMultiplier>("m");
    EXPECT_EQ(mult.jjCount(), cell::kNdroJJs + cell::kJtlJJs); // 13
    EXPECT_EQ(nl.totalJJs(), mult.jjCount());
}

TEST(UnipolarMultiplier, ReusableAcrossEpochsAfterReset)
{
    const EpochConfig cfg(4);
    Netlist nl;
    auto &mult = nl.create<UnipolarMultiplier>("mult");
    auto &src_e = nl.create<PulseSource>("e");
    auto &src_a = nl.create<PulseSource>("a");
    auto &src_b = nl.create<PulseSource>("b");
    PulseTrace out;
    src_e.out.connect(mult.epoch());
    src_a.out.connect(mult.streamIn());
    src_b.out.connect(mult.rlIn());
    mult.out().connect(out.input());

    for (int rep = 0; rep < 3; ++rep) {
        nl.resetAll();
        out.clear();
        src_e.pulseAt(0);
        src_b.pulseAt(cfg.rlArrival(8));
        src_a.pulsesAt(cfg.streamTimes(16));
        nl.queue().run();
        EXPECT_EQ(out.count(), 8u) << "rep " << rep;
    }
}

// --- bipolar -----------------------------------------------------------------

TEST(BipolarMultiplier, SignRules)
{
    const EpochConfig cfg(4);
    const int nmax = cfg.nmax();
    // (+1)*(+1) = +1
    EXPECT_EQ(runBipolar(cfg, nmax, nmax), nmax);
    // (-1)*(-1) = +1
    EXPECT_EQ(runBipolar(cfg, 0, 0), nmax);
    // (-1)*(+1) = -1 and (+1)*(-1) = -1
    EXPECT_EQ(runBipolar(cfg, 0, nmax), 0);
    EXPECT_EQ(runBipolar(cfg, nmax, 0), 0);
}

TEST(BipolarMultiplier, ZeroTimesAnythingIsZeroBipolar)
{
    const EpochConfig cfg(6);
    const int half = cfg.nmax() / 2; // bipolar zero
    Rng rng(17);
    for (int trial = 0; trial < 10; ++trial) {
        const int id = static_cast<int>(rng.uniformInt(0, cfg.nmax()));
        const int count = runBipolar(cfg, half, id);
        EXPECT_NEAR(cfg.decodeBipolar(static_cast<std::size_t>(count)),
                    0.0, 4.0 / cfg.nmax())
            << "id=" << id;
    }
}

class BipolarSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(BipolarSweep, NetlistMatchesCountingModel)
{
    const EpochConfig cfg(GetParam());
    const int nmax = cfg.nmax();
    Rng rng(200 + GetParam());
    for (int trial = 0; trial < 40; ++trial) {
        const int n = static_cast<int>(rng.uniformInt(0, nmax));
        const int id = static_cast<int>(rng.uniformInt(0, nmax));
        EXPECT_EQ(runBipolar(cfg, n, id),
                  BipolarMultiplier::expectedCount(cfg, n, id))
            << "n=" << n << " id=" << id;
    }
}

INSTANTIATE_TEST_SUITE_P(Resolutions, BipolarSweep,
                         ::testing::Values(2, 3, 4, 5, 6));

TEST(BipolarMultiplier, ProductAccuracy)
{
    const EpochConfig cfg(6);
    Rng rng(23);
    for (int trial = 0; trial < 30; ++trial) {
        const double a = rng.uniform(-1.0, 1.0);
        const double b = rng.uniform(-1.0, 1.0);
        const int count = runBipolar(cfg, cfg.streamCountOfBipolar(a),
                                     cfg.rlIdOfBipolar(b));
        EXPECT_NEAR(cfg.decodeBipolar(static_cast<std::size_t>(count)),
                    a * b, 6.0 / cfg.nmax());
    }
}

TEST(BipolarMultiplier, AreaIsFortySixJJs)
{
    // The paper's 370x claim versus the 17 kJJ bit-parallel multiplier
    // [37] implies a ~46 JJ unary multiplier.
    Netlist nl;
    auto &mult = nl.create<BipolarMultiplier>("m");
    EXPECT_EQ(mult.jjCount(), 46);
    EXPECT_NEAR(17000.0 / mult.jjCount(), 370.0, 10.0);
}

TEST(BipolarMultiplier, AreaIndependentOfResolution)
{
    // Unary area does not grow with bits (paper Fig. 4): the same
    // netlist serves every resolution.
    Netlist nl;
    auto &mult = nl.create<BipolarMultiplier>("m");
    const int jj = mult.jjCount();
    for (int bits : {4, 8, 16}) {
        const EpochConfig cfg(bits);
        (void)cfg;
        EXPECT_EQ(mult.jjCount(), jj);
    }
}

TEST(BipolarMultiplier, GridClockHasOnePulsePerSlot)
{
    const EpochConfig cfg(4);
    const auto clk = BipolarMultiplier::gridClockTimes(cfg, 0);
    ASSERT_EQ(clk.size(), 16u);
    for (std::size_t i = 1; i < clk.size(); ++i)
        EXPECT_EQ(clk[i] - clk[i - 1], cfg.slotWidth());
}

} // namespace
} // namespace usfq
