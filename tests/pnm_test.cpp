/**
 * @file
 * Tests of the pulse-number multipliers (paper §4.3, Fig. 9): both
 * flavours must emit exactly the programmed number of pulses per epoch;
 * the TFF2 version must be markedly more uniform than the classic one.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/pnm.hh"
#include "sim/trace.hh"
#include "sfq/sources.hh"
#include "util/stats.hh"

namespace usfq
{
namespace
{

constexpr Tick kTclk = 200 * kPicosecond; // comfortable low-rate clock

/** Drive @p pnm with @p epochs x 2^bits clock pulses; trace the stream. */
template <typename Pnm>
struct PnmHarness
{
    Netlist nl;
    Pnm *pnm;
    ClockSource *clk;
    PulseTrace stream;
    PulseTrace epochs;

    explicit PnmHarness(int bits, int value, int num_epochs = 1)
    {
        pnm = &nl.create<Pnm>("pnm", bits);
        clk = &nl.create<ClockSource>("clk");
        clk->out.connect(pnm->clkIn());
        pnm->out().connect(stream.input());
        pnm->epochOut().connect(epochs.input());
        pnm->program(value);
        clk->program(kTclk, kTclk,
                     static_cast<std::uint64_t>(num_epochs)
                         << static_cast<unsigned>(bits));
        nl.queue().run();
    }
};

// --- pulse-count correctness -----------------------------------------------

class PnmCounts : public ::testing::TestWithParam<int>
{
};

TEST_P(PnmCounts, ClassicEmitsProgrammedCount)
{
    const int bits = GetParam();
    for (int value : {0, 1, (1 << bits) / 2, (1 << bits) - 1}) {
        PnmHarness<ClassicPnm> h(bits, value);
        EXPECT_EQ(h.stream.count(), static_cast<std::size_t>(value))
            << "bits=" << bits << " value=" << value;
    }
}

TEST_P(PnmCounts, UniformEmitsProgrammedCount)
{
    const int bits = GetParam();
    for (int value = 0; value < (1 << bits); ++value) {
        PnmHarness<UniformPnm> h(bits, value);
        EXPECT_EQ(h.stream.count(), static_cast<std::size_t>(value))
            << "bits=" << bits << " value=" << value;
    }
}

INSTANTIATE_TEST_SUITE_P(Resolutions, PnmCounts,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(Pnm, PaperFig9aExamples)
{
    // NDROs set to "1111" yield 15 pulses; "0100" yields four.
    PnmHarness<ClassicPnm> full(4, 0b1111);
    EXPECT_EQ(full.stream.count(), 15u);
    PnmHarness<ClassicPnm> s1(4, 0b0100);
    EXPECT_EQ(s1.stream.count(), 4u);
}

TEST(Pnm, EpochMarkerOncePerEpoch)
{
    PnmHarness<UniformPnm> h(4, 7, 3);
    EXPECT_EQ(h.epochs.count(), 3u);
    PnmHarness<ClassicPnm> hc(4, 7, 3);
    EXPECT_EQ(hc.epochs.count(), 3u);
}

TEST(Pnm, MultiEpochStreamRepeats)
{
    const int bits = 4, value = 11, epochs = 4;
    PnmHarness<UniformPnm> h(bits, value, epochs);
    EXPECT_EQ(h.stream.count(),
              static_cast<std::size_t>(value * epochs));
}

// --- uniformity (the Fig. 9 story) --------------------------------------------

/** Coefficient of variation of inter-pulse gaps. */
double
spacingCv(const std::vector<Tick> &times)
{
    RunningStats gaps;
    for (std::size_t i = 1; i < times.size(); ++i)
        gaps.add(static_cast<double>(times[i] - times[i - 1]));
    return gaps.mean() > 0 ? gaps.stddev() / gaps.mean() : 0.0;
}

TEST(Pnm, Tff2StreamIsMoreUniform)
{
    const int bits = 5;
    const int value = (1 << bits) - 1; // worst case for burstiness
    PnmHarness<ClassicPnm> classic(bits, value);
    PnmHarness<UniformPnm> uniform(bits, value);
    ASSERT_EQ(classic.stream.count(), static_cast<std::size_t>(value));
    ASSERT_EQ(uniform.stream.count(), static_cast<std::size_t>(value));

    const double cv_classic = spacingCv(classic.stream.times());
    const double cv_uniform = spacingCv(uniform.stream.times());
    EXPECT_LT(cv_uniform, cv_classic * 0.5)
        << "classic CV=" << cv_classic << " uniform CV=" << cv_uniform;
}

TEST(Pnm, UniformStreamMinSpacingIsClockScale)
{
    // A uniform stream's pulses never bunch below roughly one clock
    // period; the classic PNM bunches at cell-delay scale.
    const int bits = 4;
    PnmHarness<UniformPnm> uniform(bits, 15);
    PnmHarness<ClassicPnm> classic(bits, 15);
    EXPECT_GE(uniform.stream.minSpacing(), kTclk / 2);
    EXPECT_LT(classic.stream.minSpacing(), 20 * kPicosecond);
}

// --- area ---------------------------------------------------------------------

TEST(Pnm, AreaScalesLinearlyWithBits)
{
    Netlist nl;
    auto &p4 = nl.create<UniformPnm>("p4", 4);
    auto &p8 = nl.create<UniformPnm>("p8", 8);
    // Per stage: TFF2 + NDRO (+ merger beyond the first stage).
    const int stage = cell::kTff2JJs + cell::kNdroJJs + cell::kMergerJJs;
    EXPECT_NEAR(p8.jjCount() - p4.jjCount(), 4 * stage, 1);
    EXPECT_LT(p4.jjCount(), p8.jjCount());
}

TEST(Pnm, UniformCostsNoSplitters)
{
    // The TFF2's second port replaces the classic tap splitter, so the
    // uniform PNM is at most one NDRO-equivalent larger per stage.
    Netlist nl;
    auto &c = nl.create<ClassicPnm>("c", 8);
    auto &u = nl.create<UniformPnm>("u", 8);
    EXPECT_LE(std::abs(u.jjCount() - c.jjCount()), 8 * 2);
}

} // namespace
} // namespace usfq
