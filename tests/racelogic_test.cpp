/**
 * @file
 * Tests of the race-logic dynamic-programming lattice: edit distance
 * computed by pulse wavefronts must match the classic DP algorithm.
 */

#include <gtest/gtest.h>

#include "core/racelogic.hh"
#include "sim/trace.hh"
#include "util/random.hh"

namespace usfq
{
namespace
{

TEST(EditDistanceReference, KnownValues)
{
    EXPECT_EQ(editDistanceReference("kitten", "sitting"), 3);
    EXPECT_EQ(editDistanceReference("flaw", "lawn"), 2);
    EXPECT_EQ(editDistanceReference("abc", "abc"), 0);
    EXPECT_EQ(editDistanceReference("a", "b"), 1);
    EXPECT_EQ(editDistanceReference("abcd", "d"), 3);
}

TEST(RaceLogicEditDistance, MatchesReferenceOnClassics)
{
    EXPECT_EQ(raceLogicEditDistance("kitten", "sitting"), 3);
    EXPECT_EQ(raceLogicEditDistance("flaw", "lawn"), 2);
    EXPECT_EQ(raceLogicEditDistance("abc", "abc"), 0);
    EXPECT_EQ(raceLogicEditDistance("a", "b"), 1);
}

TEST(RaceLogicEditDistance, IdenticalStringsZero)
{
    EXPECT_EQ(raceLogicEditDistance("gattaca", "gattaca"), 0);
}

TEST(RaceLogicEditDistance, CompletelyDifferentStrings)
{
    EXPECT_EQ(raceLogicEditDistance("aaaa", "bbbb"), 4);
}

TEST(RaceLogicEditDistance, AsymmetricLengths)
{
    EXPECT_EQ(raceLogicEditDistance("ac", "abcde"),
              editDistanceReference("ac", "abcde"));
}

TEST(RaceLogicEditDistance, RandomStringsProperty)
{
    Rng rng(2718);
    const char alphabet[] = "acgt";
    for (int trial = 0; trial < 20; ++trial) {
        std::string a, b;
        const auto la = rng.uniformInt(1, 6);
        const auto lb = rng.uniformInt(1, 6);
        for (int i = 0; i < la; ++i)
            a += alphabet[rng.uniformInt(0, 3)];
        for (int i = 0; i < lb; ++i)
            b += alphabet[rng.uniformInt(0, 3)];
        EXPECT_EQ(raceLogicEditDistance(a, b),
                  editDistanceReference(a, b))
            << "a=" << a << " b=" << b;
    }
}

TEST(RaceLogicEditDistance, SinglePulsePerNode)
{
    // The wavefront fires the corner exactly once.
    Netlist nl;
    auto &grid = nl.create<RaceLogicEditDistance>("ed", "abca", "abd");
    PulseTrace done;
    grid.done().connect(done.input());
    nl.queue().schedule(10, [&grid] { grid.start().receive(10); });
    nl.queue().run();
    EXPECT_EQ(done.count(), 1u);
}

TEST(RaceLogicEditDistance, AreaScalesWithLattice)
{
    // Two FA MIN cells per inner node: the race-logic economy the
    // paper's Section 2.2.1 highlights (a binary min needs >4 kJJ).
    Netlist nl;
    auto &small = nl.create<RaceLogicEditDistance>("s", "ab", "cd");
    auto &large = nl.create<RaceLogicEditDistance>("l", "abcdefgh",
                                                   "abcdefgh");
    EXPECT_LT(small.jjCount(), large.jjCount());
    // 8x8 lattice: 64 nodes * 2 FA * 8 JJs + boundary JTLs.
    EXPECT_NEAR(large.jjCount(), 64 * 16 + 16 * 2 + 2, 8);
}

TEST(RaceLogicEditDistance, ReusableAfterReset)
{
    Netlist nl;
    auto &grid = nl.create<RaceLogicEditDistance>("ed", "ab", "ba");
    PulseTrace done;
    grid.done().connect(done.input());
    for (int rep = 0; rep < 2; ++rep) {
        nl.resetAll();
        done.clear();
        nl.queue().schedule(10, [&grid] { grid.start().receive(10); });
        nl.queue().run();
        ASSERT_EQ(done.count(), 1u) << "rep " << rep;
        EXPECT_EQ(grid.decode(10, done.times().front()), 2);
    }
}

} // namespace
} // namespace usfq
