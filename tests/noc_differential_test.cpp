/**
 * @file
 * Temporal NoC differential tier (docs/noc.md): the pulse-level fabric
 * and the stream-level functional mirror locked together flit for flit
 * at fabric scale -- sink window counts AND per-router collision
 * ledgers -- plus the service-level identity contracts: 1-vs-N sweep
 * threads and scalar-vs-batched evaluation are bit-identical through
 * the facade checksum.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "api/facade.hh"
#include "api/spec.hh"
#include "func/batch.hh"
#include "func/noc.hh"
#include "noc/grid.hh"
#include "noc/plan.hh"
#include "noc/sta.hh"
#include "obs/stats.hh"
#include "sim/elaborate.hh"
#include "sim/netlist.hh"

namespace usfq
{
namespace
{

noc::GridSpec
meshSpec(int rows, int cols, bool shared, DpuMode mode)
{
    noc::GridSpec spec;
    spec.rows = rows;
    spec.cols = cols;
    spec.kind = noc::TileKind::Dpu;
    spec.taps = 2;
    spec.bits = 4;
    spec.mode = mode;
    spec.flows = noc::columnCollectFlows(rows, cols);
    spec.sharedSinkWindows = shared;
    return spec;
}

TEST(NocFabricDifferential, Mesh8x8ElaboratesAndPassesSta)
{
    const noc::GridPlan plan =
        noc::planGrid(meshSpec(8, 8, false, DpuMode::Bipolar));
    Netlist nl("noc");
    noc::TileGrid grid(nl, plan);
    grid.programOperands(noc::drawTileOperands(plan, 0xfab));
    const auto &lint = nl.elaborate();
    EXPECT_EQ(lint.errors(), 0u);

    // runStaChecked semantics: analyzeFabric fatals on any unwaived
    // finding, so reaching the assertions IS the pass.
    const noc::FabricStaReport rep = noc::analyzeFabric(nl, grid);
    EXPECT_EQ(rep.routes.size(), plan.flows.size());
    EXPECT_EQ(rep.criticalLatency, plan.maxFlowLatency);
    EXPECT_GT(rep.maxRouteRateHz(), 0.0);
}

TEST(NocFabricDifferential, Mesh8x8MatchesFlitForFlit)
{
    const noc::GridPlan plan =
        noc::planGrid(meshSpec(8, 8, false, DpuMode::Bipolar));
    for (std::uint64_t seed : {1ull, 0x5eedull}) {
        const noc::PulseFabricResult pulse =
            noc::runPulseFabric(plan, seed);
        EXPECT_EQ(pulse.latePulses, 0u);
        EXPECT_EQ(pulse.misaligned, 0u);

        const noc::FabricObservation func =
            func::evaluateFabricSeed(plan, seed);
        EXPECT_EQ(pulse.obs.sinkWindowCounts, func.sinkWindowCounts);
        EXPECT_EQ(pulse.obs.routerCollisions, func.routerCollisions);
        EXPECT_EQ(pulse.obs, func);
        EXPECT_EQ(noc::observationDigest(pulse.obs),
                  noc::observationDigest(func));
    }
}

TEST(NocFabricDifferential, SharedWindowLedgersMatch)
{
    noc::GridSpec spec = meshSpec(3, 3, true, DpuMode::Unipolar);
    spec.flows = noc::hotspotFlows(3, 3, /*dst=*/4);
    const noc::GridPlan plan = noc::planGrid(spec);

    bool sawCollisions = false;
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
        const noc::PulseFabricResult pulse =
            noc::runPulseFabric(plan, seed);
        const noc::FabricObservation func =
            func::evaluateFabricSeed(plan, seed);
        EXPECT_EQ(pulse.obs, func) << "seed " << seed;
        sawCollisions = sawCollisions || pulse.obs.collisions > 0;
    }
    EXPECT_TRUE(sawCollisions); // arbitration genuinely engaged
}

TEST(NocFabricDifferential, TelemetryRegistriesMirrorExactly)
{
    // The telemetry rollup is part of the differential contract: both
    // engines' observations, exported through exportFabricTelemetry,
    // must produce byte-identical registries -- window occupancies,
    // link pulses, collision ledgers and the utilization gauge.
    const auto registryText = [](const noc::GridPlan &plan,
                                 const noc::FabricObservation &o) {
        obs::StatsRegistry reg;
        noc::exportFabricTelemetry(plan, o, reg);
        std::ostringstream os;
        reg.print(os);
        return os.str();
    };

    noc::GridSpec hotspot = meshSpec(3, 3, true, DpuMode::Unipolar);
    hotspot.flows = noc::hotspotFlows(3, 3, /*dst=*/4);
    const noc::GridPlan plans[] = {
        noc::planGrid(meshSpec(4, 4, false, DpuMode::Bipolar)),
        noc::planGrid(hotspot),
    };
    for (const noc::GridPlan &plan : plans) {
        for (std::uint64_t seed : {1ull, 0x7e1eull}) {
            const noc::PulseFabricResult pulse =
                noc::runPulseFabric(plan, seed);
            const noc::FabricObservation func =
                func::evaluateFabricSeed(plan, seed);
            const std::string fromPulse =
                registryText(plan, pulse.obs);
            const std::string fromFunc = registryText(plan, func);
            EXPECT_EQ(fromPulse, fromFunc) << "seed " << seed;
            EXPECT_NE(fromPulse.find("window_utilization"),
                      std::string::npos);
            EXPECT_NE(fromPulse.find("delivered"),
                      std::string::npos);
        }
    }
}

TEST(NocFabricDifferential, InjectedCountsMatchFunctionalTiles)
{
    const noc::GridPlan plan =
        noc::planGrid(meshSpec(4, 4, false, DpuMode::Bipolar));
    const noc::TileOperands ops = noc::drawTileOperands(plan, 42);

    Netlist nl("noc");
    noc::TileGrid grid(nl, plan);
    grid.programOperands(ops);
    nl.elaborate();
    nl.run(plan.horizon);

    EXPECT_EQ(grid.injectedCounts(), func::nocTileCounts(plan, ops));
}

TEST(NocFabricDifferential, BatchMatchesScalarPerLane)
{
    const noc::GridPlan plan =
        noc::planGrid(meshSpec(4, 4, false, DpuMode::Bipolar));
    std::vector<std::uint64_t> seeds;
    for (std::uint64_t s = 1; s <= 9; ++s)
        seeds.push_back(0x1000 + s * 17);

    WordArena arena;
    std::vector<noc::FabricObservation> batched;
    func::evaluateFabricBatch(plan, seeds, batched, arena);
    ASSERT_EQ(batched.size(), seeds.size());
    for (std::size_t b = 0; b < seeds.size(); ++b)
        EXPECT_EQ(batched[b],
                  func::evaluateFabricSeed(plan, seeds[b]))
            << "lane " << b;
}

api::NetlistSpec
nocApiSpec(int rows, int cols)
{
    api::NetlistSpec spec;
    spec.kind = api::WorkloadKind::NocMesh;
    spec.name = "mesh";
    spec.gridRows = rows;
    spec.gridCols = cols;
    spec.taps = 2;
    spec.bits = 4;
    spec.mode = DpuMode::Bipolar;
    return spec;
}

TEST(NocFabricDifferential, BackendsAgreeThroughTheFacade)
{
    const api::NetlistSpec spec = nocApiSpec(4, 4);
    api::RunParams params;
    params.epochs = 6;

    params.backend = Backend::Functional;
    const api::RunResult func = api::runWorkload(spec, params);
    params.backend = Backend::PulseLevel;
    const api::RunResult pulse = api::runWorkload(spec, params);

    EXPECT_EQ(func.counts, pulse.counts);
    EXPECT_EQ(func.checksum, pulse.checksum);
    EXPECT_EQ(func.totalJJ, pulse.totalJJ);
}

TEST(NocFabricDifferential, SweepThreadsAndBatchAreBitIdentical)
{
    const api::NetlistSpec spec = nocApiSpec(8, 8);
    api::RunParams params;
    params.backend = Backend::Functional;
    params.epochs = 12;

    params.threads = 1;
    const api::RunResult one = api::runWorkload(spec, params);
    params.threads = 4;
    const api::RunResult four = api::runWorkload(spec, params);
    EXPECT_EQ(one.counts, four.counts);
    EXPECT_EQ(one.checksum, four.checksum);

    params.threads = 1;
    params.batch = 8;
    const api::RunResult wide = api::runWorkload(spec, params);
    EXPECT_EQ(one.counts, wide.counts);
    EXPECT_EQ(one.checksum, wide.checksum);
}

} // namespace
} // namespace usfq
