/**
 * @file
 * Generator differential tier (ctest label `gen`): an unbounded supply
 * of circuits nobody hand-wrote.  Seeded random DesignSpecs compile
 * through the balancing pass, must elaborate lint-clean, must pass the
 * checked STA gate under genStaOptions(), and their pulse-level
 * simulation must match the functional slot-algebra mirror exactly --
 * per-epoch counts and the order-sensitive digest.  A facade slice
 * re-runs a subset through the service layer and pins the scalar /
 * batched / multi-threaded engine contracts bit for bit.
 *
 * 500 specs is the documented floor (docs/synthesis.md); the spec
 * space is the randomDesignSpec() distribution, so every tree kind,
 * encoding, shape and balancing style appears many times.
 */

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "api/facade.hh"
#include "api/spec.hh"
#include "gen/balance.hh"
#include "gen/datapath.hh"
#include "gen/functional.hh"
#include "gen/spec.hh"
#include "sim/elaborate.hh"
#include "sim/netlist.hh"
#include "sta/sta.hh"
#include "util/logging.hh"
#include "util/random.hh"

namespace usfq::gen
{
namespace
{

constexpr int kSpecs = 500;
constexpr int kEpochsPerSpec = 2;
constexpr std::uint64_t kFnvBasis = 0xcbf29ce484222325ULL;

std::string
describe(const DesignSpec &s)
{
    return std::string("lanes=") + std::to_string(s.lanes) +
           " bits=" + std::to_string(s.bits) +
           " P=" + std::to_string(s.clockPeriodPs) +
           " tree=" + treeKindName(s.tree) +
           " enc=" + streamEncodingName(s.encoding) +
           " shape=" + laneShapeName(s.shape) +
           " bal=" + balanceStyleName(s.balance) +
           " seed=" + std::to_string(s.shapeSeed);
}

TEST(GenDifferential, RandomSpecsPulseVsFunctional)
{
    Rng rng(0x9e3779b9ULL);
    std::map<std::string, int> coverage;
    std::uint64_t pulseDigest = kFnvBasis;
    std::uint64_t funcDigest = kFnvBasis;
    long long insertedTotal = 0;

    for (int i = 0; i < kSpecs; ++i) {
        const DesignSpec spec = randomDesignSpec(rng);
        const std::string what =
            "spec " + std::to_string(i) + " (" + describe(spec) + ")";
        coverage[std::string(treeKindName(spec.tree)) + "/" +
                 streamEncodingName(spec.encoding) + "/" +
                 laneShapeName(spec.shape)]++;

        // Compile: every random spec is feasible by construction.
        const BalanceOutcome bo = balanceDesign(spec);
        ASSERT_TRUE(bo.converged())
            << what << ": " << balanceStatusName(bo.status) << ": "
            << bo.detail;
        EXPECT_EQ(bo.residualSkew, 0) << what;
        insertedTotal += bo.insertedJJ;

        // Lint-clean elaboration and the checked STA gate.  The
        // balancer certified both internally; this re-runs them from
        // the outside so a regression in either cannot hide behind a
        // stale Converged status.
        {
            Netlist nl("dut");
            auto &dp = nl.create<StreamDatapath>("dp", spec, bo.plan);
            dp.programEpoch({spec.nmax(), {}});
            for (const LintFinding &f : nl.lint())
                EXPECT_TRUE(f.waived)
                    << what << ": unwaived lint finding: " << f.message;
            ASSERT_NO_THROW({
                ScopedFatalThrow guard;
                runStaChecked(nl, genStaOptions(spec));
            }) << what;
        }

        // Pulse vs functional, exact per-epoch counts + digests.
        for (int e = 0; e < kEpochsPerSpec; ++e) {
            const std::uint64_t seed =
                0xabcdULL + 1000ULL * static_cast<std::uint64_t>(i) +
                static_cast<std::uint64_t>(e);
            const EpochInputs in = drawEpochInputs(spec, seed);
            const long long p = runPulseEpoch(spec, bo.plan, in);
            const EpochEval f = evalEpoch(spec, in);
            ASSERT_EQ(p, f.count)
                << what << " epoch " << e << " n=" << in.n;
            pulseDigest =
                hashFold(pulseDigest, static_cast<std::uint64_t>(p));
            funcDigest = hashFold(funcDigest,
                                  static_cast<std::uint64_t>(f.count));
        }
    }

    EXPECT_EQ(pulseDigest, funcDigest);
    // The random distribution must actually exercise the space: every
    // tree kind with at least two shapes and both encodings somewhere.
    EXPECT_GE(coverage.size(), 12u)
        << "random spec distribution collapsed";
    EXPECT_GT(insertedTotal, 0)
        << "no random spec ever needed balancing padding";
}

TEST(GenDifferential, FacadeBatchedAndThreadedBitIdentity)
{
    // A facade slice: scalar functional == batched == multi-threaded
    // == pulse-level, counts and checksum, through api::runWorkload.
    Rng rng(0x51f0ULL);
    for (int i = 0; i < 16; ++i) {
        api::NetlistSpec sp;
        sp.kind = api::WorkloadKind::Gen;
        sp.name = "gdiff";
        sp.gen = randomDesignSpec(rng);
        const std::string what =
            "spec " + std::to_string(i) + " (" + describe(sp.gen) + ")";

        api::RunParams params;
        params.epochs = 8;
        params.seed = 0xc0ffeeULL + static_cast<std::uint64_t>(i);

        params.backend = Backend::Functional;
        const api::RunResult scalar = api::runWorkload(sp, params);

        params.batch = 4;
        const api::RunResult batched = api::runWorkload(sp, params);

        params.threads = 4;
        const api::RunResult threaded = api::runWorkload(sp, params);

        params.batch = 1;
        params.threads = 1;
        params.backend = Backend::PulseLevel;
        const api::RunResult pulse = api::runWorkload(sp, params);

        ASSERT_EQ(scalar.counts, batched.counts) << what;
        ASSERT_EQ(scalar.counts, threaded.counts) << what;
        ASSERT_EQ(scalar.counts, pulse.counts) << what;
        EXPECT_EQ(scalar.checksum, pulse.checksum) << what;
        EXPECT_EQ(scalar.checksum, batched.checksum) << what;
        EXPECT_EQ(scalar.checksum, threaded.checksum) << what;
        EXPECT_EQ(scalar.totalJJ, pulse.totalJJ) << what;
        EXPECT_GT(scalar.totalJJ, 0) << what;
    }
}

TEST(GenDifferential, SpecHashMatchesStructuralIdentity)
{
    // Equal specs must hash equal and build structurally identical
    // netlists; a mutated spec must move the spec hash.
    Rng rng(0xd1ceULL);
    for (int i = 0; i < 8; ++i) {
        api::NetlistSpec sp;
        sp.kind = api::WorkloadKind::Gen;
        sp.name = "ghash";
        sp.gen = randomDesignSpec(rng);

        api::Session a(sp), b(sp);
        std::uint64_t ha = 0, hb = 0;
        ASSERT_EQ(a.contentHash(ha), api::Status::Ok) << a.lastError();
        ASSERT_EQ(b.contentHash(hb), api::Status::Ok) << b.lastError();
        EXPECT_EQ(ha, hb);
        EXPECT_EQ(api::specHash(sp), api::specHash(sp));

        api::NetlistSpec mut = sp;
        mut.gen.shapeSeed ^= 0x8000000000000000ULL;
        EXPECT_NE(api::specHash(mut), api::specHash(sp));
    }
}

} // namespace
} // namespace usfq::gen
