/**
 * @file
 * Static timing engine tests (src/sta/, docs/sta.md): window
 * arithmetic on hand-computed cell chains, feedback-loop cutting,
 * setup/hold / collision / rate margins, waiver precedence, the
 * critical-path report, and thread-count invariance of the jitter
 * Monte-Carlo.
 */

#include <gtest/gtest.h>

#include "sfq/cells.hh"
#include "sfq/params.hh"
#include "sfq/sources.hh"
#include "sim/netlist.hh"
#include "sta/monte_carlo.hh"
#include "sta/sta.hh"

namespace usfq
{
namespace
{

/** Findings of one rule. */
std::vector<const LintFinding *>
findingsOf(const StaReport &report, LintRule rule)
{
    std::vector<const LintFinding *> out;
    for (const LintFinding &f : report.findings)
        if (f.rule == rule)
            out.push_back(&f);
    return out;
}

// --- window arithmetic ------------------------------------------------------

TEST(Sta, WindowsOnJtlChain)
{
    Netlist nl;
    auto &src = nl.create<PulseSource>("s");
    auto &j1 = nl.create<Jtl>("j1");
    auto &j2 = nl.create<Jtl>("j2");
    src.out.connect(j1.in, 5 * kPicosecond);
    j1.out.connect(j2.in);
    j2.out.markOpen("sta test endpoint");
    src.pulseAt(10 * kPicosecond);
    src.pulseAt(30 * kPicosecond);

    const StaReport report = runSta(nl);
    EXPECT_EQ(report.errors(), 0u);
    EXPECT_EQ(report.numAnchors, 1u);

    // Hand-computed: source [10, 30] ps, +5 ps wire, +2 ps per JTL.
    const ArrivalWindow in1 = report.windowOf(j1.in);
    ASSERT_TRUE(in1.reachable);
    EXPECT_EQ(in1.earliest, 15 * kPicosecond);
    EXPECT_EQ(in1.latest, 35 * kPicosecond);

    const ArrivalWindow out2 = report.windowOf(j2.out);
    ASSERT_TRUE(out2.reachable);
    EXPECT_EQ(out2.earliest, 19 * kPicosecond);
    EXPECT_EQ(out2.latest, 39 * kPicosecond);

    // The 20 ps stimulus spacing survives the fixed-delay chain.
    EXPECT_EQ(report.separationFloor(j2.out), 20 * kPicosecond);

    // Critical path: wire, arc, wire, arc from the source to j2.out.
    ASSERT_TRUE(report.criticalPath.valid);
    EXPECT_EQ(report.criticalPath.startpoint, "s.out");
    EXPECT_EQ(report.criticalPath.endpoint, "j2.out");
    EXPECT_EQ(report.criticalPath.length, 9 * kPicosecond);
    ASSERT_EQ(report.criticalPath.hops.size(), 4u);
    EXPECT_EQ(report.criticalPath.hops[0].maxDelay, 5 * kPicosecond);
    EXPECT_EQ(report.criticalPath.hops[1].maxDelay, cell::kJtlDelay);
}

// --- setup / hold margins ---------------------------------------------------

namespace
{

/** Splitter fans one source into dff.d and (via @p clk_lag) dff.clk. */
struct DffFixture
{
    Netlist nl;
    Splitter *sp = nullptr;
    Dff *dff = nullptr;
    PulseSource *src = nullptr;

    explicit DffFixture(Tick clk_lag)
    {
        src = &nl.create<PulseSource>("s");
        sp = &nl.create<Splitter>("sp");
        dff = &nl.create<Dff>("ff");
        src->out.connect(sp->in);
        sp->out1.connect(dff->d);
        sp->out2.connect(dff->clk, clk_lag);
        dff->q.markOpen("sta test endpoint");
    }
};

} // namespace

TEST(Sta, DffSetupMarginSameAnchor)
{
    DffFixture f(10 * kPicosecond);
    f.src->pulseAt(0);

    const StaReport report = runSta(f.nl);
    EXPECT_EQ(report.errors(), 0u);
    // clk trails d by exactly 10 ps; setup 2 ps -> margin 8 ps.
    ASSERT_TRUE(report.hasWorstSlack);
    EXPECT_EQ(report.worstSlack, 8 * kPicosecond);
    ASSERT_TRUE(f.dff->hasStaSlack());
    EXPECT_EQ(f.dff->staSlack(), 8 * kPicosecond);
}

TEST(Sta, DffSetupViolation)
{
    // clk only 1 ps behind d: inside the 2 ps setup window, margin -1.
    DffFixture f(1 * kPicosecond);
    f.src->pulseAt(0);

    const StaReport report = runSta(f.nl);
    const auto hits =
        findingsOf(report, LintRule::SetupHoldViolation);
    ASSERT_EQ(hits.size(), 1u);
    EXPECT_EQ(hits[0]->margin, -1 * kPicosecond);
    EXPECT_EQ(hits[0]->component, "ff");
    EXPECT_FALSE(hits[0]->waived);
    EXPECT_EQ(report.errors(), 1u);
    EXPECT_EQ(f.dff->staSlack(), -1 * kPicosecond);
}

TEST(Sta, PeriodicNeighbourShiftBinds)
{
    // Periodic stimulus every 20 ps, clk 18 ps behind d: the previous
    // clock pulse lands 2 ps BEFORE the data pulse -- outside the 1 ps
    // hold window with exactly 1 ps to spare.  The exact-period shift
    // must find that neighbour margin (1 ps), not the same-pulse
    // margin (16 ps).
    DffFixture f(18 * kPicosecond);
    for (int i = 0; i < 3; ++i)
        f.src->pulseAt(i * 20 * kPicosecond);

    const StaReport report = runSta(f.nl);
    EXPECT_EQ(report.errors(), 0u);
    ASSERT_TRUE(f.dff->hasStaSlack());
    EXPECT_EQ(f.dff->staSlack(), 1 * kPicosecond);
}

TEST(Sta, ChecksSkipUnreachablePorts)
{
    Netlist nl;
    auto &clk = nl.create<ClockSource>("c");
    auto &dff = nl.create<Dff>("ff");
    clk.out.connect(dff.clk);
    dff.d.markOptional("sta test: never driven");
    dff.q.markOpen("sta test endpoint");
    clk.program(0, 10 * kPicosecond, 4);

    const StaReport report = runSta(nl);
    // d never pulses: the setup/hold check must not fire.
    EXPECT_TRUE(
        findingsOf(report, LintRule::SetupHoldViolation).empty());
    EXPECT_FALSE(report.windowOf(dff.d).reachable);
    EXPECT_TRUE(report.windowOf(dff.q).reachable);
}

// --- collision margins ------------------------------------------------------

TEST(Sta, MergerCollisionSameAnchor)
{
    Netlist nl;
    auto &src = nl.create<PulseSource>("s");
    auto &sp = nl.create<Splitter>("sp");
    auto &m = nl.create<Merger>("m");
    src.out.connect(sp.in);
    sp.out1.connect(m.inA);
    sp.out2.connect(m.inB, 2 * kPicosecond);
    m.out.markOpen("sta test endpoint");
    src.pulseAt(0);

    const StaReport report = runSta(nl);
    // inB trails inA by 2 ps, inside the 5 ps collision window: the
    // needed clearance is one tick past the window, margin
    // 2 ps - (5 ps + 1) = -(3 ps + 1).
    const auto hits = findingsOf(report, LintRule::CollisionRisk);
    ASSERT_EQ(hits.size(), 1u);
    EXPECT_EQ(hits[0]->margin, -3 * kPicosecond - 1);
    EXPECT_EQ(hits[0]->component, "m");
}

TEST(Sta, CrossStreamRacesAreOptIn)
{
    Netlist nl;
    auto &a = nl.create<PulseSource>("a");
    auto &b = nl.create<PulseSource>("b");
    auto &m = nl.create<Merger>("m");
    a.out.connect(m.inA);
    b.out.connect(m.inB);
    m.out.markOpen("sta test endpoint");
    a.pulseAt(0);
    b.pulseAt(2 * kPicosecond);

    // Unrelated streams: silent by default ...
    const StaReport lax = runSta(nl);
    EXPECT_TRUE(findingsOf(lax, LintRule::CollisionRisk).empty());

    // ... but strictRaces checks the absolute windows against each
    // other: 2 ps apart inside the 5 ps collision window.
    StaOptions strict;
    strict.strictRaces = true;
    const StaReport strictReport = runSta(nl, strict);
    const auto hits =
        findingsOf(strictReport, LintRule::CollisionRisk);
    ASSERT_EQ(hits.size(), 1u);
    EXPECT_EQ(hits[0]->margin, -3 * kPicosecond - 1);
    EXPECT_NE(hits[0]->message.find("cross-stream race"),
              std::string::npos);
}

// --- rate / recovery --------------------------------------------------------

TEST(Sta, InverterRateCeiling)
{
    Netlist nl;
    auto &clk = nl.create<ClockSource>("c");
    auto &inv = nl.create<Inverter>("inv");
    clk.out.connect(inv.clk);
    inv.d.markOptional("sta test: rate analysis only");
    inv.q.markOpen("sta test endpoint");
    clk.program(0, 5 * kPicosecond, 8);

    const StaReport report = runSta(nl);
    // 5 ps spacing against the inverter's 9 ps recovery: -4 ps.
    const auto hits = findingsOf(report, LintRule::RateViolation);
    ASSERT_EQ(hits.size(), 1u);
    EXPECT_EQ(hits[0]->margin, -4 * kPicosecond);

    // The paper's stream-rate ceiling: t_INV = 9 ps caps streams at
    // 111 GHz (Section 3.3).
    EXPECT_EQ(report.requiredStreamSpacing, cell::kInverterTiming.recovery);
    EXPECT_NEAR(report.maxStreamRateHz() * 1e-9, 111.1, 0.1);
}

TEST(Sta, TffDividesRateRequirement)
{
    Netlist nl;
    auto &clk = nl.create<ClockSource>("c");
    auto &tff = nl.create<Tff>("t");
    auto &inv = nl.create<Inverter>("inv");
    clk.out.connect(tff.in);
    tff.out.connect(inv.clk);
    inv.d.markOptional("sta test: rate analysis only");
    inv.q.markOpen("sta test endpoint");
    clk.program(0, 5 * kPicosecond, 16);

    const StaReport report = runSta(nl);
    // The TFF halves the stream before the inverter: the inverter
    // needs ceil(9/2) = 5 ps of stimulus spacing, the TFF itself 5 ps
    // -- both met at a 5 ps clock, so no findings.
    EXPECT_EQ(report.errors(), 0u);
    EXPECT_EQ(report.requiredStreamSpacing, 5 * kPicosecond);
    // And the divided stream's spacing floor doubles.
    EXPECT_EQ(report.separationFloor(tff.out), 10 * kPicosecond);
    EXPECT_EQ(report.separationFloor(inv.clk), 10 * kPicosecond);
}

// --- feedback loops ---------------------------------------------------------

TEST(Sta, RegisteredLoopIsCutSilently)
{
    Netlist nl;
    auto &src = nl.create<PulseSource>("s");
    auto &m = nl.create<Merger>("m");
    auto &tff = nl.create<Tff>("t");
    src.out.connect(m.inA);
    m.out.connect(tff.in);
    tff.out.connect(m.inB);
    src.pulseAt(0);

    const StaReport report = runSta(nl);
    EXPECT_EQ(report.numCutEdges, 1u);
    EXPECT_TRUE(
        findingsOf(report, LintRule::CombinationalLoop).empty());
}

TEST(Sta, CombinationalLoopIsAFinding)
{
    Netlist nl;
    auto &src = nl.create<PulseSource>("s");
    auto &m = nl.create<Merger>("m");
    auto &j = nl.create<Jtl>("j");
    src.out.connect(m.inA);
    m.out.connect(j.in);
    j.out.connect(m.inB);
    src.pulseAt(0);

    const StaReport report = runSta(nl);
    const auto hits =
        findingsOf(report, LintRule::CombinationalLoop);
    ASSERT_EQ(hits.size(), 1u);
    EXPECT_FALSE(hits[0]->waived);
    EXPECT_EQ(report.numCutEdges, 1u);
    EXPECT_GE(report.errors(), 1u);
}

// --- waivers ----------------------------------------------------------------

TEST(Sta, NetlistWaiverAppliesAndTakesPrecedence)
{
    DffFixture f(1 * kPicosecond);
    f.src->pulseAt(0);
    f.nl.waive(LintRule::SetupHoldViolation, "netlist-level waiver");

    StaOptions opts;
    opts.waivers[LintRule::SetupHoldViolation] = "options-level waiver";
    const StaReport report = runSta(f.nl, opts);
    const auto hits =
        findingsOf(report, LintRule::SetupHoldViolation);
    ASSERT_EQ(hits.size(), 1u);
    EXPECT_TRUE(hits[0]->waived);
    // The netlist's own waive() shadows the per-run options waiver,
    // matching the elaboration lint's precedence.
    EXPECT_EQ(hits[0]->waiverReason, "netlist-level waiver");
    EXPECT_EQ(report.errors(), 0u);
}

TEST(Sta, OptionsWaiverAlone)
{
    DffFixture f(1 * kPicosecond);
    f.src->pulseAt(0);

    StaOptions opts;
    opts.waivers[LintRule::SetupHoldViolation] = "options-level waiver";
    const StaReport report = runSta(f.nl, opts);
    const auto hits =
        findingsOf(report, LintRule::SetupHoldViolation);
    ASSERT_EQ(hits.size(), 1u);
    EXPECT_TRUE(hits[0]->waived);
    EXPECT_EQ(hits[0]->waiverReason, "options-level waiver");
    EXPECT_EQ(report.errors(), 0u);
}

TEST(StaDeathTest, CheckedRunDiesOnViolation)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    DffFixture f(1 * kPicosecond);
    f.src->pulseAt(0);
    EXPECT_DEATH(runStaChecked(f.nl), "unwaived timing violations");
}

// --- zero-anchor mode -------------------------------------------------------

TEST(Sta, ZeroModeAnchorsDriverlessPorts)
{
    Netlist nl;
    auto &dff = nl.create<Dff>("ff");
    dff.d.markOptional("sta test: stimulus-less");
    dff.clk.markOptional("sta test: stimulus-less");
    dff.q.markOpen("sta test endpoint");

    StaOptions opts;
    opts.anchorMode = StaOptions::AnchorMode::Zero;
    const StaReport report = runSta(nl, opts);
    // Both inputs launch at t=0; q is reachable through the clk arc.
    EXPECT_TRUE(report.windowOf(dff.d).reachable);
    EXPECT_TRUE(report.windowOf(dff.clk).reachable);
    const ArrivalWindow q = report.windowOf(dff.q);
    ASSERT_TRUE(q.reachable);
    EXPECT_EQ(q.earliest, cell::kDffDelay);
    EXPECT_EQ(q.latest, cell::kDffDelay);
    // d and clk are *different* zero anchors: their race only shows up
    // under strictRaces (coincident launch inside the capture window).
    EXPECT_TRUE(
        findingsOf(report, LintRule::SetupHoldViolation).empty());

    opts.strictRaces = true;
    const StaReport strict = runSta(nl, opts);
    const auto hits =
        findingsOf(strict, LintRule::SetupHoldViolation);
    ASSERT_EQ(hits.size(), 1u);
    EXPECT_EQ(hits[0]->margin, -1 * kPicosecond);
}

// --- hierarchy roll-up ------------------------------------------------------

TEST(Sta, ReportRollsUpWorstSlack)
{
    DffFixture f(10 * kPicosecond);
    f.src->pulseAt(0);

    // Pre-STA: no slack column data.
    EXPECT_FALSE(f.nl.report().root.hasSlack);

    runSta(f.nl);
    const HierReport hier = f.nl.report();
    ASSERT_TRUE(hier.root.hasSlack);
    EXPECT_EQ(hier.root.worstSlack, 8 * kPicosecond);
}

// --- jitter Monte-Carlo -----------------------------------------------------

namespace
{

void
buildMcDesign(Netlist &nl)
{
    // Separate JTLs in the data and clock branches: their independent
    // per-cell jitter moves the d/clk skew (a shared splitter's jitter
    // would cancel out of the relative margin).
    auto &src = nl.create<PulseSource>("s");
    auto &sp = nl.create<Splitter>("sp");
    auto &ja = nl.create<Jtl>("ja");
    auto &jb = nl.create<Jtl>("jb");
    auto &dff = nl.create<Dff>("ff");
    src.out.connect(sp.in);
    sp.out1.connect(ja.in);
    sp.out2.connect(jb.in);
    ja.out.connect(dff.d);
    jb.out.connect(dff.clk, 4 * kPicosecond);
    dff.q.markOpen("sta mc endpoint");
    src.pulseAt(0);
}

} // namespace

TEST(Sta, MonteCarloIsThreadCountInvariant)
{
    StaJitterOptions opts;
    opts.trials = 24;
    opts.amplitude = 3 * kPicosecond;
    opts.baseSeed = 0xfeedULL;

    opts.threads = 1;
    const StaJitterStats serial = runStaJitter(buildMcDesign, opts);
    opts.threads = 4;
    const StaJitterStats parallel = runStaJitter(buildMcDesign, opts);

    ASSERT_EQ(serial.samples.size(), parallel.samples.size());
    for (std::size_t i = 0; i < serial.samples.size(); ++i) {
        EXPECT_EQ(serial.samples[i].worstSlack,
                  parallel.samples[i].worstSlack);
        EXPECT_EQ(serial.samples[i].hasSlack,
                  parallel.samples[i].hasSlack);
        EXPECT_EQ(serial.samples[i].violations,
                  parallel.samples[i].violations);
    }
    EXPECT_EQ(serial.passes, parallel.passes);
    EXPECT_EQ(serial.slackMin, parallel.slackMin);
    EXPECT_EQ(serial.slackMax, parallel.slackMax);
    EXPECT_DOUBLE_EQ(serial.slackMean, parallel.slackMean);

    // The nominal margin is 4 ps against a 3 ps amplitude on both the
    // splitter and DFF arcs: trials must spread around it.
    EXPECT_EQ(serial.trials, 24u);
    ASSERT_GT(serial.samples.size(), 0u);
    EXPECT_LT(serial.slackMin, serial.slackMax);
    EXPECT_GE(serial.yield(), 0.0);
    EXPECT_LE(serial.yield(), 1.0);
}

TEST(Sta, MonteCarloZeroAmplitudeIsNominal)
{
    StaJitterOptions opts;
    opts.trials = 4;
    opts.amplitude = 0;
    const StaJitterStats stats = runStaJitter(buildMcDesign, opts);
    for (const StaJitterSample &s : stats.samples) {
        ASSERT_TRUE(s.hasSlack);
        // 4 ps clk lag minus the 2 ps setup window.
        EXPECT_EQ(s.worstSlack, 2 * kPicosecond);
        EXPECT_EQ(s.violations, 0u);
    }
    EXPECT_DOUBLE_EQ(stats.yield(), 1.0);
}

} // namespace
} // namespace usfq
