/**
 * @file
 * Pulse-level fault-injection tests: dropped and jittered pulses on
 * real netlists reproduce the functional error models' behaviour.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/encoding.hh"
#include "core/multiplier.hh"
#include "sfq/faults.hh"
#include "sim/trace.hh"
#include "sfq/sources.hh"

namespace usfq
{
namespace
{

TEST(FaultInjector, ZeroConfigIsTransparent)
{
    Netlist nl;
    auto &fi = nl.create<FaultInjector>("fi", FaultConfig{});
    auto &src = nl.create<PulseSource>("s");
    PulseTrace out;
    src.out.connect(fi.in);
    fi.out.connect(out.input());
    for (int k = 0; k < 50; ++k)
        src.pulseAt((k + 1) * 20 * kPicosecond);
    nl.queue().run();
    EXPECT_EQ(out.count(), 50u);
    EXPECT_EQ(out.minSpacing(), 20 * kPicosecond);
    EXPECT_EQ(fi.dropped(), 0u);
}

TEST(FaultInjector, DropRateIsBinomial)
{
    Netlist nl;
    auto &fi = nl.create<FaultInjector>(
        "fi", FaultConfig{.dropProbability = 0.3, .seed = 5});
    auto &src = nl.create<PulseSource>("s");
    PulseTrace out;
    src.out.connect(fi.in);
    fi.out.connect(out.input());
    const int n = 2000;
    for (int k = 0; k < n; ++k)
        src.pulseAt((k + 1) * 20 * kPicosecond);
    nl.queue().run();
    EXPECT_NEAR(static_cast<double>(out.count()), 0.7 * n,
                3.0 * std::sqrt(n * 0.3 * 0.7));
    EXPECT_EQ(fi.dropped() + fi.passed(), static_cast<std::uint64_t>(n));
}

TEST(FaultInjector, JitterPreservesCountAndOrder)
{
    Netlist nl;
    auto &fi = nl.create<FaultInjector>(
        "fi", FaultConfig{.jitterSigmaPs = 4.0, .seed = 9});
    auto &src = nl.create<PulseSource>("s");
    PulseTrace out;
    src.out.connect(fi.in);
    fi.out.connect(out.input());
    for (int k = 0; k < 200; ++k)
        src.pulseAt((k + 1) * 40 * kPicosecond);
    nl.queue().run();
    ASSERT_EQ(out.count(), 200u);
    EXPECT_TRUE(std::is_sorted(out.times().begin(),
                               out.times().end()));
    // Some pulses must actually have moved.
    std::size_t moved = 0;
    for (std::size_t k = 0; k < out.times().size(); ++k)
        moved += out.times()[k] !=
                 static_cast<Tick>(k + 1) * 40 * kPicosecond;
    EXPECT_GT(moved, 150u);
}

TEST(FaultInjector, ResetRestoresSequence)
{
    Netlist nl;
    auto &fi = nl.create<FaultInjector>(
        "fi", FaultConfig{.dropProbability = 0.5, .seed = 11});
    auto &src = nl.create<PulseSource>("s");
    PulseTrace out;
    src.out.connect(fi.in);
    fi.out.connect(out.input());

    auto run_once = [&] {
        for (int k = 0; k < 100; ++k)
            src.pulseAt((k + 1) * 20 * kPicosecond);
        nl.queue().run();
        auto times = out.times();
        nl.resetAll();
        out.clear();
        return times;
    };
    EXPECT_EQ(run_once(), run_once());
}

TEST(FaultInjector, StreamLossOnMultiplierMatchesThinning)
{
    // The paper's error (i) at the netlist level: drop 30% of the
    // stream pulses feeding a unipolar multiplier; the product count
    // thins accordingly.
    const EpochConfig cfg(8, 20 * kPicosecond);
    Netlist nl;
    auto &mult = nl.create<UnipolarMultiplier>("m");
    auto &fi = nl.create<FaultInjector>(
        "fi", FaultConfig{.dropProbability = 0.3, .seed = 21});
    auto &src_e = nl.create<PulseSource>("e");
    auto &src_a = nl.create<PulseSource>("a");
    auto &src_b = nl.create<PulseSource>("b");
    PulseTrace out;
    src_e.out.connect(mult.epoch());
    src_a.out.connect(fi.in);
    fi.out.connect(mult.streamIn());
    src_b.out.connect(mult.rlIn());
    mult.out().connect(out.input());

    src_e.pulseAt(0);
    src_a.pulsesAt(cfg.streamTimes(cfg.nmax())); // full-rate stream
    src_b.pulseAt(cfg.rlArrival(cfg.nmax() / 2));
    nl.queue().run();

    const double expected = 0.7 * cfg.nmax() / 2;
    EXPECT_NEAR(static_cast<double>(out.count()), expected,
                3.0 * std::sqrt(cfg.nmax() / 2 * 0.3 * 0.7));
}

TEST(FaultInjector, RlLossOnMultiplierPassesEverything)
{
    // Error (ii) at the netlist level: the RL pulse is dropped, the
    // NDRO never resets, the whole stream passes (value reads as 1).
    const EpochConfig cfg(6, 20 * kPicosecond);
    Netlist nl;
    auto &mult = nl.create<UnipolarMultiplier>("m");
    auto &fi = nl.create<FaultInjector>(
        "fi", FaultConfig{.dropProbability = 1.0, .seed = 1});
    auto &src_e = nl.create<PulseSource>("e");
    auto &src_a = nl.create<PulseSource>("a");
    auto &src_b = nl.create<PulseSource>("b");
    PulseTrace out;
    src_e.out.connect(mult.epoch());
    src_a.out.connect(mult.streamIn());
    src_b.out.connect(fi.in);
    fi.out.connect(mult.rlIn());
    mult.out().connect(out.input());

    src_e.pulseAt(0);
    src_a.pulsesAt(cfg.streamTimes(40));
    src_b.pulseAt(cfg.rlArrival(8)); // would gate to 5 pulses
    nl.queue().run();
    EXPECT_EQ(out.count(), 40u); // everything passed
}

} // namespace
} // namespace usfq
