/**
 * @file
 * Algebraic property tests of the stream-level functional backend
 * (src/func/): the laws the paper's unary arithmetic promises --
 * commutativity, monotonicity, linearity, superposition -- plus the
 * encode/decode round-trip identities of the packed PulseStream.
 *
 * These are pure-model tests (no event queue): together with
 * differential_test.cpp (which locks the models to the pulse-level
 * netlists) they freeze the functional backend's semantics.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/encoding.hh"
#include "core/fir.hh"
#include "func/batch.hh"
#include "func/components.hh"
#include "func/stream.hh"
#include "sim/netlist.hh"
#include "util/random.hh"

namespace usfq
{
namespace
{

// --- multiplier commutativity ------------------------------------------------

TEST(FuncProperty, UnipolarMultiplyCommutes)
{
    // floor(n * id / N) is symmetric in (n, id): swapping the stream
    // and RL operands cannot change the product.  Exhaustive to 5 bits.
    for (int bits = 1; bits <= 5; ++bits) {
        const EpochConfig cfg(bits);
        Netlist nl;
        auto &mult = nl.create<func::UnipolarMultiplier>("m");
        for (int n = 0; n <= cfg.nmax(); ++n)
            for (int id = 0; id <= cfg.nmax(); ++id)
                EXPECT_EQ(mult.evaluate(cfg, n, id),
                          mult.evaluate(cfg, id, n))
                    << "bits=" << bits << " n=" << n << " id=" << id;
    }
}

TEST(FuncProperty, UnipolarProductBoundedByOperands)
{
    const EpochConfig cfg(6);
    Netlist nl;
    auto &mult = nl.create<func::UnipolarMultiplier>("m");
    for (int n = 0; n <= cfg.nmax(); ++n)
        for (int id = 0; id <= cfg.nmax(); ++id) {
            const int p = mult.evaluate(cfg, n, id);
            EXPECT_LE(p, std::min(n, id));
            EXPECT_GE(p, 0);
        }
}

// --- counting-network monotonicity -------------------------------------------

TEST(FuncProperty, CountingTreeMonotone)
{
    // Feeding any input one more pulse can never lower the output.
    Rng rng(0xfadedu);
    for (int trial = 0; trial < 400; ++trial) {
        const int m = 1 << rng.uniformInt(1, 4); // 2..16
        Netlist nl;
        auto &net = nl.create<func::TreeCountingNetwork>("net", m);
        std::vector<int> counts;
        for (int i = 0; i < m; ++i)
            counts.push_back(static_cast<int>(rng.uniformInt(0, 32)));
        const int base = net.evaluate(counts);
        const std::size_t bump =
            static_cast<std::size_t>(rng.uniformInt(0, m - 1));
        counts[bump] += 1;
        EXPECT_GE(net.evaluate(counts), base)
            << "m=" << m << " bumped input " << bump;
    }
}

TEST(FuncProperty, CountingTreeAveragesWithinDepthRounding)
{
    // Output = sum/m with at most one ceiling per tree level, and equal
    // inputs divide exactly.
    Rng rng(0xbeadu);
    for (int trial = 0; trial < 400; ++trial) {
        const int m = 1 << rng.uniformInt(1, 4);
        Netlist nl;
        auto &net = nl.create<func::TreeCountingNetwork>("net", m);
        std::vector<int> counts;
        int sum = 0;
        for (int i = 0; i < m; ++i) {
            counts.push_back(static_cast<int>(rng.uniformInt(0, 32)));
            sum += counts.back();
        }
        const double out = net.evaluate(counts);
        EXPECT_GE(out, std::floor(static_cast<double>(sum) / m));
        EXPECT_LE(out, static_cast<double>(sum) / m +
                           std::log2(static_cast<double>(m)));

        const int a = static_cast<int>(rng.uniformInt(0, 32));
        EXPECT_EQ(net.evaluate(std::vector<int>(
                      static_cast<std::size_t>(m), a)),
                  a);
    }
}

// --- PNM linearity ------------------------------------------------------------

TEST(FuncProperty, UniformPnmCountEqualsValue)
{
    for (int bits = 1; bits <= 8; ++bits)
        for (int value = 0; value < (1 << bits); ++value)
            EXPECT_EQ(static_cast<int>(uniformPnmSlots(bits, value).size()),
                      value)
                << "bits=" << bits << " value=" << value;
}

TEST(FuncProperty, UniformPnmLinearOverDisjointBits)
{
    // The divider chain assigns each value bit its own clock-phase
    // class, so streams of bit-disjoint values occupy disjoint slots
    // and their union is the stream of the OR.
    Rng rng(0x11beau);
    for (int trial = 0; trial < 300; ++trial) {
        const int bits = static_cast<int>(rng.uniformInt(2, 8));
        const int v1 =
            static_cast<int>(rng.uniformInt(0, (1 << bits) - 1));
        const int v2 = static_cast<int>(rng.uniformInt(0, (1 << bits) - 1)) &
                       ~v1;
        auto s1 = uniformPnmSlots(bits, v1);
        const auto s2 = uniformPnmSlots(bits, v2);
        std::vector<int> merged = s1;
        merged.insert(merged.end(), s2.begin(), s2.end());
        std::sort(merged.begin(), merged.end());
        EXPECT_EQ(merged, uniformPnmSlots(bits, v1 | v2))
            << "bits=" << bits << " v1=" << v1 << " v2=" << v2;
    }
}

// --- FIR superposition --------------------------------------------------------

TEST(FuncProperty, FirSuperpositionWithinQuantization)
{
    // The unary FIR is linear up to quantization: filtering x1 + x2
    // equals the sum of the filtered parts within the operand/product
    // rounding budget (each tap's RL quantization and product floor,
    // plus the counting tree's per-level ceilings).
    UsfqFirConfig cfg;
    cfg.taps = 4;
    cfg.bits = 10;
    Netlist nl;
    auto &fir = nl.create<func::UsfqFir>("fir", cfg);
    const double h[4] = {0.5, 0.25, 0.125, 0.0625};
    for (int k = 0; k < 4; ++k)
        fir.setCoefficient(k, h[k]);

    Rng rng(0x50f7u);
    const int nmax = fir.epochConfig().nmax();
    const double tol = 4.0 * (cfg.taps + 4) / nmax;
    for (int trial = 0; trial < 50; ++trial) {
        std::vector<double> x1, x2, sum;
        for (int i = 0; i < 24; ++i) {
            const double a = rng.uniform(0.0, 0.5);
            const double b = rng.uniform(0.0, 0.5);
            x1.push_back(a);
            x2.push_back(b);
            sum.push_back(a + b);
        }
        const auto y1 = fir.filter(x1);
        const auto y2 = fir.filter(x2);
        const auto ysum = fir.filter(sum);
        for (std::size_t i = 0; i < ysum.size(); ++i)
            EXPECT_NEAR(ysum[i], y1[i] + y2[i], tol)
                << "trial=" << trial << " sample=" << i;
    }
}

// --- encode/decode round trips ------------------------------------------------

TEST(FuncProperty, RaceLogicRoundTrips)
{
    for (int bits = 1; bits <= 6; ++bits) {
        const EpochConfig cfg(bits);
        for (int id = 0; id <= cfg.nmax(); ++id) {
            EXPECT_EQ(cfg.rlSlotOf(cfg.rlArrival(id)), id);
            EXPECT_EQ(cfg.rlIdOfUnipolar(cfg.rlUnipolar(id)), id);
            EXPECT_EQ(cfg.rlIdOfBipolar(cfg.rlBipolar(id)), id);
        }
    }
}

TEST(FuncProperty, StreamValueRoundTrips)
{
    const EpochConfig cfg(8);
    Rng rng(0xc0deu);
    for (int trial = 0; trial < 500; ++trial) {
        const double u = rng.uniform();
        EXPECT_NEAR(cfg.decodeUnipolar(static_cast<std::size_t>(
                        cfg.streamCountOfUnipolar(u))),
                    u, 1.0 / cfg.nmax());
        const double b = rng.uniform(-1.0, 1.0);
        EXPECT_NEAR(cfg.decodeBipolar(static_cast<std::size_t>(
                        cfg.streamCountOfBipolar(b))),
                    b, 2.0 / cfg.nmax());
    }
}

TEST(FuncProperty, PulseStreamPackedRoundTrips)
{
    for (int bits : {2, 4, 6, 8}) {
        const EpochConfig cfg(bits);
        for (int n = 0; n <= cfg.nmax(); ++n) {
            const auto s = func::PulseStream::euclidean(cfg, n);
            EXPECT_EQ(s.count(), n);
            EXPECT_EQ(s.slots(), cfg.streamSlots(n));
            // slots -> fromSlots identity.
            EXPECT_TRUE(func::PulseStream::fromSlots(cfg, s.slots()) == s);
            // Complement is an involution and fills exactly the gaps.
            EXPECT_EQ(s.complement().count(), cfg.nmax() - n);
            EXPECT_TRUE(s.complement().complement() == s);
            EXPECT_EQ(s.unionWith(s.complement()).count(), cfg.nmax());
            EXPECT_EQ(s.intersectWith(s.complement()).count(), 0);
            EXPECT_NEAR(s.decodeUnipolar(), cfg.decodeUnipolar(
                            static_cast<std::size_t>(n)), 1e-12);
        }
    }
}

TEST(FuncProperty, PulseStreamGatesMatchCountingModels)
{
    const EpochConfig cfg(5);
    for (int n = 0; n <= cfg.nmax(); ++n)
        for (int id = 0; id <= cfg.nmax(); ++id) {
            const auto a = func::PulseStream::euclidean(cfg, n);
            EXPECT_EQ(a.maskBelow(id).count(),
                      unipolarProductCount(cfg, n, id))
                << "n=" << n << " id=" << id;
            EXPECT_EQ(func::bipolarProductStream(a, id).count(),
                      bipolarProductCount(cfg, n, id))
                << "n=" << n << " id=" << id;
        }
}

TEST(FuncProperty, PulseStreamUnionMatchesMergerModel)
{
    const EpochConfig cfg(4);
    for (int na = 0; na <= cfg.nmax(); ++na)
        for (int nb = 0; nb <= cfg.nmax(); ++nb) {
            const auto u =
                func::PulseStream::euclidean(cfg, na).unionWith(
                    func::PulseStream::euclidean(cfg, nb));
            EXPECT_EQ(u.count(), mergerTreeUnionCount(cfg, {na, nb}))
                << "na=" << na << " nb=" << nb;
        }
}

// --- small functional blocks --------------------------------------------------

TEST(FuncProperty, RaceLogicMinMax)
{
    Netlist nl;
    auto &first = nl.create<func::FirstArrival>("min");
    auto &last = nl.create<func::LastArrival>("max");
    Rng rng(0x3a3au);
    for (int trial = 0; trial < 200; ++trial) {
        std::vector<int> ids;
        for (int i = 0; i < 4; ++i)
            ids.push_back(static_cast<int>(rng.uniformInt(0, 63)));
        EXPECT_EQ(first.evaluate(ids),
                  *std::min_element(ids.begin(), ids.end()));
        EXPECT_EQ(last.evaluate(ids),
                  *std::max_element(ids.begin(), ids.end()));
    }
}

TEST(FuncProperty, IntegratorClampsAndConverts)
{
    const EpochConfig cfg(4);
    Netlist nl;
    auto &integ = nl.create<func::PulseToRlIntegrator>("i", cfg);
    integ.accumulate(10);
    EXPECT_EQ(integ.pendingCount(), 10);
    integ.accumulate(100); // far past nmax: must clamp
    EXPECT_EQ(integ.pendingCount(), cfg.nmax());
    EXPECT_EQ(integ.epoch(), cfg.nmax());
    EXPECT_EQ(integ.pendingCount(), 0); // the marker restarts it
}

TEST(FuncProperty, IntegratorBufferDelaysOneEpoch)
{
    Netlist nl;
    auto &buf =
        nl.create<func::IntegratorBuffer>("b", 100 * kPicosecond);
    EXPECT_EQ(buf.push(7), 0); // initial held value
    EXPECT_EQ(buf.push(3), 7);
    EXPECT_EQ(buf.push(12), 3);
    buf.reset();
    EXPECT_EQ(buf.push(5), 0);
}

// --- tail-bit invariant ------------------------------------------------------
//
// Audit result pinned here: bits at or beyond nmax in the last packed
// word must be zero after EVERY stream op.  Ops built on raw NOT/XNOR
// word kernels (complement, bipolar products, batched variants) are
// the ones that can violate it; popcounts and unions would then see
// ghost pulses.

std::uint64_t
tailBits(const func::PulseStream &s)
{
    const int tail = s.config().nmax() % 64;
    if (tail == 0)
        return 0;
    return s.words()[s.wordCountOf() - 1] &
           ~((std::uint64_t{1} << tail) - 1);
}

std::uint64_t
laneTailBits(const func::BatchStream &s, int b)
{
    const int tail = s.config().nmax() % 64;
    if (tail == 0)
        return 0;
    return s.lane(b)[s.wordsPerLane() - 1] &
           ~((std::uint64_t{1} << tail) - 1);
}

TEST(FuncProperty, TailBitsStayZeroAcrossScalarOps)
{
    Rng rng(0x7a11u);
    for (int bits : {2, 3, 5}) { // nmax 4, 8, 32: all partial tails
        const EpochConfig cfg(bits);
        for (int trial = 0; trial < 200; ++trial) {
            const int n = static_cast<int>(rng.uniformInt(0, cfg.nmax()));
            const int id =
                static_cast<int>(rng.uniformInt(0, cfg.nmax()));
            const auto a = func::PulseStream::euclidean(cfg, n);
            EXPECT_EQ(tailBits(a), 0u);
            EXPECT_EQ(tailBits(a.complement()), 0u);
            EXPECT_EQ(tailBits(a.maskBelow(id)), 0u);
            EXPECT_EQ(tailBits(a.maskAtOrAbove(id)), 0u);
            EXPECT_EQ(tailBits(a.unionWith(a.complement())), 0u);
            EXPECT_EQ(tailBits(a.intersectWith(a.complement())), 0u);
            EXPECT_EQ(tailBits(func::bipolarProductStream(a, id)), 0u);
        }
    }
}

TEST(FuncProperty, TailBitsStayZeroAcrossBatchedOps)
{
    Rng rng(0x7a12u);
    WordArena arena;
    for (int bits : {2, 3, 5}) {
        const EpochConfig cfg(bits);
        constexpr int kLanes = 17;
        std::vector<int> ns, ids;
        for (int b = 0; b < kLanes; ++b) {
            ns.push_back(static_cast<int>(rng.uniformInt(0, cfg.nmax())));
            ids.push_back(
                static_cast<int>(rng.uniformInt(0, cfg.nmax())));
        }
        arena.reset();
        const auto a = func::BatchStream::euclidean(cfg, ns, arena);
        const auto checks = {
            func::BatchStream::prefixMasks(cfg, ids, arena),
            func::batchComplement(a, arena),
            func::batchMaskBelow(a, ids, arena),
            func::batchMaskAtOrAbove(a, ids, arena),
            func::batchBipolarProduct(a, ids, arena),
            func::batchUnion(a, func::batchComplement(a, arena), arena),
        };
        for (const auto &s : checks)
            for (int b = 0; b < s.lanes(); ++b)
                EXPECT_EQ(laneTailBits(s, b), 0u)
                    << "bits=" << bits << " lane=" << b;
    }
}

TEST(FuncProperty, FromWordsRejectsTailBitViolations)
{
    const EpochConfig cfg(3); // nmax = 8: bits 8..63 are tail
    std::uint64_t raw[1] = {0xff};
    EXPECT_EQ(func::PulseStream::fromWords(cfg, raw).count(), 8);
    raw[0] = 0x1ff; // bit 8 = first ghost slot
    EXPECT_DEATH(func::PulseStream::fromWords(cfg, raw), "window");
}

} // namespace
} // namespace usfq
