/**
 * @file
 * Golden-trace regression tests: full pulse traces of small canonical
 * netlists are compared tick-for-tick against checked-in golden files.
 *
 * The goldens were generated with the original std::priority_queue
 * event kernel, so they pin the observable behaviour of the simulator
 * across kernel rewrites: any change to event ordering, cell timing, or
 * wire delays shows up as a pulse-level diff.
 *
 * Regenerate with:  USFQ_UPDATE_GOLDEN=1 ./golden_trace_test
 * (then inspect the diff of tests/golden/ before committing).
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/adder.hh"
#include "core/encoding.hh"
#include "core/fir.hh"
#include "core/multiplier.hh"
#include "core/pnm.hh"
#include "func/components.hh"
#include "gen/balance.hh"
#include "gen/datapath.hh"
#include "gen/functional.hh"
#include "gen/spec.hh"
#include "obs/stats.hh"
#include "sim/netlist.hh"
#include "sim/sweep.hh"
#include "sim/trace.hh"
#include "sfq/sources.hh"
#include "sta/sta.hh"

#ifndef USFQ_GOLDEN_DIR
#error "USFQ_GOLDEN_DIR must point at tests/golden"
#endif

namespace usfq
{
namespace
{

/** One named pulse trace of a scenario. */
struct Channel
{
    std::string name;
    std::vector<Tick> times;
};

using Channels = std::vector<Channel>;

std::string
goldenPath(const std::string &scenario)
{
    return std::string(USFQ_GOLDEN_DIR) + "/" + scenario + ".trace";
}

void
writeGolden(const std::string &scenario, const Channels &channels)
{
    std::ofstream out(goldenPath(scenario));
    ASSERT_TRUE(out.good()) << "cannot write " << goldenPath(scenario);
    out << "# usfq golden trace: " << scenario << "\n";
    out << "# ticks are integer femtoseconds; regenerate with "
           "USFQ_UPDATE_GOLDEN=1\n";
    for (const auto &ch : channels) {
        out << "channel " << ch.name << " " << ch.times.size() << "\n";
        for (Tick t : ch.times)
            out << t << "\n";
    }
}

bool
readGolden(const std::string &scenario, Channels &channels)
{
    std::ifstream in(goldenPath(scenario));
    if (!in.good())
        return false;
    channels.clear();
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream ls(line);
        std::string word;
        ls >> word;
        if (word == "channel") {
            Channel ch;
            std::size_t count = 0;
            ls >> ch.name >> count;
            ch.times.reserve(count);
            channels.push_back(std::move(ch));
        } else {
            if (channels.empty())
                return false;
            channels.back().times.push_back(
                static_cast<Tick>(std::stoll(word)));
        }
    }
    return true;
}

/** Compare against the golden file, or regenerate it when asked to. */
void
checkGolden(const std::string &scenario, const Channels &actual)
{
    const char *update = std::getenv("USFQ_UPDATE_GOLDEN");
    if (update && update[0] == '1') {
        writeGolden(scenario, actual);
        SUCCEED() << "regenerated " << goldenPath(scenario);
        return;
    }

    Channels expected;
    ASSERT_TRUE(readGolden(scenario, expected))
        << "missing golden file " << goldenPath(scenario)
        << "; run with USFQ_UPDATE_GOLDEN=1 to create it";
    ASSERT_EQ(expected.size(), actual.size()) << scenario;
    for (std::size_t c = 0; c < expected.size(); ++c) {
        const Channel &e = expected[c];
        const Channel &a = actual[c];
        EXPECT_EQ(e.name, a.name) << scenario << " channel " << c;
        ASSERT_EQ(e.times.size(), a.times.size())
            << scenario << "." << e.name << ": pulse count changed";
        for (std::size_t i = 0; i < e.times.size(); ++i) {
            ASSERT_EQ(e.times[i], a.times[i])
                << scenario << "." << e.name << ": pulse " << i
                << " moved (golden " << e.times[i] << " fs, got "
                << a.times[i] << " fs)";
        }
    }
}

/**
 * STA-vs-sim envelope: every simulated pulse on @p port must land
 * inside the STA arrival window, and successive pulses may never be
 * closer than the STA separation floor -- so the STA-predicted max
 * pulse rate upper-bounds anything the event-driven kernel produced.
 */
void
expectStaEnvelope(const StaReport &sta, const OutputPort &port,
                  const std::vector<Tick> &observed,
                  const std::string &what)
{
    if (observed.empty())
        return;
    const ArrivalWindow w = sta.windowOf(port);
    ASSERT_TRUE(w.reachable)
        << what << ": traced port unreachable in STA";
    for (std::size_t i = 0; i < observed.size(); ++i) {
        EXPECT_GE(observed[i], w.earliest)
            << what << ": pulse " << i << " before the STA window";
        EXPECT_LE(observed[i], w.latest)
            << what << ": pulse " << i << " after the STA window";
    }
    const Tick floor = sta.separationFloor(port);
    for (std::size_t i = 1; i < observed.size(); ++i)
        EXPECT_GE(observed[i] - observed[i - 1], floor)
            << what << ": pulses " << i - 1 << " and " << i
            << " beat the STA separation floor";
}

// --- canonical netlists ----------------------------------------------------

/** One unipolar multiplier epoch: n-pulse stream gated by an RL pulse. */
std::vector<Tick>
runMultiplierEpoch(int bits, int stream_count, int rl_id)
{
    const EpochConfig cfg(bits);
    Netlist nl;
    auto &mult = nl.create<UnipolarMultiplier>("m");
    auto &e = nl.create<PulseSource>("e");
    auto &a = nl.create<PulseSource>("a");
    auto &b = nl.create<PulseSource>("b");
    PulseTrace out;
    e.out.connect(mult.epoch());
    a.out.connect(mult.streamIn());
    b.out.connect(mult.rlIn());
    mult.out().connect(out.input());
    e.pulseAt(0);
    a.pulsesAt(cfg.streamTimes(stream_count));
    b.pulseAt(cfg.rlArrival(rl_id));
    nl.run();
    expectStaEnvelope(runSta(nl), mult.out(), out.times(),
                      "multiplier n=" + std::to_string(stream_count));
    return out.times();
}

/** 8-input balancer tree summing one stream per input. */
std::vector<Tick>
runCountingNetwork(const std::vector<int> &counts)
{
    const EpochConfig cfg(6, 40 * kPicosecond);
    Netlist nl;
    auto &net = nl.create<TreeCountingNetwork>(
        "net", static_cast<int>(counts.size()));
    PulseTrace out;
    net.out().connect(out.input());
    for (std::size_t i = 0; i < counts.size(); ++i) {
        auto &src = nl.create<PulseSource>("s" + std::to_string(i));
        src.out.connect(net.in(static_cast<int>(i)));
        src.pulsesAt(cfg.streamTimes(counts[i]));
    }
    nl.run();
    expectStaEnvelope(runSta(nl), net.out(), out.times(),
                      "counting network");
    return out.times();
}

/** A PNM generating its programmed stream from a divided clock. */
template <typename Pnm>
Channels
runPnm(int bits, int value, int num_epochs)
{
    constexpr Tick kTclk = 200 * kPicosecond;
    Netlist nl;
    auto &pnm = nl.create<Pnm>("pnm", bits);
    auto &clk = nl.create<ClockSource>("clk");
    PulseTrace stream, epochs;
    clk.out.connect(pnm.clkIn());
    pnm.out().connect(stream.input());
    pnm.epochOut().connect(epochs.input());
    pnm.program(value);
    clk.program(kTclk, kTclk,
                static_cast<std::uint64_t>(num_epochs)
                    << static_cast<unsigned>(bits));
    nl.run();
    const StaReport sta = runSta(nl);
    expectStaEnvelope(sta, pnm.out(), stream.times(), "pnm stream");
    expectStaEnvelope(sta, pnm.epochOut(), epochs.times(), "pnm epoch");
    return {{"stream", stream.times()}, {"epoch", epochs.times()}};
}

// --- the tests -------------------------------------------------------------

TEST(GoldenTrace, UnipolarMultiplierEpoch)
{
    Channels channels;
    channels.push_back({"out_n32_rl32", runMultiplierEpoch(6, 32, 32)});
    channels.push_back({"out_n17_rl45", runMultiplierEpoch(6, 17, 45)});
    channels.push_back({"out_n63_rl1", runMultiplierEpoch(6, 63, 1)});
    checkGolden("multiplier_epoch", channels);
}

TEST(GoldenTrace, CountingNetwork8)
{
    Channels channels;
    channels.push_back(
        {"out_ramp", runCountingNetwork({4, 10, 16, 22, 28, 34, 40, 46})});
    channels.push_back(
        {"out_flat", runCountingNetwork({32, 32, 32, 32, 32, 32, 32, 32})});
    checkGolden("counting_network8", channels);
}

// Kernel instrumentation (USFQ_OBS=1) must be invisible to simulation
// results: the same scenario re-checks against the same golden file
// with stats collection force-enabled.
TEST(GoldenTrace, UnipolarMultiplierEpochUnchangedUnderObs)
{
    obs::setKernelStatsEnabled(true);
    Channels channels;
    channels.push_back({"out_n32_rl32", runMultiplierEpoch(6, 32, 32)});
    channels.push_back({"out_n17_rl45", runMultiplierEpoch(6, 17, 45)});
    channels.push_back({"out_n63_rl1", runMultiplierEpoch(6, 63, 1)});
    obs::setKernelStatsEnabled(false);
    checkGolden("multiplier_epoch", channels);
}

TEST(GoldenTrace, PnmStreams)
{
    Channels channels;
    for (auto &ch : runPnm<UniformPnm>(6, 23, 2))
        channels.push_back({"uniform23_" + ch.name, ch.times});
    for (auto &ch : runPnm<ClassicPnm>(6, 11, 1))
        channels.push_back({"classic11_" + ch.name, ch.times});
    checkGolden("pnm_streams", channels);
}

// --- generated-datapath goldens ---------------------------------------------
//
// Auto-generated designs (src/gen/, docs/synthesis.md) pinned pre- AND
// post-balancing: the `pre` channel freezes the unbalanced datapath
// (the raw lane skew the balancing pass must close), the `post` channel
// freezes the compiled result.  Post-balancing pulses are additionally
// checked against the STA arrival windows under genStaOptions(), so the
// goldens tie the event kernel, the balancing pass and the timing
// engine together.

/** Trace one epoch of (spec, plan) on a fresh netlist. */
std::vector<Tick>
runGenEpoch(const gen::DesignSpec &spec, const gen::PaddingPlan &plan,
            const gen::EpochInputs &in, bool check_sta)
{
    Netlist nl("gen");
    auto &dp = nl.create<gen::StreamDatapath>("dp", spec, plan);
    PulseTrace out("trace");
    out.input().markObserver();
    dp.out().connect(out.input());
    dp.programEpoch(in);
    nl.run();
    if (check_sta) {
        const StaReport sta = runStaChecked(nl, gen::genStaOptions(spec));
        expectStaEnvelope(sta, dp.out(), out.times(),
                          std::string("gen ") +
                              gen::treeKindName(spec.tree));
        // Functional mirror cross-check: the slot algebra only models
        // the BALANCED design, so the post channel's pulse count must
        // equal the mirror prediction (the pre channel need not).
        EXPECT_EQ(static_cast<long long>(out.times().size()),
                  gen::evalEpoch(spec, in).count);
    }
    return out.times();
}

/** Pre/post channel pair of one generated scenario: the densest epoch
 *  (n = nmax) with every fourth lane gated off. */
Channels
genScenario(const gen::DesignSpec &spec)
{
    const gen::BalanceOutcome bo = gen::balanceDesign(spec);
    EXPECT_TRUE(bo.converged()) << bo.detail;
    gen::EpochInputs in;
    in.n = spec.nmax();
    for (int l = 0; l < spec.lanes; ++l)
        in.gates.push_back(l % 4 != 3);
    Channels channels;
    channels.push_back(
        {"pre", runGenEpoch(spec, {}, in, /*check_sta=*/false)});
    channels.push_back(
        {"post", runGenEpoch(spec, bo.plan, in, /*check_sta=*/true)});
    return channels;
}

TEST(GoldenTrace, GenSkewedBalancer)
{
    gen::DesignSpec s;
    s.tree = gen::TreeKind::Balancer;
    s.shape = gen::LaneShape::Skewed;
    s.skewStep = 2;
    s.maxDividers = 2;
    s.clockPeriodPs = 16;
    s.bits = 4;
    checkGolden("gen_skewed_balancer", genScenario(s));
}

TEST(GoldenTrace, GenRandomMerger)
{
    gen::DesignSpec s;
    s.tree = gen::TreeKind::Merger;
    s.shape = gen::LaneShape::Random;
    s.shapeSeed = 99;
    s.skewStep = 3;
    s.maxDividers = 2;
    s.clockPeriodPs = 10;
    s.bits = 4;
    checkGolden("gen_random_merger", genScenario(s));
}

TEST(GoldenTrace, GenBipolarTff2)
{
    gen::DesignSpec s;
    s.tree = gen::TreeKind::Tff2;
    s.encoding = gen::StreamEncoding::Bipolar;
    s.shape = gen::LaneShape::Skewed;
    s.skewStep = 1;
    s.clockPeriodPs = 24;
    s.bits = 3;
    checkGolden("gen_bipolar_tff2", genScenario(s));
}

TEST(GoldenTrace, GenRegisterBalancer)
{
    gen::DesignSpec s;
    s.tree = gen::TreeKind::Balancer;
    s.balance = gen::BalanceStyle::Register;
    s.shape = gen::LaneShape::Skewed;
    s.skewStep = 2;
    s.clockPeriodPs = 20;
    s.bits = 4;
    checkGolden("gen_register_balancer", genScenario(s));
}

// --- functional-backend goldens ---------------------------------------------
//
// The src/func/ engine has no pulse times to freeze, so its goldens
// pin integer epoch results instead: the channel "times" are output
// pulse counts (and JJ figures), one entry per design point.  Both
// scenarios mirror the pinned fig16/fig19 bench runs and are evaluated
// through a Backend::Functional sweep, so the goldens also cover the
// backend plumbing end to end.

TEST(GoldenTrace, FunctionalDpuFig16Pinned)
{
    // fig16's pinned-operand bipolar DPU at every bench vector length.
    const std::vector<int> taps{16, 32, 64, 128, 256};
    SweepOptions opt;
    opt.backend = Backend::Functional;
    const auto rows = runSweep(
        taps.size(),
        [&taps](const ShardContext &ctx) {
            EXPECT_EQ(ctx.backend, Backend::Functional);
            const int t = taps[ctx.index];
            const EpochConfig cfg(8);
            Netlist nl;
            auto &dpu = nl.create<func::DotProductUnit>(
                "dpu", t, DpuMode::Bipolar);
            std::vector<int> streams, rls;
            for (int i = 0; i < t; ++i) {
                streams.push_back((i * 37 + 11) % (cfg.nmax() + 1));
                rls.push_back((i * 53 + 7) % (cfg.nmax() + 1));
            }
            return std::pair<Tick, Tick>(
                dpu.evaluate(cfg, streams, rls), dpu.jjCount());
        },
        opt);

    Channels channels(2);
    channels[0].name = "count";
    channels[1].name = "jj";
    for (const auto &[count, jj] : rows) {
        channels[0].times.push_back(count);
        channels[1].times.push_back(jj);
    }
    checkGolden("func_dpu_fig16", channels);
}

TEST(GoldenTrace, FunctionalFirFig19Pinned)
{
    // fig19's pinned pulse-equivalence scenario on the functional
    // engine: per-epoch output pulse counts of the 4-tap unipolar FIR,
    // plus the documented pulse-vs-functional tolerance -- freezing
    // that tolerance in-repo so a bench-side relaxation cannot slip
    // through unnoticed.
    const int taps = 4, bits = 6;
    UsfqFirConfig cfg{.taps = taps, .bits = bits,
                      .mode = DpuMode::Unipolar};
    const EpochConfig ecfg(bits, cfg.clockPeriod());
    const std::vector<double> h{0.95, 0.3, 0.2, 0.1};
    const std::vector<double> x{0.0, 0.2, 0.8, 0.5, 0.9, 0.1,
                                0.6, 0.3, 0.7, 0.4, 0.5, 0.5};

    SweepOptions opt;
    opt.backend = Backend::Functional;
    const auto counts = runSweep(
        1,
        [&](const ShardContext &) {
            Netlist nl;
            auto &fir = nl.create<func::UsfqFir>("fir", cfg);
            for (int k = 0; k < taps; ++k)
                fir.setCoefficient(k, h[static_cast<std::size_t>(k)]);
            std::vector<Tick> out;
            std::vector<int> window;
            for (double sample : x) {
                window.insert(window.begin(),
                              ecfg.rlIdOfUnipolar(sample));
                if (static_cast<int>(window.size()) > taps)
                    window.pop_back();
                out.push_back(fir.stepCount(window));
            }
            return out;
        },
        opt)[0];

    Channels channels;
    channels.push_back({"count", counts});
    channels.push_back({"pulse_equiv_tolerance", {2}});
    checkGolden("func_fir_fig19", channels);
}

} // namespace
} // namespace usfq
