/**
 * @file
 * Tests of the bitonic counting network [4]: the step property in
 * quiescent states, pulse conservation, tolerance of simultaneous
 * arrivals, and the size formula.
 */

#include <gtest/gtest.h>

#include <numeric>

#include "core/bitonic.hh"
#include "sim/trace.hh"
#include "sfq/sources.hh"
#include "util/random.hh"

namespace usfq
{
namespace
{

constexpr Tick kSpacing = 40 * kPicosecond;

struct Harness
{
    Netlist nl;
    BitonicCountingNetwork *net;
    std::vector<std::unique_ptr<PulseTrace>> outs;

    explicit Harness(int width)
    {
        net = &nl.create<BitonicCountingNetwork>("net", width);
        for (int i = 0; i < width; ++i) {
            outs.push_back(std::make_unique<PulseTrace>(
                "o" + std::to_string(i)));
            net->out(i).connect(outs.back()->input());
        }
    }

    /** Drive per-input pulse counts on a staggered-safe schedule. */
    void
    drive(const std::vector<int> &counts)
    {
        for (std::size_t i = 0; i < counts.size(); ++i) {
            auto &src = nl.create<PulseSource>("s" + std::to_string(i));
            src.out.connect(net->in(static_cast<int>(i)));
            for (int k = 0; k < counts[i]; ++k)
                src.pulseAt(10 * kPicosecond +
                            static_cast<Tick>(k) * kSpacing *
                                static_cast<Tick>(counts.size()) +
                            static_cast<Tick>(i) * kSpacing);
        }
        nl.queue().run();
    }

    std::vector<int>
    outputCounts() const
    {
        std::vector<int> c;
        for (const auto &t : outs)
            c.push_back(static_cast<int>(t->count()));
        return c;
    }
};

bool
hasStepProperty(const std::vector<int> &counts)
{
    for (std::size_t i = 0; i < counts.size(); ++i)
        for (std::size_t j = i + 1; j < counts.size(); ++j) {
            const int d = counts[i] - counts[j];
            if (d < 0 || d > 1)
                return false;
        }
    return true;
}

TEST(BitonicNetwork, SizeFormula)
{
    Netlist nl;
    auto &b4 = nl.create<BitonicCountingNetwork>("b4", 4);
    auto &b8 = nl.create<BitonicCountingNetwork>("b8", 8);
    EXPECT_EQ(b4.numBalancers(), BitonicCountingNetwork::balancersFor(4));
    EXPECT_EQ(b4.numBalancers(), 6);   // width/2 * k(k+1)/2 = 2*3
    EXPECT_EQ(b8.numBalancers(), 24);  // 4*6
}

TEST(BitonicNetwork, RejectsNonPowerOfTwo)
{
    Netlist nl;
    EXPECT_EXIT(nl.create<BitonicCountingNetwork>("bad", 6),
                ::testing::ExitedWithCode(1), "power of two");
}

TEST(BitonicNetwork, StepPropertySingleStream)
{
    Harness h(4);
    h.drive({7, 0, 0, 0});
    const auto counts = h.outputCounts();
    EXPECT_EQ(std::accumulate(counts.begin(), counts.end(), 0), 7);
    EXPECT_TRUE(hasStepProperty(counts));
    EXPECT_EQ(counts, BitonicCountingNetwork::stepCounts(4, 7));
}

class BitonicWidths : public ::testing::TestWithParam<int>
{
};

TEST_P(BitonicWidths, StepPropertyRandomLoads)
{
    const int width = GetParam();
    Rng rng(800 + width);
    for (int trial = 0; trial < 4; ++trial) {
        Harness h(width);
        std::vector<int> in(static_cast<std::size_t>(width));
        int total = 0;
        for (auto &v : in) {
            v = static_cast<int>(rng.uniformInt(0, 6));
            total += v;
        }
        h.drive(in);
        const auto counts = h.outputCounts();
        EXPECT_EQ(std::accumulate(counts.begin(), counts.end(), 0),
                  total)
            << "width=" << width << " trial=" << trial;
        EXPECT_TRUE(hasStepProperty(counts))
            << "width=" << width << " trial=" << trial;
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, BitonicWidths,
                         ::testing::Values(2, 4, 8));

TEST(BitonicNetwork, SimultaneousWaveConserved)
{
    // All inputs fire at once repeatedly; balancers resolve every
    // coincidence and the step property still holds.
    const int width = 4;
    Harness h(width);
    for (int i = 0; i < width; ++i) {
        auto &src = h.nl.create<PulseSource>("w" + std::to_string(i));
        src.out.connect(h.net->in(i));
        for (int k = 0; k < 3; ++k)
            src.pulseAt(10 * kPicosecond + k * 4 * kSpacing);
    }
    h.nl.queue().run();
    const auto counts = h.outputCounts();
    EXPECT_EQ(std::accumulate(counts.begin(), counts.end(), 0), 12);
    EXPECT_TRUE(hasStepProperty(counts));
    EXPECT_EQ(h.net->ignoredInputs(), 0u);
}

TEST(BitonicNetwork, StepCountsModel)
{
    const auto c = BitonicCountingNetwork::stepCounts(4, 6);
    EXPECT_EQ(c, (std::vector<int>{2, 2, 1, 1}));
    const auto z = BitonicCountingNetwork::stepCounts(8, 0);
    EXPECT_EQ(std::accumulate(z.begin(), z.end(), 0), 0);
}

TEST(BitonicNetwork, CostsMoreThanTreeForOneOutput)
{
    // The design trade the ablation bench quantifies: the tree gets
    // one averaged output with w-1 balancers; the bitonic network
    // balances all w outputs at O(w log^2 w) cost.
    Netlist nl;
    auto &tree = nl.create<TreeCountingNetwork>("t", 16);
    auto &bit = nl.create<BitonicCountingNetwork>("b", 16);
    EXPECT_LT(tree.jjCount(), bit.jjCount());
}

} // namespace
} // namespace usfq
