/**
 * @file
 * Pulse-level tests of the U-SFQ adders (paper §4.2): merger trees with
 * their collision losses, the proposed balancer (including simultaneous
 * arrivals and the BFF dead-time bias case), and tree counting networks.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/adder.hh"
#include "core/encoding.hh"
#include "sim/trace.hh"
#include "sfq/sources.hh"
#include "util/random.hh"

namespace usfq
{
namespace
{

constexpr Tick kSafe = cell::kBffDeadTime; // 12 ps

// --- MergerTreeAdder --------------------------------------------------------

TEST(MergerTreeAdder, MergesDisjointStreams)
{
    Netlist nl;
    auto &add = nl.create<MergerTreeAdder>("add", 2);
    auto &sa = nl.create<PulseSource>("sa");
    auto &sb = nl.create<PulseSource>("sb");
    PulseTrace out;
    sa.out.connect(add.in(0));
    sb.out.connect(add.in(1));
    add.out().connect(out.input());

    // Interleaved, well separated: all pulses survive.
    for (int i = 0; i < 5; ++i) {
        sa.pulseAt((20 * i) * kPicosecond + 10 * kPicosecond);
        sb.pulseAt((20 * i) * kPicosecond + 20 * kPicosecond);
    }
    nl.queue().run();
    EXPECT_EQ(out.count(), 10u);
    EXPECT_EQ(add.collisions(), 0u);
}

TEST(MergerTreeAdder, SimultaneousPulsesCollide)
{
    // Paper Fig. 5b: four pulses in, three out for a 4:1 merger when two
    // arrive together.
    Netlist nl;
    auto &add = nl.create<MergerTreeAdder>("add", 4);
    std::vector<PulseSource *> srcs;
    PulseTrace out;
    for (int i = 0; i < 4; ++i) {
        auto &s = nl.create<PulseSource>("s" + std::to_string(i));
        s.out.connect(add.in(i));
        srcs.push_back(&s);
    }
    add.out().connect(out.input());

    srcs[0]->pulseAt(10 * kPicosecond);
    srcs[1]->pulseAt(10 * kPicosecond);  // collides with input 0
    srcs[2]->pulseAt(100 * kPicosecond);
    srcs[3]->pulseAt(200 * kPicosecond);
    nl.queue().run();
    EXPECT_EQ(out.count(), 3u);
    EXPECT_EQ(add.collisions(), 1u);
}

TEST(MergerTreeAdder, SafeSpacingAvoidsCollisions)
{
    // Paper Fig. 5c: spacing the four streams by the safe interval
    // loses nothing.
    Netlist nl;
    auto &add = nl.create<MergerTreeAdder>("add", 4);
    std::vector<PulseSource *> srcs;
    PulseTrace out;
    for (int i = 0; i < 4; ++i) {
        auto &s = nl.create<PulseSource>("s" + std::to_string(i));
        s.out.connect(add.in(i));
        srcs.push_back(&s);
    }
    add.out().connect(out.input());

    const Tick spacing = MergerTreeAdder::safeSpacing(4);
    const Tick lane = spacing / 4;
    for (int k = 0; k < 6; ++k) {
        for (int i = 0; i < 4; ++i)
            srcs[static_cast<std::size_t>(i)]->pulseAt(
                10 * kPicosecond + k * spacing + i * lane);
    }
    nl.queue().run();
    EXPECT_EQ(out.count(), 24u);
    EXPECT_EQ(add.collisions(), 0u);
}

TEST(MergerTreeAdder, AreaIsNodesTimesFiveJJs)
{
    Netlist nl;
    auto &a2 = nl.create<MergerTreeAdder>("a2", 2);
    auto &a16 = nl.create<MergerTreeAdder>("a16", 16);
    EXPECT_EQ(a2.jjCount(), 5);
    EXPECT_EQ(a16.jjCount(), 15 * 5);
}

TEST(MergerTreeAdder, RejectsNonPowerOfTwo)
{
    Netlist nl;
    EXPECT_EXIT(nl.create<MergerTreeAdder>("bad", 3),
                ::testing::ExitedWithCode(1), "power of two");
}

// --- BalancerRoutingUnit ----------------------------------------------------

TEST(RoutingUnit, AlternatesC1C2)
{
    Netlist nl;
    auto &ru = nl.create<BalancerRoutingUnit>("ru");
    auto &src = nl.create<PulseSource>("s");
    PulseTrace t1, t2;
    src.out.connect(ru.inA);
    ru.c1.connect(t1.input());
    ru.c2.connect(t2.input());
    for (int i = 0; i < 6; ++i)
        src.pulseAt((i + 1) * 2 * kSafe);
    nl.queue().run();
    EXPECT_EQ(t1.count(), 3u);
    EXPECT_EQ(t2.count(), 3u);
    EXPECT_EQ(ru.ignoredInputs(), 0u);
}

TEST(RoutingUnit, CoincidentPairYieldsBothOutputs)
{
    Netlist nl;
    auto &ru = nl.create<BalancerRoutingUnit>("ru");
    auto &sa = nl.create<PulseSource>("sa");
    auto &sb = nl.create<PulseSource>("sb");
    PulseTrace t1, t2;
    sa.out.connect(ru.inA);
    sb.out.connect(ru.inB);
    ru.c1.connect(t1.input());
    ru.c2.connect(t2.input());
    sa.pulseAt(7 * kPicosecond);
    sb.pulseAt(7 * kPicosecond);
    nl.queue().run();
    EXPECT_EQ(t1.count(), 1u);
    EXPECT_EQ(t2.count(), 1u);
    EXPECT_FALSE(ru.state()); // toggled twice
}

TEST(RoutingUnit, PulseDuringDeadTimeIgnored)
{
    Netlist nl;
    auto &ru = nl.create<BalancerRoutingUnit>("ru");
    auto &src = nl.create<PulseSource>("s");
    PulseTrace t1, t2;
    src.out.connect(ru.inA);
    ru.c1.connect(t1.input());
    ru.c2.connect(t2.input());
    src.pulseAt(10 * kPicosecond);
    src.pulseAt(10 * kPicosecond + kSafe / 2); // mid-transition
    nl.queue().run();
    EXPECT_EQ(t1.count(), 1u);
    EXPECT_EQ(t2.count(), 0u);
    EXPECT_EQ(ru.ignoredInputs(), 1u);
}

// --- Balancer ------------------------------------------------------------------

struct BalancerHarness
{
    Netlist nl;
    Balancer *bal;
    PulseSource *sa;
    PulseSource *sb;
    PulseTrace y1, y2;

    BalancerHarness()
    {
        bal = &nl.create<Balancer>("bal");
        sa = &nl.create<PulseSource>("sa");
        sb = &nl.create<PulseSource>("sb");
        sa->out.connect(bal->inA());
        sb->out.connect(bal->inB());
        bal->y1().connect(y1.input());
        bal->y2().connect(y2.input());
    }
};

TEST(Balancer, SinglePulseExitsY1)
{
    BalancerHarness h;
    h.sb->pulseAt(10 * kPicosecond); // via B: routing is input-agnostic
    h.nl.queue().run();
    EXPECT_EQ(h.y1.count(), 1u);
    EXPECT_EQ(h.y2.count(), 0u);
}

TEST(Balancer, AlternatesOutputs)
{
    BalancerHarness h;
    for (int i = 0; i < 8; ++i)
        h.sa->pulseAt((i + 1) * 2 * kSafe);
    h.nl.queue().run();
    EXPECT_EQ(h.y1.count(), 4u);
    EXPECT_EQ(h.y2.count(), 4u);
}

TEST(Balancer, SimultaneousArrivalOnePulseEachOutput)
{
    // Paper Fig. 7 at ~7 ps: A and B together -> one pulse per output.
    BalancerHarness h;
    h.sa->pulseAt(7 * kPicosecond);
    h.sb->pulseAt(7 * kPicosecond);
    h.nl.queue().run();
    EXPECT_EQ(h.y1.count(), 1u);
    EXPECT_EQ(h.y2.count(), 1u);
}

TEST(Balancer, BalancesInterleavedStreams)
{
    BalancerHarness h;
    int total = 0;
    for (int i = 0; i < 10; ++i) {
        h.sa->pulseAt((i + 1) * 3 * kSafe);
        ++total;
        if (i % 2 == 0) {
            h.sb->pulseAt((i + 1) * 3 * kSafe + kSafe);
            ++total;
        }
    }
    h.nl.queue().run();
    EXPECT_EQ(h.y1.count() + h.y2.count(), static_cast<std::size_t>(total));
    EXPECT_LE(std::llabs(static_cast<long long>(h.y1.count()) -
                         static_cast<long long>(h.y2.count())),
              1);
}

TEST(Balancer, OutputsHalfTheInputPulses)
{
    // The adder contract: each output carries (N_A + N_B) / 2.
    BalancerHarness h;
    const int na = 7, nb = 4;
    for (int i = 0; i < na; ++i)
        h.sa->pulseAt((i + 1) * 2 * kSafe);
    for (int i = 0; i < nb; ++i)
        h.sb->pulseAt((i + 1) * 2 * kSafe + kSafe);
    h.nl.queue().run();
    EXPECT_EQ(h.y1.count(), 6u); // ceil(11/2)
    EXPECT_EQ(h.y2.count(), 5u); // floor(11/2)
}

TEST(Balancer, AreaIs60JJs)
{
    Netlist nl;
    auto &bal = nl.create<Balancer>("b");
    EXPECT_EQ(bal.jjCount(), 60);
}

TEST(Balancer, DeadTimeViolationBiasesButConservesLater)
{
    // Case (iii): the second pulse inside the dead time is unregistered;
    // the balancer leans on one output but does not crash.
    BalancerHarness h;
    h.sa->pulseAt(10 * kPicosecond);
    h.sa->pulseAt(10 * kPicosecond + kSafe / 2);
    h.nl.queue().run();
    EXPECT_EQ(h.bal->ignoredInputs(), 1u);
    EXPECT_EQ(h.y1.count() + h.y2.count(), 1u);
}

// --- MergerTff2Balancer -----------------------------------------------------

TEST(MergerTff2Balancer, LosesSimultaneousPair)
{
    Netlist nl;
    auto &bal = nl.create<MergerTff2Balancer>("b");
    auto &sa = nl.create<PulseSource>("sa");
    auto &sb = nl.create<PulseSource>("sb");
    PulseTrace y1, y2;
    sa.out.connect(bal.inA());
    sb.out.connect(bal.inB());
    bal.y1().connect(y1.input());
    bal.y2().connect(y2.input());
    sa.pulseAt(10 * kPicosecond);
    sb.pulseAt(10 * kPicosecond);
    nl.queue().run();
    // One of the two pulses dies in the merger: the defect the paper's
    // balancer fixes.
    EXPECT_EQ(y1.count() + y2.count(), 1u);
    EXPECT_EQ(bal.collisions(), 1u);
}

TEST(MergerTff2Balancer, CheaperThanProposedBalancer)
{
    Netlist nl;
    auto &cheap = nl.create<MergerTff2Balancer>("c");
    auto &full = nl.create<Balancer>("f");
    EXPECT_LT(cheap.jjCount(), full.jjCount());
    EXPECT_EQ(cheap.jjCount(), cell::kMergerJJs + cell::kTff2JJs);
}

// --- TreeCountingNetwork ------------------------------------------------------

/** Drive an M-input network with the given per-input pulse counts. */
std::size_t
runTree(int m, const std::vector<int> &counts, Tick spacing = 2 * kSafe)
{
    Netlist nl;
    auto &net = nl.create<TreeCountingNetwork>("net", m);
    PulseTrace out;
    net.out().connect(out.input());
    for (int i = 0; i < m; ++i) {
        auto &src = nl.create<PulseSource>("s" + std::to_string(i));
        src.out.connect(net.in(i));
        // Stagger lanes so same-lane spacing is `spacing` and cross-lane
        // arrivals at shared balancers are offset.
        for (int k = 0; k < counts[static_cast<std::size_t>(i)]; ++k)
            src.pulseAt(10 * kPicosecond + k * spacing * m +
                        i * spacing);
    }
    nl.queue().run();
    return out.count();
}

TEST(TreeCountingNetwork, TwoInputsAverage)
{
    EXPECT_EQ(runTree(2, {4, 4}), 4u);
    EXPECT_EQ(runTree(2, {8, 0}), 4u);
    EXPECT_EQ(runTree(2, {0, 0}), 0u);
}

TEST(TreeCountingNetwork, FourInputsWithinRounding)
{
    const auto out = runTree(4, {8, 4, 6, 2}); // sum 20 -> 5
    EXPECT_NEAR(static_cast<double>(out), 5.0, 1.0);
}

TEST(TreeCountingNetwork, PaperFig6dShape)
{
    Netlist nl;
    auto &net = nl.create<TreeCountingNetwork>("net", 4);
    EXPECT_EQ(net.numBalancers(), 3); // Fig. 6d: three balancers
    EXPECT_EQ(net.jjCount(), 3 * 60);
}

class TreeSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(TreeSweep, RandomCountsWithinDepthRounding)
{
    const int m = GetParam();
    Rng rng(400 + m);
    for (int trial = 0; trial < 5; ++trial) {
        std::vector<int> counts(static_cast<std::size_t>(m));
        int sum = 0;
        for (auto &c : counts) {
            c = static_cast<int>(rng.uniformInt(0, 8));
            sum += c;
        }
        const auto out = runTree(m, counts);
        EXPECT_LE(std::fabs(static_cast<double>(out) -
                            static_cast<double>(sum) / m),
                  std::log2(m))
            << "m=" << m;
    }
}

INSTANTIATE_TEST_SUITE_P(FanIns, TreeSweep, ::testing::Values(2, 4, 8, 16));

TEST(TreeCountingNetwork, SimultaneousArrivalsDoNotLosePulses)
{
    // All inputs pulse at the same instant: mergers would lose half of
    // them; balancers must not.
    const int m = 4;
    Netlist nl;
    auto &net = nl.create<TreeCountingNetwork>("net", m);
    PulseTrace out;
    net.out().connect(out.input());
    for (int i = 0; i < m; ++i) {
        auto &src = nl.create<PulseSource>("s" + std::to_string(i));
        src.out.connect(net.in(i));
        src.pulseAt(10 * kPicosecond);
    }
    nl.queue().run();
    // 4 simultaneous pulses -> exactly 1 at the output (4/4), not 0.
    EXPECT_EQ(out.count(), 1u);
}

} // namespace
} // namespace usfq
