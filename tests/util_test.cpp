/**
 * @file
 * Unit tests for src/util: time conversion, RNG determinism, fixed-point
 * arithmetic, tables, CSV, and statistics.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "util/args.hh"
#include "util/csv.hh"
#include "util/fixed_point.hh"
#include "util/logging.hh"
#include "util/random.hh"
#include "util/stats.hh"
#include "util/table.hh"
#include "util/types.hh"

namespace usfq
{
namespace
{

// --- types ---------------------------------------------------------------

TEST(Types, UnitConstants)
{
    EXPECT_EQ(kPicosecond, 1000);
    EXPECT_EQ(kNanosecond, 1000000);
    EXPECT_EQ(kMicrosecond, 1000000000);
}

TEST(Types, PsToTicksRoundTrip)
{
    EXPECT_EQ(psToTicks(9.0), 9 * kPicosecond);
    EXPECT_EQ(psToTicks(0.5), 500);
    EXPECT_DOUBLE_EQ(ticksToPs(12 * kPicosecond), 12.0);
    EXPECT_DOUBLE_EQ(ticksToNs(kNanosecond), 1.0);
    EXPECT_DOUBLE_EQ(ticksToSeconds(kMicrosecond), 1e-6);
}

TEST(Types, PsToTicksRounds)
{
    EXPECT_EQ(psToTicks(0.0004), 0);
    EXPECT_EQ(psToTicks(0.0006), 1);
}

// --- Rng ----------------------------------------------------------------

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 4);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanNearHalf)
{
    Rng rng(11);
    RunningStats s;
    for (int i = 0; i < 100000; ++i)
        s.add(rng.uniform());
    EXPECT_NEAR(s.mean(), 0.5, 0.01);
}

TEST(Rng, UniformIntCoversRangeInclusive)
{
    Rng rng(3);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        const auto v = rng.uniformInt(2, 5);
        EXPECT_GE(v, 2);
        EXPECT_LE(v, 5);
        saw_lo |= v == 2;
        saw_hi |= v == 5;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, BernoulliRate)
{
    Rng rng(5);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += rng.bernoulli(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, GaussianMoments)
{
    Rng rng(13);
    RunningStats s;
    for (int i = 0; i < 100000; ++i)
        s.add(rng.gaussian(2.0, 3.0));
    EXPECT_NEAR(s.mean(), 2.0, 0.05);
    EXPECT_NEAR(s.stddev(), 3.0, 0.05);
}

TEST(Rng, ReseedRestartsSequence)
{
    Rng rng(99);
    const auto first = rng.next();
    rng.next();
    rng.seed(99);
    EXPECT_EQ(rng.next(), first);
}

// --- FixedPoint --------------------------------------------------------

TEST(FixedPoint, QuantizeAndBack)
{
    const FixedPoint fp(0.5, 8);
    EXPECT_NEAR(fp.toDouble(), 0.5, fp.lsb());
}

TEST(FixedPoint, ZeroDefault)
{
    const FixedPoint fp(8);
    EXPECT_EQ(fp.raw(), 0);
    EXPECT_DOUBLE_EQ(fp.toDouble(), 0.0);
}

TEST(FixedPoint, SaturatesAtPlusOne)
{
    const FixedPoint fp(1.5, 8);
    EXPECT_EQ(fp.raw(), 127);
}

TEST(FixedPoint, SaturatesAtMinusOne)
{
    const FixedPoint fp(-2.0, 8);
    EXPECT_EQ(fp.raw(), -128);
    EXPECT_DOUBLE_EQ(fp.toDouble(), -1.0);
}

TEST(FixedPoint, AdditionSaturates)
{
    const FixedPoint a(0.75, 8), b(0.75, 8);
    EXPECT_EQ((a + b).raw(), 127);
}

TEST(FixedPoint, MultiplicationMatchesReal)
{
    const FixedPoint a(0.5, 12), b(-0.25, 12);
    EXPECT_NEAR((a * b).toDouble(), -0.125, a.lsb() * 2);
}

TEST(FixedPoint, MultiplyIdentityNearOne)
{
    const FixedPoint one = FixedPoint::maxValue(10);
    const FixedPoint x(0.375, 10);
    EXPECT_NEAR((one * x).toDouble(), 0.375, 2 * x.lsb());
}

TEST(FixedPoint, BitFlipSignBit)
{
    const FixedPoint x(0.25, 8);
    const FixedPoint y = x.withBitFlipped(7);
    EXPECT_NEAR(y.toDouble(), 0.25 - 1.0, 1e-9);
}

TEST(FixedPoint, BitFlipLsbSmall)
{
    const FixedPoint x(0.25, 8);
    const FixedPoint y = x.withBitFlipped(0);
    EXPECT_NEAR(std::fabs(y.toDouble() - x.toDouble()), x.lsb(), 1e-12);
}

TEST(FixedPoint, BitFlipIsInvolution)
{
    const FixedPoint x(-0.6, 12);
    for (int b = 0; b < 12; ++b)
        EXPECT_EQ(x.withBitFlipped(b).withBitFlipped(b).raw(), x.raw());
}

class FixedPointWidths : public ::testing::TestWithParam<int>
{
};

TEST_P(FixedPointWidths, QuantizationErrorBoundedByHalfLsb)
{
    const int bits = GetParam();
    Rng rng(1234);
    // Stay inside the representable range [-1, 1 - lsb]; values beyond
    // the positive maximum saturate and can err by up to one LSB.
    const double top = FixedPoint::maxValue(bits).toDouble();
    for (int i = 0; i < 200; ++i) {
        const double v = rng.uniform(-1.0, top);
        const FixedPoint fp(v, bits);
        EXPECT_LE(std::fabs(fp.toDouble() - v), fp.lsb() * 0.5 + 1e-12);
    }
}

TEST_P(FixedPointWidths, MultiplicationErrorBounded)
{
    const int bits = GetParam();
    Rng rng(77);
    for (int i = 0; i < 200; ++i) {
        const double a = rng.uniform(-0.9, 0.9);
        const double b = rng.uniform(-0.9, 0.9);
        const FixedPoint fa(a, bits), fb(b, bits);
        const double err = std::fabs((fa * fb).toDouble() - a * b);
        EXPECT_LE(err, 2.0 * fa.lsb());
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, FixedPointWidths,
                         ::testing::Values(4, 6, 8, 10, 12, 16));

// --- Table ---------------------------------------------------------------

TEST(Table, RendersHeadersAndRows)
{
    Table t("demo", {"a", "bb"});
    t.row().cell(1).cell(2.5);
    std::ostringstream os;
    t.print(os);
    const std::string s = os.str();
    EXPECT_NE(s.find("demo"), std::string::npos);
    EXPECT_NE(s.find("bb"), std::string::npos);
    EXPECT_NE(s.find("2.5"), std::string::npos);
    EXPECT_EQ(t.numRows(), 1u);
}

TEST(Table, FormatNumberRanges)
{
    EXPECT_EQ(formatNumber(0.0), "0");
    EXPECT_NE(formatNumber(1.23456e7).find('e'), std::string::npos);
    EXPECT_EQ(formatNumber(12.5), "12.5");
}

// --- CSV ----------------------------------------------------------------

TEST(Csv, WritesRowsToFile)
{
    const std::string path = ::testing::TempDir() + "/usfq_csv_test.csv";
    {
        CsvWriter w(path, {"x", "y"});
        ASSERT_TRUE(w.ok());
        w.writeRow(std::vector<double>{1.0, 2.0});
        w.writeRow({std::string("a,b"), std::string("q\"q")});
    }
    std::ifstream in(path);
    std::string line;
    std::getline(in, line);
    EXPECT_EQ(line, "x,y");
    std::getline(in, line);
    EXPECT_EQ(line, "1,2");
    std::getline(in, line);
    EXPECT_EQ(line, "\"a,b\",\"q\"\"q\"");
}

// --- stats ----------------------------------------------------------------

TEST(Stats, RunningStatsMoments)
{
    RunningStats s;
    for (double v : {1.0, 2.0, 3.0, 4.0})
        s.add(v);
    EXPECT_EQ(s.count(), 4u);
    EXPECT_DOUBLE_EQ(s.mean(), 2.5);
    EXPECT_NEAR(s.variance(), 5.0 / 3.0, 1e-12);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 4.0);
}

TEST(Stats, FitLineExact)
{
    const auto fit = fitLine({1, 2, 3, 4}, {3, 5, 7, 9});
    EXPECT_NEAR(fit.slope, 2.0, 1e-12);
    EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
    EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(Stats, FitLineNoisyR2)
{
    Rng rng(5);
    std::vector<double> xs, ys;
    for (int i = 0; i < 100; ++i) {
        xs.push_back(i);
        ys.push_back(3.0 * i + 10 + rng.gaussian(0, 5.0));
    }
    const auto fit = fitLine(xs, ys);
    EXPECT_NEAR(fit.slope, 3.0, 0.2);
    EXPECT_GT(fit.r2, 0.95);
}

TEST(Stats, Percentile)
{
    std::vector<double> v{1, 2, 3, 4, 5};
    EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(v, 50), 3.0);
    EXPECT_DOUBLE_EQ(percentile(v, 100), 5.0);
    EXPECT_DOUBLE_EQ(percentile(v, 25), 2.0);
}

TEST(Stats, MeanOfVector)
{
    EXPECT_DOUBLE_EQ(mean({2.0, 4.0}), 3.0);
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

// --- logging: pluggable fatal() ------------------------------------------

TEST(Logging, FatalDefaultModeExits)
{
    ASSERT_EQ(fatalMode(), FatalMode::Exit);
    EXPECT_EXIT(fatal("bad config: %d", 42),
                ::testing::ExitedWithCode(1), "bad config: 42");
}

TEST(Logging, FatalThrowModeRaisesFatalError)
{
    ScopedFatalThrow guard;
    try {
        fatal("rejected: %s", "reason");
        FAIL() << "fatal() returned";
    } catch (const FatalError &e) {
        EXPECT_STREQ(e.what(), "rejected: reason");
    }
}

TEST(Logging, ScopedFatalThrowRestoresPreviousMode)
{
    ASSERT_EQ(fatalMode(), FatalMode::Exit);
    {
        ScopedFatalThrow guard;
        EXPECT_EQ(fatalMode(), FatalMode::Throw);
        {
            ScopedFatalThrow nested;
            EXPECT_EQ(fatalMode(), FatalMode::Throw);
        }
        EXPECT_EQ(fatalMode(), FatalMode::Throw);
    }
    EXPECT_EQ(fatalMode(), FatalMode::Exit);
}

TEST(Logging, FatalCallbackSeesMessageInThrowMode)
{
    static std::string seen;
    seen.clear();
    setFatalCallback(
        [](const char *message, void *) { seen = message; });
    ScopedFatalThrow guard;
    EXPECT_THROW(fatal("observed %d", 7), FatalError);
    setFatalCallback(nullptr);
    EXPECT_EQ(seen, "observed 7");
}

// --- args ----------------------------------------------------------------

/** Build a mutable argv from literals; keeps the strings alive. */
struct ArgvFixture
{
    explicit ArgvFixture(std::vector<std::string> args)
        : storage(std::move(args))
    {
        for (std::string &s : storage)
            argv.push_back(s.data());
        argv.push_back(nullptr);
        argc = static_cast<int>(storage.size());
    }

    std::vector<std::string> storage;
    std::vector<char *> argv;
    int argc;
};

TEST(Args, IsFlagOnlyMatchesDoubleDash)
{
    EXPECT_TRUE(args::isFlag("--json"));
    EXPECT_FALSE(args::isFlag("-j"));
    EXPECT_FALSE(args::isFlag("out.json"));
    EXPECT_FALSE(args::isFlag(""));
}

TEST(Args, ExtractFlagSeparateValueCompactsArgv)
{
    ArgvFixture fx({"bench", "--json", "out.json", "positional"});
    EXPECT_EQ(args::extractFlag(&fx.argc, fx.argv.data(), "json"),
              "out.json");
    ASSERT_EQ(fx.argc, 2);
    EXPECT_STREQ(fx.argv[0], "bench");
    EXPECT_STREQ(fx.argv[1], "positional");
    EXPECT_EQ(fx.argv[2], nullptr); // null-terminated after compaction
}

TEST(Args, ExtractFlagEqualsForm)
{
    ArgvFixture fx({"bench", "--json=artifacts/x.json"});
    EXPECT_EQ(args::extractFlag(&fx.argc, fx.argv.data(), "json"),
              "artifacts/x.json");
    EXPECT_EQ(fx.argc, 1);
}

TEST(Args, ExtractFlagAbsentReturnsEmptyAndLeavesArgv)
{
    ArgvFixture fx({"bench", "--backend", "both"});
    EXPECT_EQ(args::extractFlag(&fx.argc, fx.argv.data(), "json"), "");
    EXPECT_EQ(fx.argc, 3);
}

TEST(Args, ExtractFlagLastOccurrenceWins)
{
    ArgvFixture fx({"bench", "--json", "a.json", "--json", "b.json"});
    EXPECT_EQ(args::extractFlag(&fx.argc, fx.argv.data(), "json"),
              "b.json");
    EXPECT_EQ(fx.argc, 1);
}

TEST(Args, ExtractFlagMissingValueIsFatal)
{
    // The latent bench bug this layer fixed: "--json" at the end of the
    // line used to silently produce an empty path.
    ArgvFixture fx({"bench", "--json"});
    EXPECT_EXIT(args::extractFlag(&fx.argc, fx.argv.data(), "json"),
                ::testing::ExitedWithCode(1), "--json");
}

TEST(Args, ExtractFlagFlagAsValueIsFatal)
{
    // ...and "--json --foo" used to eat "--foo" as the output path.
    ArgvFixture fx({"bench", "--json", "--foo"});
    EXPECT_EXIT(args::extractFlag(&fx.argc, fx.argv.data(), "json"),
                ::testing::ExitedWithCode(1), "--foo");
}

TEST(Args, RejectUnknownFlagsPassesPositionalsAndAllowed)
{
    ArgvFixture fx({"bench", "positional", "--benchmark_filter=x"});
    args::rejectUnknownFlags(fx.argc, fx.argv.data(), {"--benchmark_"});
    SUCCEED();
}

TEST(Args, RejectUnknownFlagsIsFatalOnTypo)
{
    ArgvFixture fx({"bench", "--jsn", "out.json"});
    EXPECT_EXIT(args::rejectUnknownFlags(fx.argc, fx.argv.data()),
                ::testing::ExitedWithCode(1), "--jsn");
}

} // namespace
} // namespace usfq
