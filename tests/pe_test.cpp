/**
 * @file
 * Pulse-level tests of the U-SFQ processing element (paper §5.2):
 * multiply, add, multiply-accumulate, the 126-JJ area claim, and
 * multi-epoch operation.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/pe.hh"
#include "sim/trace.hh"
#include "sfq/sources.hh"
#include "util/random.hh"

namespace usfq
{
namespace
{

/** Slot wide enough for the balancer dead time and input skews. */
constexpr Tick kSlot = 30 * kPicosecond;
/** RL input offset past the epoch marker (clears the splitter path). */
constexpr Tick kRlOff = 5 * kPicosecond;

struct PeHarness
{
    EpochConfig cfg;
    Netlist nl;
    ProcessingElement *pe;
    PulseSource *srcE;
    PulseSource *src1;
    PulseSource *src2;
    PulseSource *src3;
    PulseTrace out;

    explicit PeHarness(int bits)
        : cfg(bits, kSlot)
    {
        pe = &nl.create<ProcessingElement>("pe", cfg);
        srcE = &nl.create<PulseSource>("e");
        src1 = &nl.create<PulseSource>("in1");
        src2 = &nl.create<PulseSource>("in2");
        src3 = &nl.create<PulseSource>("in3");
        srcE->out.connect(pe->epoch());
        src1->out.connect(pe->in1());
        src2->out.connect(pe->in2());
        src3->out.connect(pe->in3());
        pe->out().connect(out.input());
    }

    /** Drive one epoch starting at @p t0 with the given operands. */
    void
    driveEpoch(Tick t0, int in1_id, int in2_count, int in3_count)
    {
        srcE->pulseAt(t0);
        src1->pulseAt(t0 + kRlOff + cfg.rlTime(in1_id));
        for (Tick t : cfg.streamTimes(in2_count, t0))
            src2->pulseAt(t);
        for (Tick t : cfg.streamTimes(in3_count, t0))
            src3->pulseAt(t);
    }

    /**
     * Run one epoch + conversion; return the RL slot of the result
     * (the out pulse after the next epoch marker).
     */
    int
    runOne(int in1_id, int in2_count, int in3_count)
    {
        driveEpoch(0, in1_id, in2_count, in3_count);
        // Next epoch marker triggers the conversion.
        srcE->pulseAt(cfg.duration());
        nl.queue().run();
        // Ignore the spurious slot-0 pulse of the first marker.
        for (Tick t : out.times()) {
            if (t > cfg.duration())
                return cfg.rlSlotOf(t - cfg.duration() -
                                    30 * kPicosecond -
                                    3 * kPicosecond -
                                    EpochConfig::kRlPulseOffset);
        }
        return -1;
    }
};

TEST(ProcessingElement, AreaIs126JJs)
{
    // Paper Section 5.2: "The number of JJs for the U-SFQ PE is 126 and
    // does not increase with the number of bits."
    Netlist nl;
    auto &pe = nl.create<ProcessingElement>("pe", EpochConfig(8));
    EXPECT_EQ(pe.jjCount(), 126);
    auto &pe16 = nl.create<ProcessingElement>("pe16", EpochConfig(16));
    EXPECT_EQ(pe16.jjCount(), 126);
}

TEST(ProcessingElement, PureMultiplication)
{
    // In3 = 0: out = (In1*In2)/2.
    PeHarness h(4);
    const int slot = h.runOne(8, 16, 0); // 0.5 * 1.0 / 2 = 0.25 -> 4
    EXPECT_EQ(slot, ProcessingElement::expectedSlot(h.cfg, 8, 16, 0));
    EXPECT_EQ(slot, 4);
}

TEST(ProcessingElement, PureAddition)
{
    // In1 = 1 (RL id = N): the multiplier passes In2 whole, so
    // out = (In2 + In3)/2 (paper: "addition among In2 and In3 ...
    // setting In1 to 1").
    PeHarness h(4);
    const int slot = h.runOne(16, 6, 10);
    EXPECT_EQ(slot, 8);
}

TEST(ProcessingElement, MultiplyAccumulate)
{
    PeHarness h(4);
    // (0.75 * 0.5 + 0.25) / 2 = 0.3125 -> slot 5 of 16.
    const int slot = h.runOne(8, 12, 4);
    EXPECT_EQ(slot, ProcessingElement::expectedSlot(h.cfg, 8, 12, 4));
    EXPECT_NEAR(h.cfg.rlUnipolar(slot), 0.3125, 1.5 / h.cfg.nmax());
}

TEST(ProcessingElement, ZeroOperandsGiveZero)
{
    PeHarness h(4);
    EXPECT_EQ(h.runOne(0, 0, 0), 0);
}

class PeSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(PeSweep, MatchesFunctionalModel)
{
    const int bits = GetParam();
    Rng rng(500 + bits);
    for (int trial = 0; trial < 12; ++trial) {
        PeHarness h(bits);
        const int nmax = h.cfg.nmax();
        const int id = static_cast<int>(rng.uniformInt(0, nmax));
        const int n2 = static_cast<int>(rng.uniformInt(0, nmax));
        const int n3 = static_cast<int>(rng.uniformInt(0, nmax));
        const int expect =
            ProcessingElement::expectedSlot(h.cfg, id, n2, n3);
        const int got = h.runOne(id, n2, n3);
        EXPECT_NEAR(got, expect, 1) << "id=" << id << " n2=" << n2
                                    << " n3=" << n3;
    }
}

INSTANTIATE_TEST_SUITE_P(Resolutions, PeSweep,
                         ::testing::Values(3, 4, 5, 6));

TEST(ProcessingElement, MultiEpochPipeline)
{
    // Three epochs streamed back to back; each result appears one
    // epoch after its operands.
    // Streaming epochs must keep RL ids below N_max: an id = N_max
    // pulse lands on the next epoch's boundary and races its set
    // pulse (the same reason the coefficient bank tops out at
    // (2^B-1)/2^B).
    PeHarness h(4);
    const Tick T = h.cfg.duration();
    h.driveEpoch(0, 15, 8, 0);      // ~0.5 / 2 -> 4
    h.driveEpoch(T, 15, 16, 0);     // ~1.0 / 2 -> 8
    h.driveEpoch(2 * T, 15, 4, 0);  // ~0.25 / 2 -> 2
    h.srcE->pulseAt(3 * T);
    h.nl.queue().run();

    // One conversion per marker; markers at 0, T, 2T, 3T -> 4 outputs
    // (the first is the spurious zero).
    ASSERT_EQ(h.out.count(), 4u);
    auto slot_of = [&](std::size_t i, Tick marker) {
        return h.cfg.rlSlotOf(h.out.times()[i] - marker -
                              33 * kPicosecond -
                              EpochConfig::kRlPulseOffset);
    };
    // The balancer's toggle state carries across epochs (an odd pulse
    // count leaves it flipped), so streamed results can be one pulse
    // below the fresh-state model -- the paper's +/-0.5 rounding.
    EXPECT_EQ(slot_of(1, T), 4);
    EXPECT_NEAR(slot_of(2, 2 * T), 8, 1);
    EXPECT_NEAR(slot_of(3, 3 * T), 2, 1);
}

TEST(ProcessingElement, ThroughputIndependentOfResult)
{
    // The epoch cadence is fixed: results always appear at marker
    // time regardless of operand values (wave-pipelined unary).
    PeHarness h(4);
    const Tick T = h.cfg.duration();
    h.driveEpoch(0, 16, 16, 16);
    h.srcE->pulseAt(T);
    h.nl.queue().run();
    ASSERT_GE(h.out.count(), 2u);
    EXPECT_GT(h.out.times()[1], T);
    EXPECT_LT(h.out.times()[1], 2 * T + T);
}

} // namespace
} // namespace usfq
