// Lane-level differential fuzzer for the batched functional engine
// (src/func/batch.hh): every batched component evaluation must be
// bit-identical, lane by lane, to the scalar functional model run on
// that lane's operands alone -- at batch widths 1, 3, 8 and 64, and at
// 1 and N sweep threads.  Batching is a performance knob, never a
// semantics knob (docs/functional.md, "Batched evaluation").
//
// Each component class runs >= 1000 seeded cases per (bits, width,
// threads) grid point; operands derive only from the per-item sweep
// seed, so the scalar reference and every batched run see the same
// corpus no matter how lanes are grouped.

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "func/batch.hh"
#include "func/components.hh"
#include "sim/netlist.hh"
#include "sim/sweep.hh"
#include "util/random.hh"

using namespace usfq;

namespace
{

constexpr std::size_t kItems = 1024; // cases per class per grid point
constexpr std::uint64_t kBaseSeed = 0xba7c4edULL;

const int kWidths[] = {1, 3, 8, 64};
const int kThreadCounts[] = {1, 4};

// bits=3: nmax=8, a partial tail word; bits=7: nmax=128, two words
// per lane.  Together they cover tail masking and multi-word lanes.
const int kBitGrid[] = {3, 7};

/** Order-sensitive hash of a stream's packed words: equal hashes over
 *  this corpus ==> bit-identical streams. */
std::uint64_t
streamHash(const func::PulseStream &s)
{
    std::uint64_t h = 0x9e3779b97f4a7c15ULL;
    for (std::size_t w = 0; w < s.wordCountOf(); ++w) {
        h ^= s.words()[w] + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
        h *= 0xbf58476d1ce4e5b9ULL;
    }
    return h;
}

/**
 * Run one component class through the full grid.  @p gen draws a case
 * from a per-item Rng; @p scalar evaluates one case with the scalar
 * functional model; @p batched evaluates a whole lane group with the
 * batched engine and returns one int per lane (a count, a slot id, or
 * a stream hash).
 */
template <typename GenFn, typename ScalarFn, typename BatchFn>
void
checkClass(const std::string &what, GenFn gen, ScalarFn scalar,
           BatchFn batched)
{
    for (int bits : kBitGrid) {
        const EpochConfig cfg(bits);
        // Scalar reference: item i alone, from its own sweep seed.
        std::vector<int> ref(kItems);
        for (std::size_t i = 0; i < kItems; ++i) {
            Rng rng(shardSeed(kBaseSeed, i));
            ref[i] = scalar(cfg, gen(cfg, rng));
        }
        for (int width : kWidths) {
            for (int threads : kThreadCounts) {
                SweepOptions opt;
                opt.threads = threads;
                opt.baseSeed = kBaseSeed;
                opt.batch.width = width;
                const auto got = runBatchedSweep(
                    kItems,
                    [&](const LaneGroupContext &ctx) {
                        using CaseT = decltype(gen(
                            cfg, std::declval<Rng &>()));
                        std::vector<CaseT> cases;
                        cases.reserve(
                            static_cast<std::size_t>(ctx.lanes));
                        for (int b = 0; b < ctx.lanes; ++b) {
                            Rng rng(ctx.seeds[static_cast<std::size_t>(
                                b)]);
                            cases.push_back(gen(cfg, rng));
                        }
                        return batched(cfg, cases);
                    },
                    opt);
                ASSERT_EQ(got.size(), kItems) << what;
                for (std::size_t i = 0; i < kItems; ++i)
                    ASSERT_EQ(got[i], ref[i])
                        << what << " bits=" << bits
                        << " width=" << width << " threads=" << threads
                        << " item=" << i;
            }
        }
    }
}

// --- per-class operand shapes ------------------------------------------------

struct MultCase
{
    int n;
    int id;
};

MultCase
multCase(const EpochConfig &cfg, Rng &rng)
{
    return {static_cast<int>(rng.uniformInt(0, cfg.nmax())),
            static_cast<int>(rng.uniformInt(0, cfg.nmax()))};
}

struct TripleCase
{
    int a;
    int b;
    int c;
};

TripleCase
tripleCase(const EpochConfig &cfg, Rng &rng)
{
    return {static_cast<int>(rng.uniformInt(0, cfg.nmax())),
            static_cast<int>(rng.uniformInt(0, cfg.nmax())),
            static_cast<int>(rng.uniformInt(0, cfg.nmax()))};
}

template <std::size_t N>
struct VecCase
{
    std::array<int, N> v;
};

template <std::size_t N>
VecCase<N>
vecCase(const EpochConfig &cfg, Rng &rng)
{
    VecCase<N> c;
    for (auto &x : c.v)
        x = static_cast<int>(rng.uniformInt(0, cfg.nmax()));
    return c;
}

/** Flatten cases operand-major: operand k's lane values contiguous. */
template <std::size_t N>
std::vector<int>
operandMajor(const std::vector<VecCase<N>> &cases)
{
    const std::size_t lanes = cases.size();
    std::vector<int> flat(N * lanes);
    for (std::size_t k = 0; k < N; ++k)
        for (std::size_t b = 0; b < lanes; ++b)
            flat[k * lanes + b] = cases[b].v[k];
    return flat;
}

} // namespace

// --- multipliers -------------------------------------------------------------

TEST(BatchDifferential, UnipolarMultiplierCounts)
{
    checkClass(
        "unipolar-mult-count", multCase,
        [](const EpochConfig &cfg, const MultCase &c) {
            Netlist nl;
            return nl.create<func::UnipolarMultiplier>("m").evaluate(
                cfg, c.n, c.id);
        },
        [](const EpochConfig &cfg, const std::vector<MultCase> &cs) {
            Netlist nl;
            auto &m = nl.create<func::UnipolarMultiplier>("m");
            std::vector<int> ns, ids;
            for (const MultCase &c : cs) {
                ns.push_back(c.n);
                ids.push_back(c.id);
            }
            std::vector<int> out(cs.size());
            m.evaluateBatch(cfg, ns, ids, out);
            return out;
        });
}

TEST(BatchDifferential, UnipolarMultiplierStreams)
{
    checkClass(
        "unipolar-mult-stream", multCase,
        [](const EpochConfig &cfg, const MultCase &c) {
            Netlist nl;
            auto &m = nl.create<func::UnipolarMultiplier>("m");
            return static_cast<int>(streamHash(m.evaluateStream(
                func::PulseStream::euclidean(cfg, c.n), c.id)) >> 33);
        },
        [](const EpochConfig &cfg, const std::vector<MultCase> &cs) {
            Netlist nl;
            auto &m = nl.create<func::UnipolarMultiplier>("m");
            WordArena arena;
            std::vector<int> ns, ids;
            for (const MultCase &c : cs) {
                ns.push_back(c.n);
                ids.push_back(c.id);
            }
            const auto in =
                func::BatchStream::euclidean(cfg, ns, arena);
            const auto out = m.evaluateStreamBatch(in, ids, arena);
            std::vector<int> hashes;
            for (int b = 0; b < out.lanes(); ++b)
                hashes.push_back(static_cast<int>(
                    streamHash(out.extractLane(b)) >> 33));
            return hashes;
        });
}

TEST(BatchDifferential, BipolarMultiplierCounts)
{
    checkClass(
        "bipolar-mult-count", multCase,
        [](const EpochConfig &cfg, const MultCase &c) {
            Netlist nl;
            return nl.create<func::BipolarMultiplier>("m").evaluate(
                cfg, c.n, c.id);
        },
        [](const EpochConfig &cfg, const std::vector<MultCase> &cs) {
            Netlist nl;
            auto &m = nl.create<func::BipolarMultiplier>("m");
            std::vector<int> ns, ids;
            for (const MultCase &c : cs) {
                ns.push_back(c.n);
                ids.push_back(c.id);
            }
            std::vector<int> out(cs.size());
            m.evaluateBatch(cfg, ns, ids, out);
            return out;
        });
}

TEST(BatchDifferential, BipolarMultiplierStreams)
{
    checkClass(
        "bipolar-mult-stream", multCase,
        [](const EpochConfig &cfg, const MultCase &c) {
            Netlist nl;
            auto &m = nl.create<func::BipolarMultiplier>("m");
            return static_cast<int>(streamHash(m.evaluateStream(
                func::PulseStream::euclidean(cfg, c.n), c.id)) >> 33);
        },
        [](const EpochConfig &cfg, const std::vector<MultCase> &cs) {
            Netlist nl;
            auto &m = nl.create<func::BipolarMultiplier>("m");
            WordArena arena;
            std::vector<int> ns, ids;
            for (const MultCase &c : cs) {
                ns.push_back(c.n);
                ids.push_back(c.id);
            }
            const auto in =
                func::BatchStream::euclidean(cfg, ns, arena);
            const auto out = m.evaluateStreamBatch(in, ids, arena);
            std::vector<int> hashes;
            for (int b = 0; b < out.lanes(); ++b)
                hashes.push_back(static_cast<int>(
                    streamHash(out.extractLane(b)) >> 33));
            return hashes;
        });
}

// --- adders / counting networks ----------------------------------------------

TEST(BatchDifferential, MergerTreeAdderCounts)
{
    checkClass(
        "merger-tree", vecCase<4>,
        [](const EpochConfig &cfg, const VecCase<4> &c) {
            Netlist nl;
            auto &add = nl.create<func::MergerTreeAdder>("add", 4);
            return add.evaluate(
                cfg, std::vector<int>(c.v.begin(), c.v.end()));
        },
        [](const EpochConfig &cfg, const std::vector<VecCase<4>> &cs) {
            Netlist nl;
            auto &add = nl.create<func::MergerTreeAdder>("add", 4);
            WordArena arena;
            std::vector<int> out(cs.size());
            add.evaluateBatch(cfg, operandMajor(cs), out, arena);
            return out;
        });
}

TEST(BatchDifferential, TreeCountingNetworkCounts)
{
    checkClass(
        "counting-tree", vecCase<8>,
        [](const EpochConfig &cfg, const VecCase<8> &c) {
            (void)cfg;
            Netlist nl;
            auto &net = nl.create<func::TreeCountingNetwork>("net", 8);
            return net.evaluate(
                std::vector<int>(c.v.begin(), c.v.end()));
        },
        [](const EpochConfig &cfg, const std::vector<VecCase<8>> &cs) {
            (void)cfg;
            Netlist nl;
            auto &net = nl.create<func::TreeCountingNetwork>("net", 8);
            WordArena arena;
            std::vector<int> out(cs.size());
            net.evaluateBatch(operandMajor(cs), out, arena);
            return out;
        });
}

// --- race logic --------------------------------------------------------------

TEST(BatchDifferential, FirstAndLastArrival)
{
    checkClass(
        "first-arrival", vecCase<3>,
        [](const EpochConfig &cfg, const VecCase<3> &c) {
            (void)cfg;
            Netlist nl;
            return nl.create<func::FirstArrival>("fa").evaluate(
                std::vector<int>(c.v.begin(), c.v.end()));
        },
        [](const EpochConfig &cfg, const std::vector<VecCase<3>> &cs) {
            (void)cfg;
            Netlist nl;
            auto &fa = nl.create<func::FirstArrival>("fa");
            std::vector<int> out(cs.size());
            fa.evaluateBatch(operandMajor(cs), 3, out);
            return out;
        });
    checkClass(
        "last-arrival", vecCase<3>,
        [](const EpochConfig &cfg, const VecCase<3> &c) {
            (void)cfg;
            Netlist nl;
            return nl.create<func::LastArrival>("la").evaluate(
                std::vector<int>(c.v.begin(), c.v.end()));
        },
        [](const EpochConfig &cfg, const std::vector<VecCase<3>> &cs) {
            (void)cfg;
            Netlist nl;
            auto &la = nl.create<func::LastArrival>("la");
            std::vector<int> out(cs.size());
            la.evaluateBatch(operandMajor(cs), 3, out);
            return out;
        });
}

// --- PE / DPU / FIR ----------------------------------------------------------

TEST(BatchDifferential, ProcessingElementSlots)
{
    checkClass(
        "processing-element", tripleCase,
        [](const EpochConfig &cfg, const TripleCase &c) {
            Netlist nl;
            return nl.create<func::ProcessingElement>("pe", cfg)
                .evaluate(c.a, c.b, c.c);
        },
        [](const EpochConfig &cfg, const std::vector<TripleCase> &cs) {
            Netlist nl;
            auto &pe = nl.create<func::ProcessingElement>("pe", cfg);
            WordArena arena;
            std::vector<int> in1, in2, in3;
            for (const TripleCase &c : cs) {
                in1.push_back(c.a);
                in2.push_back(c.b);
                in3.push_back(c.c);
            }
            std::vector<int> out(cs.size());
            pe.evaluateBatch(in1, in2, in3, out, arena);
            return out;
        });
}

namespace
{

template <DpuMode Mode>
void
checkDpuClass(const std::string &what)
{
    // 6 elements pads to 8 internally, covering the padded tree path.
    checkClass(
        what, vecCase<12>,
        [](const EpochConfig &cfg, const VecCase<12> &c) {
            Netlist nl;
            auto &dpu =
                nl.create<func::DotProductUnit>("dpu", 6, Mode);
            return dpu.evaluate(
                cfg, std::vector<int>(c.v.begin(), c.v.begin() + 6),
                std::vector<int>(c.v.begin() + 6, c.v.end()));
        },
        [](const EpochConfig &cfg, const std::vector<VecCase<12>> &cs) {
            Netlist nl;
            auto &dpu =
                nl.create<func::DotProductUnit>("dpu", 6, Mode);
            WordArena arena;
            const std::size_t lanes = cs.size();
            std::vector<int> counts(6 * lanes), ids(6 * lanes);
            for (std::size_t k = 0; k < 6; ++k)
                for (std::size_t b = 0; b < lanes; ++b) {
                    counts[k * lanes + b] = cs[b].v[k];
                    ids[k * lanes + b] = cs[b].v[k + 6];
                }
            std::vector<int> out(lanes);
            dpu.evaluateBatch(cfg, counts, ids, out, arena);
            return out;
        });
}

} // namespace

TEST(BatchDifferential, DotProductUnitUnipolar)
{
    checkDpuClass<DpuMode::Unipolar>("dpu-unipolar");
}

TEST(BatchDifferential, DotProductUnitBipolar)
{
    checkDpuClass<DpuMode::Bipolar>("dpu-bipolar");
}

TEST(BatchDifferential, UsfqFirStepCounts)
{
    // Coefficients are component state shared by every lane, so they
    // are fixed per corpus; only the sample windows vary per item.
    for (int bits : {4, 6}) {
        UsfqFirConfig fc;
        fc.taps = 6;
        fc.bits = bits;
        fc.mode = DpuMode::Bipolar;
        const auto program = [&](func::UsfqFir &fir) {
            for (int k = 0; k < fc.taps; ++k)
                fir.setCoefficient(k, (k % 2 ? -0.8 : 0.7) /
                                          static_cast<double>(k + 1));
        };
        const EpochConfig cfg(bits);
        std::vector<int> ref(kItems);
        for (std::size_t i = 0; i < kItems; ++i) {
            Rng rng(shardSeed(kBaseSeed, i));
            const auto c = vecCase<6>(cfg, rng);
            Netlist nl;
            auto &fir = nl.create<func::UsfqFir>("fir", fc);
            program(fir);
            ref[i] = fir.stepCount(
                std::vector<int>(c.v.begin(), c.v.end()));
        }
        for (int width : kWidths) {
            SweepOptions opt;
            opt.baseSeed = kBaseSeed;
            opt.batch.width = width;
            const auto got = runBatchedSweep(
                kItems,
                [&](const LaneGroupContext &ctx) {
                    std::vector<VecCase<6>> cases;
                    for (int b = 0; b < ctx.lanes; ++b) {
                        Rng rng(
                            ctx.seeds[static_cast<std::size_t>(b)]);
                        cases.push_back(vecCase<6>(cfg, rng));
                    }
                    Netlist nl;
                    auto &fir = nl.create<func::UsfqFir>("fir", fc);
                    program(fir);
                    WordArena arena;
                    std::vector<int> out(cases.size());
                    fir.stepCountBatch(operandMajor(cases), out,
                                       arena);
                    return out;
                },
                opt);
            for (std::size_t i = 0; i < kItems; ++i)
                ASSERT_EQ(got[i], ref[i])
                    << "fir bits=" << bits << " width=" << width
                    << " item=" << i;
        }
    }
}

// --- stats / ledger parity ---------------------------------------------------

TEST(BatchDifferential, BatchedSwitchStatsMatchScalarRuns)
{
    const EpochConfig cfg(5);
    constexpr int kLanes = 64;
    Rng rng(0xd1f2u);
    std::vector<int> ns, ids;
    for (int b = 0; b < kLanes; ++b) {
        ns.push_back(static_cast<int>(rng.uniformInt(0, cfg.nmax())));
        ids.push_back(static_cast<int>(rng.uniformInt(0, cfg.nmax())));
    }
    Netlist scalarNl;
    auto &sm = scalarNl.create<func::UnipolarMultiplier>("m");
    for (int b = 0; b < kLanes; ++b)
        sm.evaluate(cfg, ns[static_cast<std::size_t>(b)],
                    ids[static_cast<std::size_t>(b)]);
    Netlist batchNl;
    auto &bm = batchNl.create<func::UnipolarMultiplier>("m");
    std::vector<int> out(kLanes);
    bm.evaluateBatch(cfg, ns, ids, out);
    EXPECT_EQ(bm.localSwitches(), sm.localSwitches());
    EXPECT_EQ(batchNl.totalSwitches(), scalarNl.totalSwitches());
}

TEST(BatchDifferential, BatchedCollisionLedgerMatchesScalarRuns)
{
    const EpochConfig cfg(5);
    constexpr std::size_t kLanes = 48;
    Rng rng(0xadd5u);
    std::vector<VecCase<4>> cases;
    for (std::size_t b = 0; b < kLanes; ++b)
        cases.push_back(vecCase<4>(cfg, rng));
    Netlist scalarNl;
    auto &sa = scalarNl.create<func::MergerTreeAdder>("add", 4);
    for (const auto &c : cases)
        sa.evaluate(cfg, std::vector<int>(c.v.begin(), c.v.end()));
    Netlist batchNl;
    auto &ba = batchNl.create<func::MergerTreeAdder>("add", 4);
    WordArena arena;
    std::vector<int> out(kLanes);
    ba.evaluateBatch(cfg, operandMajor(cases), out, arena);
    EXPECT_EQ(ba.collisions(), sa.collisions());
    EXPECT_EQ(ba.localSwitches(), sa.localSwitches());
}
