/**
 * @file
 * Tests of the Table 2 dataset, its fits, the binary architecture
 * models, the fixed-point FIR baseline, and the power metrics.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "baseline/binary_models.hh"
#include "baseline/fixed_point_fir.hh"
#include "dsp/fir_design.hh"
#include "dsp/signal.hh"
#include "dsp/snr.hh"
#include "metrics/power.hh"
#include "metrics/throughput.hh"
#include "soa/table2.hh"

namespace usfq
{
namespace
{

// --- Table 2 -------------------------------------------------------------------

TEST(Table2, HasTenPublishedDesigns)
{
    EXPECT_EQ(soa::table2().size(), 10u);
    EXPECT_EQ(soa::entries(soa::Unit::Adder).size(), 5u);
    EXPECT_EQ(soa::entries(soa::Unit::Multiplier).size(), 5u);
}

TEST(Table2, KeyEntriesMatchPaper)
{
    const auto &bp = soa::bitParallelMultiplier8();
    EXPECT_EQ(bp.bits, 8);
    EXPECT_EQ(bp.jjCount, 17000);
    EXPECT_NEAR(bp.latencyPs, 333.0, 1.0); // 48 GHz pipeline [37]
    const auto &add = soa::bitParallelAdder4();
    EXPECT_EQ(add.jjCount, 931);
}

TEST(Table2, AreaFitsGrowWithBits)
{
    const auto mult = soa::areaFit(soa::Unit::Multiplier);
    const auto add = soa::areaFit(soa::Unit::Adder);
    EXPECT_GT(mult.slope, 300.0);
    EXPECT_GT(add.slope, 500.0);
    // The fits should pass near the published points.
    EXPECT_NEAR(mult(16), 9232, 4000);
    EXPECT_NEAR(add(16), 13000, 5000);
}

TEST(Table2, LatencyFitsReasonable)
{
    const auto mult = soa::latencyFit(soa::Unit::Multiplier);
    EXPECT_NEAR(mult(8), 447.0, 1.0); // single WP point
    const auto add = soa::latencyFit(soa::Unit::Adder);
    EXPECT_GT(add(8), 100.0);
    EXPECT_LT(add(16), 1000.0);
}

TEST(Table2, ArchNames)
{
    EXPECT_STREQ(soa::archName(soa::Arch::BitParallel), "BP");
    EXPECT_STREQ(soa::archName(soa::Arch::WavePipelined), "WP");
    EXPECT_STREQ(soa::archName(soa::Arch::SystolicArray), "SA");
}

// --- binary unit models ------------------------------------------------------------

TEST(BinaryModels, UnitsScaleWithBits)
{
    using namespace baseline;
    EXPECT_LT(wpMultiplier(4).areaJJ, wpMultiplier(8).areaJJ);
    EXPECT_LT(wpMultiplier(8).areaJJ, wpMultiplier(16).areaJJ);
    EXPECT_LT(wpAdder(8).latencyPs, wpAdder(16).latencyPs);
    EXPECT_NEAR(bpMultiplier(8).areaJJ, 17000.0, 1.0);
}

TEST(BinaryModels, PaperPeArea)
{
    // Paper Section 5.2: an 8-bit binary PE requires 9k-17k JJs.
    const baseline::BinaryPe pe{8};
    EXPECT_GT(pe.areaJJ(), 9000.0);
    EXPECT_LT(pe.areaJJ(), 17500.0);
}

TEST(BinaryModels, FirLatencyCrossoverCalibration)
{
    // 32 taps, 8 bits: the unary FIR (2^B * B * 20 ps = 41 ns) should
    // save roughly half the binary latency (paper: 56%).
    const baseline::BinaryFir fir{32, 8};
    const double unary_ns = std::ldexp(1.0, 8) * 8 * 20e-3;
    const double saving = 1.0 - unary_ns / (fir.latencyPs() * 1e-3);
    EXPECT_GT(saving, 0.40);
    EXPECT_LT(saving, 0.70);
}

TEST(BinaryModels, FirCrossoversMatchPaper)
{
    // Unary latency advantage below ~9 bits at 32 taps and ~12 bits at
    // 256 taps (paper Section 5.4.2).
    auto unary_ps = [](int bits) {
        return std::ldexp(1.0, bits) * bits * 20.0;
    };
    EXPECT_LT(unary_ps(8), (baseline::BinaryFir{32, 8}.latencyPs()));
    EXPECT_GT(unary_ps(10), (baseline::BinaryFir{32, 10}.latencyPs()));
    EXPECT_LT(unary_ps(11), (baseline::BinaryFir{256, 11}.latencyPs()));
    EXPECT_GT(unary_ps(13), (baseline::BinaryFir{256, 13}.latencyPs()));
}

TEST(BinaryModels, BitParallelFirVerdicts)
{
    // Paper: the U-SFQ FIR beats BP at 256 taps but not at 32 taps
    // (8-bit class resolutions).
    auto unary_ps = [](int bits) {
        return std::ldexp(1.0, bits) * bits * 20.0;
    };
    const baseline::BinaryFir bp32{32, 8, baseline::BinaryArch::BitParallel};
    const baseline::BinaryFir bp256{256, 8,
                                    baseline::BinaryArch::BitParallel};
    EXPECT_LT(bp32.latencyPs(), unary_ps(8));  // BP wins at 32 taps
    EXPECT_GT(bp256.latencyPs(), unary_ps(8)); // unary wins at 256
}

TEST(BinaryModels, DpuAreaGrowsWithLengthAndBits)
{
    using baseline::BinaryDpu;
    EXPECT_LT((BinaryDpu{32, 8}.areaJJ()), (BinaryDpu{128, 8}.areaJJ()));
    EXPECT_LT((BinaryDpu{32, 8}.areaJJ()), (BinaryDpu{32, 16}.areaJJ()));
}

TEST(BinaryModels, ThroughputConsistentWithLatency)
{
    const baseline::BinaryFir fir{64, 8};
    EXPECT_NEAR(fir.throughputOps() * fir.latencyPs() * 1e-12, 64.0,
                1e-6);
    EXPECT_GT(fir.efficiencyOpsPerJJ(), 0.0);
}

// --- fixed-point FIR baseline --------------------------------------------------------

TEST(FixedPointFir, MatchesReferenceAtHighResolution)
{
    const double fs = 20000.0;
    const auto h = dsp::designLowpass(16, 2500.0, fs);
    const auto x = dsp::scaleToPeak(
        dsp::sineMixture({{1000.0}, {7000.0}, {8000.0}, {9000.0}}, fs,
                         2000),
        0.45);
    baseline::FixedPointFir fir(h, 16);
    const auto y = fir.filter(x);
    const auto ref = dsp::firFilter(h, x);
    EXPECT_GT(dsp::snrVsReference(y, ref, 16), 40.0);
}

TEST(FixedPointFir, QuantizationNoiseGrowsAtLowBits)
{
    const double fs = 20000.0;
    const auto h = dsp::designLowpass(16, 2500.0, fs);
    const auto x = dsp::scaleToPeak(
        dsp::sineMixture({{1000.0}, {7000.0}, {8000.0}, {9000.0}}, fs,
                         4000),
        0.45);
    const auto ref = dsp::firFilter(h, x);

    baseline::FixedPointFir hi(h, 16), lo(h, 6);
    const double snr_hi = dsp::snrVsReference(hi.filter(x), ref, 16);
    const double snr_lo = dsp::snrVsReference(lo.filter(x), ref, 16);
    EXPECT_GT(snr_hi, snr_lo + 10.0);
}

TEST(FixedPointFir, BitFlipsDegradeSnrSharply)
{
    // The binary error story of Fig. 19: a few percent of flips cost
    // tens of dB because high-weight bits flip too.
    const double fs = 20000.0;
    const auto h = dsp::designLowpass(16, 2500.0, fs);
    const auto x = dsp::scaleToPeak(
        dsp::sineMixture({{1000.0}, {7000.0}, {8000.0}, {9000.0}}, fs,
                         4000),
        0.45);
    baseline::FixedPointFir clean(h, 16), faulty(h, 16);
    faulty.setErrorRate(0.05, 7);
    const double snr_clean =
        dsp::snrOfTone(clean.filter(x), fs, 1000.0);
    const double snr_faulty =
        dsp::snrOfTone(faulty.filter(x), fs, 1000.0);
    EXPECT_GT(snr_clean - snr_faulty, 10.0);
}

TEST(FixedPointFir, ZeroErrorRateIsDeterministic)
{
    const auto h = dsp::designLowpass(8, 2500.0, 20000.0);
    const auto x = dsp::sine(1000.0, 20000.0, 200);
    baseline::FixedPointFir a(h, 12), b(h, 12);
    EXPECT_EQ(a.filter(x), b.filter(x));
}

// --- power metrics -----------------------------------------------------------------

TEST(Power, SwitchEnergyMagnitude)
{
    // I_c * Phi0 at 100 uA is ~0.2 aJ: six orders below CMOS (paper).
    EXPECT_NEAR(metrics::kSwitchEnergyJ, 2.07e-19, 0.01e-19);
}

TEST(Power, ActivePowerOfKnownActivity)
{
    // 55.5 GHz of pulses through ~8 switching JJs: ~92 nW, the paper's
    // multiplier operating point.
    const double rate_hz = 55.5e9;
    const Tick duration = kMicrosecond;
    const auto switches = static_cast<std::uint64_t>(
        rate_hz * ticksToSeconds(duration) * 8);
    EXPECT_NEAR(metrics::activePower(switches, duration), 92e-9,
                5e-9);
}

TEST(Power, PassiveDominatesSmallBlocks)
{
    // Paper Table 3: passive power is orders of magnitude above active
    // for these block sizes.
    const double passive = metrics::passivePower(46);
    EXPECT_NEAR(passive, 5.5e-5, 1e-5); // ~0.05 mW for the multiplier
}

TEST(Throughput, Helpers)
{
    EXPECT_DOUBLE_EQ(metrics::opsPerSecond(100.0, kMicrosecond), 1e8);
    EXPECT_DOUBLE_EQ(metrics::gops(100.0, kMicrosecond), 0.1);
    EXPECT_DOUBLE_EQ(metrics::opsPerJJ(1e9, 1000), 1e6);
}

} // namespace
} // namespace usfq
