// Fuzz the runtime-dispatched span kernels (util/span_kernels.hh)
// against naive scalar references, across every kernel level the host
// supports, unaligned span starts, and lengths that exercise partial
// SIMD tails.  The SIMD builds must be bit-identical to the portable
// fallback -- batching is never allowed to change a single bit.

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "util/random.hh"
#include "util/span_kernels.hh"

using namespace usfq;

namespace
{

// --- naive references (independent of the kernel implementations) ---

std::vector<std::uint64_t>
refBinary(const std::vector<std::uint64_t> &a,
          const std::vector<std::uint64_t> &b, int op)
{
    std::vector<std::uint64_t> out(a.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        switch (op) {
          case 0: out[i] = a[i] | b[i]; break;
          case 1: out[i] = a[i] & b[i]; break;
          case 2: out[i] = a[i] & ~b[i]; break;
          default: out[i] = ~(a[i] ^ b[i]); break;
        }
    }
    return out;
}

std::uint64_t
refPopcount(const std::vector<std::uint64_t> &a)
{
    std::uint64_t total = 0;
    for (std::uint64_t w : a)
        for (int bit = 0; bit < 64; ++bit)
            total += (w >> bit) & 1;
    return total;
}

std::vector<span::KernelLevel>
supportedLevels()
{
    std::vector<span::KernelLevel> levels{span::KernelLevel::Scalar};
    if (span::bestSupportedKernel() >= span::KernelLevel::Avx2)
        levels.push_back(span::KernelLevel::Avx2);
    if (span::bestSupportedKernel() >= span::KernelLevel::Avx512)
        levels.push_back(span::KernelLevel::Avx512);
    return levels;
}

/** Restore the dispatched level when a test section ends. */
class KernelGuard
{
  public:
    KernelGuard() : saved(span::activeKernel()) {}
    ~KernelGuard() { span::setSpanKernel(saved); }

  private:
    span::KernelLevel saved;
};

std::vector<std::uint64_t>
randomWords(Rng &rng, std::size_t n)
{
    std::vector<std::uint64_t> out(n);
    for (auto &w : out)
        w = rng.next();
    return out;
}

// Lengths that cover empty spans, sub-vector tails, exact SIMD blocks
// and off-by-one around them (AVX-512 processes 8 words per lane op).
const std::size_t kLengths[] = {0, 1, 2, 3, 7, 8, 9, 15, 16, 17,
                                31, 32, 63, 64, 65, 200, 257};

} // namespace

TEST(SpanKernels, NamesAndSupportOrder)
{
    EXPECT_STREQ(span::kernelName(span::KernelLevel::Scalar), "scalar");
    EXPECT_STREQ(span::kernelName(span::KernelLevel::Avx2), "avx2");
    EXPECT_STREQ(span::kernelName(span::KernelLevel::Avx512), "avx512");
    // Scalar is always executable; forcing it and coming back works.
    KernelGuard guard;
    EXPECT_TRUE(span::setSpanKernel(span::KernelLevel::Scalar));
    EXPECT_EQ(span::activeKernel(), span::KernelLevel::Scalar);
    EXPECT_TRUE(span::setSpanKernel(span::bestSupportedKernel()));
}

TEST(SpanKernels, BinaryOpsMatchReferenceAtEveryLevel)
{
    KernelGuard guard;
    Rng rng(0xb175d1ceULL);
    for (span::KernelLevel level : supportedLevels()) {
        ASSERT_TRUE(span::setSpanKernel(level));
        for (std::size_t n : kLengths) {
            for (int trial = 0; trial < 8; ++trial) {
                // Random word offsets break 64-byte alignment so the
                // SIMD builds see unaligned loads.
                const std::size_t offA = rng.uniformInt(0, 7);
                const std::size_t offB = rng.uniformInt(0, 7);
                const std::size_t offD = rng.uniformInt(0, 7);
                const auto bufA = randomWords(rng, n + 8);
                const auto bufB = randomWords(rng, n + 8);
                const std::vector<std::uint64_t> a(
                    bufA.begin() + static_cast<std::ptrdiff_t>(offA),
                    bufA.begin() + static_cast<std::ptrdiff_t>(offA + n));
                const std::vector<std::uint64_t> b(
                    bufB.begin() + static_cast<std::ptrdiff_t>(offB),
                    bufB.begin() + static_cast<std::ptrdiff_t>(offB + n));
                std::vector<std::uint64_t> dst(n + 8, 0xfeedu);
                for (int op = 0; op < 4; ++op) {
                    const auto expect = refBinary(a, b, op);
                    std::uint64_t *d = dst.data() + offD;
                    switch (op) {
                      case 0:
                        span::wordOr(d, bufA.data() + offA,
                                     bufB.data() + offB, n);
                        break;
                      case 1:
                        span::wordAnd(d, bufA.data() + offA,
                                      bufB.data() + offB, n);
                        break;
                      case 2:
                        span::wordAndNot(d, bufA.data() + offA,
                                         bufB.data() + offB, n);
                        break;
                      default:
                        span::wordXnor(d, bufA.data() + offA,
                                       bufB.data() + offB, n);
                        break;
                    }
                    for (std::size_t i = 0; i < n; ++i)
                        ASSERT_EQ(d[i], expect[i])
                            << span::kernelName(level) << " op " << op
                            << " n " << n << " word " << i;
                }
            }
        }
    }
}

TEST(SpanKernels, UnaryOpsMatchReferenceAtEveryLevel)
{
    KernelGuard guard;
    Rng rng(0x0131u);
    for (span::KernelLevel level : supportedLevels()) {
        ASSERT_TRUE(span::setSpanKernel(level));
        for (std::size_t n : kLengths) {
            const std::size_t off = rng.uniformInt(0, 7);
            const auto buf = randomWords(rng, n + 8);
            std::vector<std::uint64_t> dst(n + 8, 0);
            span::wordNot(dst.data(), buf.data() + off, n);
            for (std::size_t i = 0; i < n; ++i)
                ASSERT_EQ(dst[i], ~buf[off + i])
                    << span::kernelName(level) << " n " << n;
            const std::uint64_t value = rng.next();
            span::wordFill(dst.data(), value, n);
            for (std::size_t i = 0; i < n; ++i)
                ASSERT_EQ(dst[i], value);
        }
    }
}

TEST(SpanKernels, PopcountsMatchReferenceAtEveryLevel)
{
    KernelGuard guard;
    Rng rng(0xc0117u);
    for (span::KernelLevel level : supportedLevels()) {
        ASSERT_TRUE(span::setSpanKernel(level));
        for (std::size_t n : kLengths) {
            const std::size_t offA = rng.uniformInt(0, 7);
            const std::size_t offB = rng.uniformInt(0, 7);
            const auto bufA = randomWords(rng, n + 8);
            const auto bufB = randomWords(rng, n + 8);
            const std::vector<std::uint64_t> a(
                bufA.begin() + static_cast<std::ptrdiff_t>(offA),
                bufA.begin() + static_cast<std::ptrdiff_t>(offA + n));
            std::vector<std::uint64_t> both(n);
            for (std::size_t i = 0; i < n; ++i)
                both[i] = a[i] & bufB[offB + i];
            EXPECT_EQ(span::wordPopcount(bufA.data() + offA, n),
                      refPopcount(a));
            EXPECT_EQ(span::wordPopcountAnd(bufA.data() + offA,
                                            bufB.data() + offB, n),
                      refPopcount(both));
        }
    }
}

TEST(SpanKernels, ExactAliasingIsSupported)
{
    KernelGuard guard;
    Rng rng(0xa11a5u);
    for (span::KernelLevel level : supportedLevels()) {
        ASSERT_TRUE(span::setSpanKernel(level));
        const std::size_t n = 67;
        const auto a0 = randomWords(rng, n);
        const auto b0 = randomWords(rng, n);
        // dst aliases a.
        auto a = a0;
        span::wordOr(a.data(), a.data(), b0.data(), n);
        EXPECT_EQ(a, refBinary(a0, b0, 0));
        // dst aliases b.
        auto b = b0;
        span::wordXnor(b.data(), a0.data(), b.data(), n);
        EXPECT_EQ(b, refBinary(a0, b0, 3));
        // In-place NOT.
        auto c = a0;
        span::wordNot(c.data(), c.data(), n);
        for (std::size_t i = 0; i < n; ++i)
            ASSERT_EQ(c[i], ~a0[i]);
    }
}

TEST(SpanKernels, AllSupportedLevelsAgreeBitForBit)
{
    KernelGuard guard;
    Rng rng(0x5eedu);
    const auto levels = supportedLevels();
    for (std::size_t n : kLengths) {
        const auto a = randomWords(rng, n);
        const auto b = randomWords(rng, n);
        std::vector<std::vector<std::uint64_t>> results;
        std::vector<std::uint64_t> pops;
        for (span::KernelLevel level : levels) {
            ASSERT_TRUE(span::setSpanKernel(level));
            std::vector<std::uint64_t> dst(n);
            span::wordXnor(dst.data(), a.data(), b.data(), n);
            results.push_back(std::move(dst));
            pops.push_back(span::wordPopcountAnd(a.data(), b.data(), n));
        }
        for (std::size_t l = 1; l < results.size(); ++l) {
            EXPECT_EQ(results[l], results[0])
                << span::kernelName(levels[l]);
            EXPECT_EQ(pops[l], pops[0]);
        }
    }
}
